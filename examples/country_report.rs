//! Per-country accessibility report.
//!
//! Builds a dataset for one country and prints its slice of the paper's
//! analyses: visible-vs-accessibility language mismatch, discard reasons,
//! informative-label languages, and the worst mismatch examples.
//!
//! ```sh
//! cargo run --release --example country_report -- th 150
//! ```

use langcrux::core::{analysis, build_dataset, render, PipelineOptions};
use langcrux::lang::Country;
use langcrux::webgen::{Corpus, CorpusConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let code = args.next().unwrap_or_else(|| "bd".to_string());
    let sites: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(150);
    let country = Country::from_code(&code)
        .unwrap_or_else(|| panic!("unknown country code {code:?} (use bd, cn, dz, …)"));
    if !country.is_study() {
        panic!("{} is not one of the 12 study countries", country.name());
    }

    println!(
        "{} ({}) — target language: {}",
        country.name(),
        country.code(),
        country.target_language().name()
    );
    let corpus = Corpus::build(CorpusConfig {
        sites_per_country: sites,
        countries: vec![country],
        ..CorpusConfig::default()
    });
    let ds = build_dataset(
        &corpus,
        PipelineOptions {
            quota: sites,
            ..PipelineOptions::default()
        },
    );
    println!("dataset: {} sites\n", ds.len());

    println!("— language of informative accessibility texts (Figure 4 row) —");
    print!(
        "{}",
        render::lang_distribution(&analysis::lang_distribution(&ds))
    );

    println!("\n— discard reasons (Figure 3 row) —");
    print!("{}", render::discards(&analysis::discard_by_country(&ds)));

    println!("\n— visible vs accessibility native share (Figure 8) —");
    let points = analysis::mismatch_scatter(&ds, country);
    print!(
        "{}",
        render::scatter_density(
            &format!("{} — x: visible native %, y: a11y native %", country.name()),
            &points,
            (50.0, 100.0),
            (0.0, 100.0),
        )
    );

    let cdfs = analysis::mismatch_cdfs(&ds);
    if let Some(row) = cdfs.first() {
        println!(
            "\nsites with <10% native accessibility text: {:.1}%",
            row.sites_below_10pct_native_a11y
        );
    }

    if !ds.mismatch_examples.is_empty() {
        println!("\n— example mismatches (Table 5 style) —");
        print!(
            "{}",
            render::mismatch_examples(&ds.mismatch_examples[..ds.mismatch_examples.len().min(6)])
        );
    }
}
