//! Quickstart for the audit service: spawn the HTTP server on an
//! ephemeral loopback port, render one synthetic corpus page, audit it
//! over the wire twice (cache miss, then byte-identical cache hit), and
//! print the server's own view of the traffic.
//!
//! ```sh
//! cargo run --example serve_audit
//! ```

use langcrux::lang::Country;
use langcrux::net::ContentVariant;
use langcrux::serve::loadgen::{get, post};
use langcrux::serve::{spawn, ServeConfig};
use langcrux::webgen::{render, SitePlan};
use std::net::TcpStream;

fn main() {
    // 1. Spawn the server. Port 0 lets the OS pick a free port.
    let server = spawn(ServeConfig::default()).expect("bind loopback");
    println!("audit service listening on http://{}", server.addr());

    // 2. Render a page the way the offline pipeline's crawler sees it —
    //    a Thai news-portal page with calibrated accessibility defects.
    let plan = SitePlan::build(0xD5EA7, Country::Thailand, 7, Some(true));
    let (html, _truth) = render(&plan, ContentVariant::Localized, "/");
    println!("rendered {} bytes of corpus HTML", html.len());

    // 3. POST it to /v1/audit over a keep-alive connection.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut scratch = Vec::new();
    let (status, body) =
        post(&mut stream, "/v1/audit", html.as_bytes(), &mut scratch).expect("audit request");
    let report: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).expect("utf-8 body")).expect("json");
    println!("\nPOST /v1/audit -> {status}");
    for field in ["content_hash", "page_language", "visible_chars"] {
        println!("  {field}: {:?}", report.get(field));
    }
    if let Some(audit) = report.get("audit") {
        println!("  lighthouse score: {:?}", audit.get("score"));
    }
    if let Some(kizuki) = report.get("kizuki") {
        println!("  kizuki score:     {:?}", kizuki.get("new_score"));
    }
    if let Some(speak) = report.get("speak_order").and_then(|s| s.as_array()) {
        println!("  speak-order announcements: {}", speak.len());
    }

    // 4. The same page again: answered from the sharded cache,
    //    byte-identical.
    let (_, cached) =
        post(&mut stream, "/v1/audit", html.as_bytes(), &mut scratch).expect("cached request");
    assert_eq!(cached, body, "cache hit must be byte-identical");
    println!("\nsecond POST answered from cache, byte-identical: true");

    // 5. The server's own telemetry.
    let (_, stats) = get(&mut stream, "/v1/stats", &mut scratch).expect("stats");
    println!(
        "\nGET /v1/stats -> {}",
        std::str::from_utf8(&stats).expect("utf-8 stats")
    );

    // 6. Clean shutdown: every connection thread joined.
    let finale = server.shutdown();
    println!(
        "\nshutdown complete: {} audits served, cache hit rate {:.0}%",
        finale.requests.audit,
        finale.cache.hit_rate * 100.0
    );
}
