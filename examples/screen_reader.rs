//! What does a blind visitor actually *hear*?
//!
//! Simulates a VoiceOver-like screen reader over the same bilingual page
//! under three conditions: as authored (English metadata on a Bangla
//! page), with metadata removed, and with properly localized metadata —
//! making the paper's §1 motivation audible, element by element.
//!
//! ```sh
//! cargo run --example screen_reader
//! ```

use langcrux::crawl::extract;
use langcrux::html::parse;
use langcrux::kizuki::{ScreenReader, SpeechOutcome, SpeechStats};
use langcrux::lang::Language;

const AS_AUTHORED: &str = r#"<html lang="bn"><head><title>দৈনিক সংবাদ</title></head><body>
<p>আজকের প্রধান খবর: দেশের উত্তরাঞ্চলে বন্যা পরিস্থিতির উন্নতি হয়েছে এবং
ত্রাণ কার্যক্রম পুরোদমে চলছে।</p>
<img src="/f.jpg" alt="volunteers distributing relief supplies after the flood">
<img src="/g.jpg">
<img src="/h.jpg" alt="IMG_2047.jpg">
<a href="/news">সব খবর</a>
<button type="button">অনুসন্ধান</button>
</body></html>"#;

const LOCALIZED: &str = r#"<html lang="bn"><head><title>দৈনিক সংবাদ</title></head><body>
<p>আজকের প্রধান খবর: দেশের উত্তরাঞ্চলে বন্যা পরিস্থিতির উন্নতি হয়েছে এবং
ত্রাণ কার্যক্রম পুরোদমে চলছে।</p>
<img src="/f.jpg" alt="বন্যার পরে ত্রাণ বিতরণ করছেন স্বেচ্ছাসেবকেরা">
<img src="/g.jpg" alt="উত্তরাঞ্চলের প্লাবিত গ্রামের দৃশ্য">
<img src="/h.jpg" alt="নৌকায় করে ত্রাণ নিয়ে যাওয়া হচ্ছে">
<a href="/news">সব খবর</a>
<button type="button">অনুসন্ধান</button>
</body></html>"#;

fn narrate(title: &str, html: &str, reader: &ScreenReader) {
    println!("— {title} —");
    let page = extract(&parse(html));
    let utterances = reader.announce_page(&page, Language::Bangla);
    for u in &utterances {
        let marker = match u.outcome {
            SpeechOutcome::Spoken => "spoken    ",
            SpeechOutcome::Mispronounced => "garbled   ",
            SpeechOutcome::Skipped => "SKIPPED   ",
            SpeechOutcome::GenericAnnouncement => "generic   ",
        };
        println!(
            "  [{marker}] {:<16} \"{}\"",
            u.kind.audit_id(),
            u.text.chars().take(48).collect::<String>()
        );
    }
    let stats = SpeechStats::of(&utterances);
    println!(
        "  => {}/{} announcements degraded ({:.0}%)\n",
        stats.total() - stats.spoken,
        stats.total(),
        stats.degraded_pct()
    );
}

fn main() {
    let voiceover = ScreenReader::voiceover_like();
    println!(
        "screen reader profile: {} (partial Bangla voice — §1 of the paper)\n",
        voiceover.name()
    );
    narrate(
        "as authored: English + placeholder metadata",
        AS_AUTHORED,
        &voiceover,
    );
    narrate("properly localized metadata", LOCALIZED, &voiceover);

    println!("same localized page under an English-only reader:");
    narrate(
        "english-only engine",
        LOCALIZED,
        &ScreenReader::english_only(),
    );
}
