//! Prints an FNV-1a hash of the RELIABLE-plan dataset JSON at a given
//! scale — the byte-identity oracle for the resilience layer (a run with
//! faults disabled must serialize identically before and after the PR).
//!
//! ```text
//! cargo run --release --example reliable_oracle -- 400
//! ```

use langcrux::core::{build_dataset, PipelineOptions};
use langcrux::net::FaultPlan;
use langcrux::webgen::{Corpus, CorpusConfig};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn main() {
    let sites: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let corpus = Corpus::build(CorpusConfig {
        sites_per_country: sites,
        fault_plan: FaultPlan::RELIABLE,
        ..CorpusConfig::default()
    });
    let ds = build_dataset(
        &corpus,
        PipelineOptions {
            quota: sites,
            ..PipelineOptions::default()
        },
    );
    let json = ds.to_json().expect("serialize");
    println!(
        "sites={} records={} bytes={} fnv1a={:016x}",
        sites,
        ds.len(),
        json.len(),
        fnv1a(json.as_bytes())
    );
}
