//! Audit a real HTML page: base Lighthouse semantics vs Kizuki.
//!
//! Pass a path to an HTML file, or run without arguments to audit the
//! built-in demo page — a recreation of the paper's motivating example
//! (§4: teachers.gov.bd, a government portal whose visible content is
//! >98% Bangla while every image alt text is English).
//!
//! ```sh
//! cargo run --example audit_page                # built-in demo
//! cargo run --example audit_page -- page.html   # your own page
//! ```

use langcrux::audit::audit_page;
use langcrux::crawl::extract;
use langcrux::html::parse;
use langcrux::kizuki::{Kizuki, LinkLanguageCheck};

const DEMO: &str = r#"<!DOCTYPE html>
<html lang="bn"><head><title>শিক্ষক বাতায়ন</title></head><body>
<header><nav>
  <a href="/">মূলপাতা</a>
  <a href="/content">ডিজিটাল কনটেন্ট</a>
  <a href="/training" aria-label="view teacher training materials">প্রশিক্ষণ</a>
</nav></header>
<main>
  <h1>বাংলাদেশের শিক্ষকদের জাতীয় প্ল্যাটফর্ম</h1>
  <p>এই প্ল্যাটফর্মে সারা দেশের শিক্ষকরা পাঠ পরিকল্পনা, ডিজিটাল কনটেন্ট ও
     মূল্যায়ন উপকরণ তৈরি এবং বিনিময় করেন। প্রতিদিন হাজারো শিক্ষক এখানে
     নতুন শিক্ষাসামগ্রী যুক্ত করেন।</p>
  <img src="/img/banner.jpg" alt="teachers attending a training workshop">
  <img src="/img/class.jpg" alt="students in a classroom raising their hands">
  <img src="/img/award.jpg" alt="minister handing an award to the best teacher">
  <img src="/img/logo.png" alt="">
  <button type="button">অনুসন্ধান</button>
</main>
</body></html>"#;

fn main() {
    let html = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("read HTML file"),
        None => DEMO.to_string(),
    };

    let doc = parse(&html);
    let page = extract(&doc);
    println!(
        "extracted {} accessibility elements; visible text: {} chars",
        page.elements.len(),
        page.visible_text.chars().count()
    );

    let base = audit_page(&page);
    println!("\nbase audits (Lighthouse semantics):");
    for audit in &base.audits {
        if audit.total_elements == 0 {
            continue;
        }
        println!(
            "  {:<18} {}  ({} elements, {} failing, weight {})",
            audit.kind.audit_id(),
            if audit.passed { "pass" } else { "FAIL" },
            audit.total_elements,
            audit.failing_elements,
            audit.weight
        );
    }
    println!("  base score: {:.1}", base.score);

    // Standard Kizuki (the paper's alt-text check) plus the link-name
    // extension to demonstrate custom checks.
    let kizuki = Kizuki::standard().with_check(Box::new(LinkLanguageCheck::default()));
    let report = kizuki.evaluate(&page, &base);
    println!(
        "\nKizuki (page language: {}):",
        report
            .page_language
            .map(|l| l.name())
            .unwrap_or("undetermined")
    );
    for check in &report.checks {
        println!(
            "  {:<28} {}  ({} informative texts, {} mismatched)",
            check.id,
            if check.passed { "pass" } else { "FAIL" },
            check.examined,
            check.mismatched
        );
    }
    println!(
        "  language-aware score: {:.1}  (delta {:+.1})",
        report.new_score,
        report.delta()
    );
}
