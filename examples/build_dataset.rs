//! Build a LangCrUX dataset and write it to disk.
//!
//! Reproduces the paper's dataset-construction workflow (Figure 1) at a
//! configurable scale and serializes the result as JSON — the release
//! format of the open-sourced LangCrUX dataset.
//!
//! ```sh
//! cargo run --release --example build_dataset -- [sites_per_country] [out.json]
//! ```

use langcrux::core::{build_dataset, PipelineOptions};
use langcrux::webgen::{Corpus, CorpusConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let sites: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let out = args
        .next()
        .unwrap_or_else(|| "langcrux-dataset.json".to_string());

    println!("building corpus: {sites} sites/country × 12 countries …");
    let corpus = Corpus::build(CorpusConfig {
        sites_per_country: sites,
        ..CorpusConfig::default()
    });

    let start = std::time::Instant::now();
    let dataset = build_dataset(
        &corpus,
        PipelineOptions {
            quota: sites,
            ..PipelineOptions::default()
        },
    );
    println!(
        "pipeline done in {:.1?}: {} sites selected",
        start.elapsed(),
        dataset.len()
    );

    println!("\nper-country crawl provenance:");
    for s in &dataset.crawl_summaries {
        println!(
            "  {:<4} selected {:>5} of {:>5} attempted ({} below threshold, {} fetch failures)",
            s.country_code, s.selected, s.attempted, s.rejected_threshold, s.failed_fetch
        );
    }

    let json = dataset.to_json().expect("serialize");
    std::fs::write(&out, &json).expect("write dataset");
    println!(
        "\nwrote {} ({:.1} MiB)",
        out,
        json.len() as f64 / (1024.0 * 1024.0)
    );

    // Round-trip check, as a user of the released dataset would do.
    let reloaded = langcrux::core::Dataset::from_json(&json).expect("parse");
    assert_eq!(reloaded.len(), dataset.len());
    println!("round-trip OK: {} records", reloaded.len());
}
