//! Extending Kizuki with a custom language-aware check.
//!
//! The paper's released tool documents "how to extend it with custom
//! accessibility tests". This example implements a new check from scratch —
//! button names must match the page language — registers it alongside the
//! shipped ones, and compares scores across three configurations on the
//! same bilingual page.
//!
//! ```sh
//! cargo run --example kizuki_extension
//! ```

use langcrux::audit::audit_page;
use langcrux::crawl::{extract, PageExtract};
use langcrux::html::parse;
use langcrux::kizuki::{CheckOutcome, Kizuki, LanguageAwareCheck, LinkLanguageCheck};
use langcrux::lang::a11y::ElementKind;
use langcrux::lang::Language;
use langcrux::langid::{classify_label, LabelLanguage};

/// A user-defined check: `<button>` accessible names must be in the page's
/// language. Implemented exactly like a third-party extension would.
struct ButtonLanguageCheck;

impl LanguageAwareCheck for ButtonLanguageCheck {
    fn id(&self) -> &'static str {
        "custom/button-name-language"
    }

    fn kind(&self) -> ElementKind {
        ElementKind::ButtonName
    }

    fn evaluate(&self, page: &PageExtract, page_language: Language) -> CheckOutcome {
        let mut examined = 0;
        let mut mismatched = 0;
        for button in page.of_kind(ElementKind::ButtonName) {
            // Judge the accessible name a screen reader would announce:
            // the explicit label, or the visible fallback text.
            let name = button
                .content()
                .map(str::to_string)
                .or_else(|| button.visible_fallback.clone());
            let Some(name) = name else { continue };
            match classify_label(&name, page_language) {
                LabelLanguage::NonLinguistic => {}
                LabelLanguage::Native | LabelLanguage::Mixed => examined += 1,
                LabelLanguage::English | LabelLanguage::OtherLanguage => {
                    examined += 1;
                    mismatched += 1;
                }
            }
        }
        CheckOutcome {
            id: self.id().to_string(),
            kind: ElementKind::ButtonName,
            passed: mismatched == 0,
            examined,
            mismatched,
        }
    }
}

const PAGE: &str = r#"<!DOCTYPE html>
<html lang="el"><head><title>Εθνική Πύλη</title></head><body>
<p>Καλώς ήρθατε στην εθνική πύλη εξυπηρέτησης πολιτών. Εδώ θα βρείτε
αιτήσεις, πιστοποιητικά και οδηγίες για όλες τις δημόσιες υπηρεσίες.</p>
<img src="/a.jpg" alt="πολίτες στο κέντρο εξυπηρέτησης">
<img src="/b.jpg" alt="the main entrance of the ministry building">
<a href="/forms" aria-label="download application forms">Αιτήσεις</a>
<button type="button">Search</button>
<button type="button">Αναζήτηση εγγράφων</button>
</body></html>"#;

fn main() {
    let page = extract(&parse(PAGE));
    let base = audit_page(&page);
    println!("base score: {:.1}\n", base.score);

    let configs: [(&str, Kizuki); 3] = [
        ("standard (alt text only)", Kizuki::standard()),
        (
            "+ link-name check",
            Kizuki::standard().with_check(Box::new(LinkLanguageCheck::default())),
        ),
        (
            "+ link-name + custom button check",
            Kizuki::standard()
                .with_check(Box::new(LinkLanguageCheck::default()))
                .with_check(Box::new(ButtonLanguageCheck)),
        ),
    ];

    for (name, engine) in configs {
        let report = engine.evaluate(&page, &base);
        println!(
            "{name}: {} checks, score {:.1} (delta {:+.1})",
            report.checks.len(),
            report.new_score,
            report.delta()
        );
        for check in &report.checks {
            println!(
                "    {:<30} {}  ({}/{} mismatched)",
                check.id,
                if check.passed { "pass" } else { "FAIL" },
                check.mismatched,
                check.examined
            );
        }
    }
}
