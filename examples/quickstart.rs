//! Quickstart: the whole pipeline on one page.
//!
//! Builds a tiny synthetic corpus, visits one Bangladeshi site through the
//! in-country VPN vantage, and walks through everything the paper measures
//! on it: visible-language composition, accessibility elements, filter
//! verdicts, the base Lighthouse-style audit, and Kizuki's language-aware
//! rescoring.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use langcrux::audit::audit_page;
use langcrux::crawl::{Browser, BrowserConfig};
use langcrux::filter::classify;
use langcrux::kizuki::Kizuki;
use langcrux::lang::{Country, Language};
use langcrux::langid::composition;
use langcrux::net::{vpn_vantage, Url};
use langcrux::webgen::{Corpus, CorpusConfig};

fn main() {
    // 1. A small synthetic web: 10 candidate sites per study country.
    let corpus = Corpus::build(CorpusConfig::small(42, 10));
    println!(
        "simulated internet: {} hosts across 12 countries\n",
        corpus.internet().host_count()
    );

    // 2. Walk Bangladeshi candidates in CrUX rank order, applying the
    //    paper's 50%-native-content inclusion rule (disqualified sites are
    //    replaced by the next-ranked candidate).
    let vantage = vpn_vantage(Country::Bangladesh).expect("VPN endpoint");
    let mut browser = Browser::new(corpus.internet(), BrowserConfig::default());
    // The candidate shard is leased from the lazy corpus: binding it keeps
    // the plans alive while we borrow the winning one.
    let candidates = corpus.candidates(Country::Bangladesh);
    let (plan, visit) = candidates
        .iter()
        .find_map(|plan| {
            let visit = browser.visit(&Url::from_host(&plan.host), vantage).ok()?;
            let comp = composition(&visit.extract.visible_text, Language::Bangla);
            if comp.native_pct >= 50.0 {
                Some((plan, visit))
            } else {
                println!(
                    "  skipped {} ({:.0}% Bangla — below the 50% threshold)",
                    plan.host, comp.native_pct
                );
                None
            }
        })
        .expect("a qualifying site");
    println!("selected https://{}/ (rank {})", plan.host, plan.rank);
    println!(
        "  served variant: {:?}, {} bytes, {} ms",
        visit.variant, visit.html_bytes, visit.latency_ms
    );

    // 3. Visible-language composition (the paper's 50% inclusion rule).
    let comp = composition(&visit.extract.visible_text, Language::Bangla);
    println!(
        "  visible text: {:.1}% Bangla, {:.1}% English ({} chars of evidence)",
        comp.native_pct, comp.english_pct, comp.total
    );

    // 4. Accessibility elements and filter verdicts.
    let total = visit.extract.elements.len();
    let missing = visit
        .extract
        .elements
        .iter()
        .filter(|e| e.is_missing())
        .count();
    let empty = visit
        .extract
        .elements
        .iter()
        .filter(|e| e.is_empty_text())
        .count();
    let mut discarded = 0;
    let mut informative = 0;
    for (_, text) in visit.extract.texts() {
        if classify(text).is_some() {
            discarded += 1;
        } else {
            informative += 1;
        }
    }
    println!(
        "  accessibility elements: {total} total — {missing} missing, {empty} empty, \
         {discarded} uninformative, {informative} informative"
    );

    // 5. Base audit vs Kizuki.
    let base = audit_page(&visit.extract);
    let kizuki = Kizuki::standard().evaluate(&visit.extract, &base);
    println!("\n  base Lighthouse-style score : {:>6.1}", base.score);
    println!("  Kizuki language-aware score : {:>6.1}", kizuki.new_score);
    if let Some(lang) = kizuki.page_language {
        println!("  detected page language      : {}", lang.name());
    }
    for check in &kizuki.checks {
        println!(
            "  {} -> {} ({} informative alt texts, {} language-mismatched)",
            check.id,
            if check.passed { "pass" } else { "FAIL" },
            check.examined,
            check.mismatched
        );
    }
}
