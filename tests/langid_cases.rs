//! Language-identification case corpus: realistic short labels and
//! passages across every study script, plus the disambiguation pairs the
//! paper calls out (§2: "For overlapping scripts, such as Arabic and Urdu,
//! we include additional language-specific characters").

use langcrux::lang::Language;
use langcrux::langid::{classify_label, composition, detect, LabelLanguage};

#[test]
fn detect_study_language_passages() {
    let cases: &[(&str, Language)] = &[
        ("আজকের সংবাদ শিরোনাম এবং আবহাওয়ার খবর", Language::Bangla),
        ("आज की मुख्य ख़बरें और मौसम की जानकारी", Language::Hindi),
        (
            "أخبار اليوم الرئيسية وحالة الطقس",
            Language::ModernStandardArabic,
        ),
        ("Главные новости дня и прогноз погоды", Language::Russian),
        ("今日の主要ニュースと天気予報です", Language::Japanese),
        ("오늘의 주요 뉴스와 일기 예보입니다", Language::Korean),
        ("ข่าวเด่นวันนี้และพยากรณ์อากาศ", Language::Thai),
        ("Οι κυριότερες ειδήσεις της ημέρας", Language::Greek),
        ("החדשות המרכזיות של היום ותחזית", Language::Hebrew),
        ("今日头条新闻和天气预报", Language::MandarinChinese),
        ("the main news of the day", Language::English),
    ];
    for (text, expected) in cases {
        assert_eq!(detect(text), Some(*expected), "{text:?}");
    }
}

#[test]
fn detect_disambiguation_pairs() {
    // Urdu vs MSA: retroflex/aspirate letters decide.
    assert_eq!(detect("یہ ایک اردو جملہ ہے ٹھیک ہے"), Some(Language::Urdu));
    assert_eq!(
        detect("هذه جملة باللغة العربية الفصحى"),
        Some(Language::ModernStandardArabic)
    );
    // Hindi vs Marathi: ळ decides.
    assert_eq!(
        detect("मराठी भाषेतील बातम्या आणि जळगाव"),
        Some(Language::Marathi)
    );
    assert_eq!(detect("हिंदी समाचार और जानकारी"), Some(Language::Hindi));
    // Mandarin vs Cantonese vs Japanese over shared Han.
    assert_eq!(detect("今天的新闻报道"), Some(Language::MandarinChinese));
    assert_eq!(detect("今日嘅新聞報道係咁嘅"), Some(Language::Cantonese));
    assert_eq!(detect("今日のニュース"), Some(Language::Japanese));
}

#[test]
fn classify_label_matrix() {
    use LabelLanguage as L;
    let cases: &[(&str, Language, LabelLanguage)] = &[
        // Pure native in several scripts.
        ("নদীর ধারে সূর্যাস্ত", Language::Bangla, L::Native),
        ("ภาพตลาดน้ำยามเช้า", Language::Thai, L::Native),
        ("صورة الميناء القديم", Language::EgyptianArabic, L::Native),
        // Pure English on non-English pages.
        ("sunset over the harbor", Language::Bangla, L::English),
        ("download the annual report", Language::Korean, L::English),
        // Genuinely mixed.
        ("ดาวน์โหลด app ใหม่", Language::Thai, L::Mixed),
        ("Φωτογραφία από το event", Language::Greek, L::Mixed),
        ("스마트폰 app 다운로드 안내", Language::Korean, L::Mixed),
        // Third-language text.
        ("изображение дня", Language::Thai, L::OtherLanguage),
        ("日本語のラベル", Language::Russian, L::OtherLanguage),
        // No linguistic content.
        ("12 / 24", Language::Thai, L::NonLinguistic),
        ("★★★☆☆", Language::Hebrew, L::NonLinguistic),
    ];
    for (text, native, expected) in cases {
        assert_eq!(
            classify_label(text, *native),
            *expected,
            "{text:?} vs {native:?}"
        );
    }
}

#[test]
fn composition_tracks_mixture_ratio() {
    // Build strings with a known native:English character balance and
    // confirm the measured shares move monotonically.
    let native_block = "ありがとうございました"; // 11 Japanese chars
    let english_block = "hello world"; // 10 Latin chars
    let mostly_native = format!("{native_block}{native_block} {english_block}");
    let balanced = format!("{native_block} {english_block}{english_block}");
    let a = composition(&mostly_native, Language::Japanese);
    let b = composition(&balanced, Language::Japanese);
    assert!(a.native_pct > b.native_pct);
    assert!(a.english_pct < b.english_pct);
    assert!(a.native_pct > 60.0 && b.native_pct < 45.0);
}

#[test]
fn evidence_scripts_do_not_bleed_between_countries() {
    // Korean text must contribute zero native share on every non-Korean
    // study page, and vice versa for each unique-script pair.
    let korean = "오늘의 주요 뉴스";
    for lang in [
        Language::Bangla,
        Language::Thai,
        Language::Greek,
        Language::Hebrew,
        Language::Russian,
        Language::Hindi,
    ] {
        let c = composition(korean, lang);
        assert_eq!(c.native_pct, 0.0, "{lang:?} claimed Korean evidence");
        assert!(c.other_pct > 99.0);
    }
}

#[test]
fn shared_arabic_script_counts_for_both_dialect_pages() {
    // MSA text on an Egyptian-Arabic page is native evidence (shared
    // script) — the paper treats Arabic as one script family per country.
    let msa = "أخبار اليوم الرئيسية";
    let c = composition(msa, Language::EgyptianArabic);
    assert!(c.native_pct > 99.0);
}

#[test]
fn digits_and_punctuation_never_move_shares() {
    let base = composition("ข่าววันนี้", Language::Thai);
    let noisy = composition("ข่าววันนี้ 2025 — #1!", Language::Thai);
    assert!((base.native_pct - noisy.native_pct).abs() < 1e-9);
}
