//! The fidelity contract: end-to-end shape assertions.
//!
//! These tests build a quick-scale dataset through the *entire* pipeline
//! (corpus → simulated network → VPN crawl → extraction → filtering →
//! classification → audits) and assert the paper's qualitative findings —
//! orderings, thresholds, crossovers — hold on the measured output. They
//! are the executable version of EXPERIMENTS.md.

use langcrux::core::analysis;
use langcrux::core::Dataset;
use langcrux::filter::DiscardCategory;
use langcrux::lang::a11y::ElementKind;
use langcrux::lang::Country;
use std::sync::OnceLock;

/// One shared quick-scale dataset for all shape tests (building it is the
/// expensive part; the assertions are cheap).
fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let corpus = langcrux::webgen::Corpus::build(langcrux::webgen::CorpusConfig {
            seed: 0x5EED,
            sites_per_country: 150,
            ..Default::default()
        });
        langcrux::core::build_dataset(
            &corpus,
            langcrux::core::PipelineOptions {
                quota: 150,
                ..Default::default()
            },
        )
    })
}

fn fig4_row(ds: &Dataset, code: &str) -> analysis::LangDistRow {
    analysis::lang_distribution(ds)
        .into_iter()
        .find(|r| r.country_code == code)
        .expect("country present")
}

#[test]
fn dataset_reaches_quota_everywhere() {
    let ds = dataset();
    assert_eq!(ds.len(), 150 * 12);
    for c in Country::STUDY {
        assert_eq!(ds.in_country(c).count(), 150, "{c:?}");
    }
}

// ---------------------------------------------------------------- Table 2

#[test]
fn table2_label_is_least_labelled_and_image_alt_most() {
    let rows = analysis::table2(dataset());
    let get = |k: ElementKind| rows.iter().find(|r| r.kind == k).unwrap();
    // Paper: label misses 98.55% on average — the worst of all kinds.
    let label = get(ElementKind::Label);
    assert!(
        label.missing.mean > 93.0,
        "label missing {}",
        label.missing.mean
    );
    // Paper: image-alt has by far the lowest missing rate (17.12%)…
    let image = get(ElementKind::ImageAlt);
    assert!(
        image.missing.mean < 30.0,
        "image missing {}",
        image.missing.mean
    );
    for row in &rows {
        if row.kind != ElementKind::ImageAlt && row.missing.count > 0 {
            assert!(
                row.missing.mean > image.missing.mean,
                "{:?} should miss more than image-alt",
                row.kind
            );
        }
    }
    // …and the highest empty rate (25.39%).
    for row in &rows {
        if row.kind != ElementKind::ImageAlt && row.empty.count > 0 {
            assert!(
                row.empty.mean < image.empty.mean,
                "{:?} should be empty less often than image-alt",
                row.kind
            );
        }
    }
    assert!(image.empty.mean > 12.0, "image empty {}", image.empty.mean);
}

#[test]
fn table2_link_names_are_longest_and_extremes_exist() {
    let rows = analysis::table2(dataset());
    let get = |k: ElementKind| rows.iter().find(|r| r.kind == k).unwrap();
    // Paper: link-name has the highest median text length (22 chars) and
    // summary-name the lowest (5 chars).
    let link = get(ElementKind::LinkName);
    let summary = get(ElementKind::SummaryName);
    assert!(link.text_len.median > summary.text_len.median);
    // Paper: image-alt's maximum runs to six figures (261,864 chars).
    let image = get(ElementKind::ImageAlt);
    assert!(
        image.text_len.max > 1_000.0,
        "max alt {}",
        image.text_len.max
    );
    assert!(
        image.text_len.max > 20.0 * image.text_len.median,
        "image-alt extremes missing"
    );
}

#[test]
fn table2_per_site_missing_medians_saturate() {
    // Paper: median per-site missing rate is 100% for label, link-name,
    // input-button-name, object-alt, select-name, summary-name, svg-img-alt.
    let rows = analysis::table2(dataset());
    for kind in [
        ElementKind::Label,
        ElementKind::LinkName,
        ElementKind::InputButtonName,
        ElementKind::SvgImgAlt,
    ] {
        let row = rows.iter().find(|r| r.kind == kind).unwrap();
        assert!(
            row.missing.median > 99.0,
            "{kind:?} median {}",
            row.missing.median
        );
    }
}

// ---------------------------------------------------------------- Figure 3

#[test]
fn fig3_single_word_ordering() {
    let rows = analysis::discard_by_country(dataset());
    let single = |code: &str| {
        let idx = DiscardCategory::ALL
            .iter()
            .position(|c| *c == DiscardCategory::SingleWord)
            .unwrap();
        rows.iter().find(|r| r.label == code).unwrap().pct[idx]
    };
    // Paper: Thailand tops single-word labels (>33%); Russia second
    // (22.2%); Bangladesh lowest (6.9%).
    assert!(single("th") > 25.0, "th single-word {}", single("th"));
    assert!(single("th") > single("ru"));
    assert!(single("ru") > single("gr"));
    for code in [
        "cn", "dz", "eg", "gr", "hk", "il", "in", "jp", "kr", "ru", "th",
    ] {
        assert!(
            single(code) > single("bd"),
            "bd should have the lowest single-word rate ({} vs {})",
            single("bd"),
            code
        );
    }
}

#[test]
fn fig3_url_paths_concentrate_in_hk_kr_ru() {
    let rows = analysis::discard_by_country(dataset());
    let url = |code: &str| {
        let idx = DiscardCategory::ALL
            .iter()
            .position(|c| *c == DiscardCategory::UrlOrFilePath)
            .unwrap();
        rows.iter().find(|r| r.label == code).unwrap().pct[idx]
    };
    // Paper: hk 3.8%, kr 3.5%, ru 3.17% are the top three.
    let top3 = [url("hk"), url("kr"), url("ru")];
    for code in ["bd", "dz", "eg", "gr", "jp", "th"] {
        let low = url(code);
        assert!(
            top3.iter().filter(|t| **t > low).count() >= 2,
            "{code} URL rate {low} not below the hk/kr/ru cluster {top3:?}"
        );
    }
}

// ---------------------------------------------------------------- Figure 4

#[test]
fn fig4_bangladesh_is_most_english() {
    let ds = dataset();
    let bd = fig4_row(ds, "bd");
    // Paper: 79% of Bangladesh's informative a11y texts are English — the
    // highest of all countries.
    assert!(
        (bd.english_pct - 79.0).abs() < 8.0,
        "bd english {}",
        bd.english_pct
    );
    for c in Country::STUDY {
        if c != Country::Bangladesh {
            let row = fig4_row(ds, c.code());
            assert!(
                row.english_pct < bd.english_pct,
                "{} more English than bd",
                c.code()
            );
        }
    }
}

#[test]
fn fig4_mixed_labels_concentrate_in_gr_th_hk() {
    let ds = dataset();
    // Paper: mixed-language hints are most common in Greece (35%),
    // Thailand (34%), Hong Kong (30%).
    let mut rows = analysis::lang_distribution(ds);
    rows.sort_by(|a, b| b.mixed_pct.total_cmp(&a.mixed_pct));
    let top3: Vec<&str> = rows[..3].iter().map(|r| r.country_code.as_str()).collect();
    for code in ["gr", "th"] {
        assert!(top3.contains(&code), "{code} not in mixed top-3 {top3:?}");
    }
    let hk_rank = rows.iter().position(|r| r.country_code == "hk").unwrap();
    assert!(hk_rank <= 4, "hk mixed rank {hk_rank}");
    // And >20% mixed in China, Russia, Japan, India (paper §3).
    for code in ["cn", "ru", "jp", "in"] {
        let row = rows.iter().find(|r| r.country_code == code).unwrap();
        assert!(row.mixed_pct > 15.0, "{code} mixed {}", row.mixed_pct);
    }
}

#[test]
fn fig4_japan_israel_most_native() {
    let ds = dataset();
    let jp = fig4_row(ds, "jp");
    let il = fig4_row(ds, "il");
    let bd = fig4_row(ds, "bd");
    assert!(jp.native_pct > 35.0);
    assert!(il.native_pct > 35.0);
    assert!(bd.native_pct < 15.0);
}

// ---------------------------------------------------------------- Figure 5

#[test]
fn fig5_mismatch_anchors() {
    let cdfs = analysis::mismatch_cdfs(dataset());
    let below10 = |code: &str| {
        cdfs.iter()
            .find(|c| c.country_code == code)
            .unwrap()
            .sites_below_10pct_native_a11y
    };
    // Paper §4: "in countries like India and Bangladesh … over 40% of
    // websites have less than 10% of their accessibility text in the
    // native language."
    assert!(below10("bd") > 40.0, "bd {}", below10("bd"));
    assert!(below10("in") > 40.0, "in {}", below10("in"));
    // "Thailand, China, and Hong Kong also show similar trends, with more
    // than a quarter of their websites falling into this category."
    for code in ["th", "cn", "hk"] {
        assert!(below10(code) > 25.0, "{code} {}", below10(code));
    }
    // "Japan and Israel have significantly lower rates … fewer than 10%."
    // (A floor of a few percent comes from sites whose accessibility text
    // is too sparse to contain any native label at all.)
    for code in ["jp", "il"] {
        assert!(below10(code) < 13.0, "{code} {}", below10(code));
    }
    // The low-mismatch countries must be far below the high ones.
    assert!(below10("bd") > 3.0 * below10("jp"));
}

#[test]
fn fig5_visible_always_above_50() {
    // Every selected site passed the 50% visible-native threshold, so the
    // visible CDF must be 0 at 50.
    for row in analysis::mismatch_cdfs(dataset()) {
        assert_eq!(
            row.visible.at(49.9),
            0.0,
            "{}: selected site below the visible threshold",
            row.country_code
        );
    }
}

// ---------------------------------------------------------------- Figure 6

#[test]
fn fig6_kizuki_shifts_scores_down() {
    let shift = analysis::kizuki_shift(dataset(), &[Country::Bangladesh, Country::Thailand]);
    assert!(shift.eligible_sites > 50);
    // Paper: 43% above 90 before, 15.8% after; 5.6% perfect before, 1.8%
    // after. Shape: both drop by roughly 2.5–3×.
    assert!(
        shift.old_above_90_pct > 25.0 && shift.old_above_90_pct < 60.0,
        "old above-90 {}",
        shift.old_above_90_pct
    );
    assert!(
        shift.new_above_90_pct < 0.6 * shift.old_above_90_pct,
        "Kizuki drop too small: {} -> {}",
        shift.old_above_90_pct,
        shift.new_above_90_pct
    );
    assert!(shift.new_perfect_pct <= shift.old_perfect_pct);
    // Scores only ever move down.
    for record in dataset().records.iter() {
        assert!(record.kizuki_score <= record.base_score + 1e-9);
    }
}

// ---------------------------------------------------------------- Figure 7

#[test]
fn fig7_india_long_tail() {
    let ds = dataset();
    let india_max = ds.in_country(Country::India).map(|r| r.rank).max().unwrap();
    assert!(india_max > 200_000, "india max rank {india_max}");
    for c in Country::STUDY {
        if c != Country::India {
            // Replacement descent may push a few sites slightly past the
            // country's modelled maximum (≤ 200k for every non-India
            // country); India's tail must dwarf them.
            let max = ds.in_country(c).map(|r| r.rank).max().unwrap();
            assert!(max <= 300_000, "{c:?} max rank {max}");
            assert!(max < india_max, "{c:?} deeper than India");
        }
    }
    // Most countries concentrate within the top 50k (paper, Appendix C).
    let grid = analysis::rank_heatmap(ds);
    let col = |code: &str| grid.cols.iter().position(|c| c == code).unwrap();
    for code in ["jp", "kr", "cn"] {
        let c = col(code);
        let top50k: u64 = (0..4).map(|r| grid.get(r, c)).sum();
        let total = grid.col_total(c);
        assert!(
            top50k as f64 / total as f64 > 0.8,
            "{code}: only {top50k}/{total} within top 50k"
        );
    }
}

// ------------------------------------------------------------- Figure 9

#[test]
fn fig9_summary_dominated_by_generic_and_single_word() {
    let rows = analysis::discard_by_element(dataset());
    let summary = rows.iter().find(|r| r.label == "summary-name").unwrap();
    let idx = |cat: DiscardCategory| DiscardCategory::ALL.iter().position(|c| *c == cat).unwrap();
    // Paper: summary shows the highest generic-action (42.9%) and
    // single-word (40.5%) rates — minimal semantic value.
    let generic = summary.pct[idx(DiscardCategory::GenericAction)];
    let single = summary.pct[idx(DiscardCategory::SingleWord)];
    assert!(generic + single > 30.0, "summary {generic} + {single}");
    for row in &rows {
        if row.total_texts > 0 && row.label != "summary-name" {
            let g = row.pct[idx(DiscardCategory::GenericAction)];
            assert!(
                generic >= g,
                "summary generic {generic} < {} of {}",
                g,
                row.label
            );
        }
    }
}

// --------------------------------------------------------- Tables 4 and 5

#[test]
fn tables_4_and_5_examples_captured() {
    let ds = dataset();
    assert!(
        !ds.extreme_examples.is_empty(),
        "no >1000-char alt texts captured"
    );
    for e in &ds.extreme_examples {
        assert!(e.chars > 1_000);
        assert!(!e.preview.is_empty());
    }
    assert!(
        !ds.mismatch_examples.is_empty(),
        "no visible/a11y mismatch examples captured"
    );
    for m in &ds.mismatch_examples {
        assert!(m.visible_native_pct >= 90.0);
    }
}

// ------------------------------------------------- X3 (declared language)

#[test]
fn x3_declared_lang_is_often_absent_or_wrong() {
    // §1: screen readers depend on language metadata that is frequently
    // "absent, incorrect, or inconsistent with the visible text".
    let rows = analysis::declared_lang(dataset());
    assert_eq!(rows.len(), 12);
    for row in &rows {
        assert!(
            (row.declared_pct + row.absent_pct - 100.0).abs() < 1e-9,
            "{}: declared + absent != 100",
            row.country_code
        );
        assert!(
            (row.correct_pct + row.incorrect_pct - row.declared_pct).abs() < 1e-9,
            "{}: correct + incorrect != declared",
            row.country_code
        );
        // The unreliability finding: a material share of sites has absent
        // or wrong metadata.
        assert!(
            row.absent_pct + row.incorrect_pct > 20.0,
            "{}: metadata suspiciously reliable ({}% absent, {}% wrong)",
            row.country_code,
            row.absent_pct,
            row.incorrect_pct
        );
        // But correct declarations still dominate among declaring sites.
        assert!(row.correct_pct > row.incorrect_pct, "{}", row.country_code);
    }
}
