//! Plant-vs-measure: the generator's ground truth against the pipeline's
//! measurements.
//!
//! The webgen renderer reports exactly what it planted ([`PageTruth`]); the
//! crawl/extract/filter/langid pipeline must recover those counts from raw
//! HTML bytes. Exact agreement is required for structural counts
//! (missing/empty/totals); classification layers (filter categories, label
//! languages) are heuristic and must agree within tolerance.

use langcrux::crawl::extract;
use langcrux::filter::classify;
use langcrux::html::parse;
use langcrux::lang::a11y::ElementKind;
use langcrux::lang::Country;
use langcrux::langid::{classify_label, LabelLanguage};
use langcrux::net::ContentVariant;
use langcrux::webgen::{render, SitePlan};

fn plans(n: u32) -> impl Iterator<Item = (Country, SitePlan)> {
    Country::STUDY
        .into_iter()
        .flat_map(move |c| (0..n).map(move |i| (c, SitePlan::build(0xBEEF, c, i, Some(true)))))
}

#[test]
fn structural_counts_recovered_exactly() {
    for (country, plan) in plans(6) {
        let (html, truth) = render(&plan, ContentVariant::Localized, "/");
        let page = extract(&parse(&html));
        for kind in ElementKind::ALL {
            let planted = truth.kind(kind);
            let measured_total = page.of_kind(kind).count() as u32;
            let measured_missing = page.of_kind(kind).filter(|e| e.is_missing()).count() as u32;
            let measured_empty = page.of_kind(kind).filter(|e| e.is_empty_text()).count() as u32;
            assert_eq!(
                planted.total, measured_total,
                "{country:?}/{}: {kind:?} total",
                plan.host
            );
            assert_eq!(
                planted.missing, measured_missing,
                "{country:?}/{}: {kind:?} missing",
                plan.host
            );
            assert_eq!(
                planted.empty, measured_empty,
                "{country:?}/{}: {kind:?} empty",
                plan.host
            );
        }
    }
}

#[test]
fn filter_verdicts_agree_with_planted_categories() {
    let mut planted_uninformative = 0u32;
    let mut measured_uninformative = 0u32;
    let mut planted_informative = 0u32;
    let mut measured_informative = 0u32;
    for (_, plan) in plans(6) {
        let (html, truth) = render(&plan, ContentVariant::Localized, "/");
        let page = extract(&parse(&html));
        for kind in ElementKind::ALL {
            planted_uninformative += truth.kind(kind).uninformative_total();
            planted_informative += truth.kind(kind).informative_total();
        }
        for (_, text) in page.texts() {
            if classify(text).is_some() {
                measured_uninformative += 1;
            } else {
                measured_informative += 1;
            }
        }
    }
    // The filter is heuristic: planted-informative Thai single tokens may
    // be discarded, and a few planted category instances overlap. Within
    // 12% overall is the contract.
    let total = (planted_uninformative + planted_informative) as f64;
    let drift =
        (f64::from(planted_uninformative) - f64::from(measured_uninformative)).abs() / total;
    assert!(
        drift < 0.12,
        "verdict drift {drift:.3}: planted {planted_uninformative}/{planted_informative}, \
         measured {measured_uninformative}/{measured_informative}"
    );
}

#[test]
fn label_language_classes_recovered() {
    let mut planted = (0u32, 0u32, 0u32); // native, english, mixed
    let mut measured = (0u32, 0u32, 0u32);
    for (country, plan) in plans(8) {
        let native = country.target_language();
        let (html, truth) = render(&plan, ContentVariant::Localized, "/");
        let page = extract(&parse(&html));
        for kind in ElementKind::ALL {
            let t = truth.kind(kind);
            planted.0 += t.informative_native;
            planted.1 += t.informative_english;
            planted.2 += t.informative_mixed;
        }
        for (_, text) in page.texts() {
            if classify(text).is_none() {
                match classify_label(text, native) {
                    LabelLanguage::Native => measured.0 += 1,
                    LabelLanguage::English => measured.1 += 1,
                    LabelLanguage::Mixed => measured.2 += 1,
                    _ => {}
                }
            }
        }
    }
    let planted_total = f64::from(planted.0 + planted.1 + planted.2);
    let measured_total = f64::from(measured.0 + measured.1 + measured.2);
    let p = |n: u32, t: f64| f64::from(n) / t;
    // Each bucket's share must be recovered within 8 points.
    for (name, a, b) in [
        (
            "native",
            p(planted.0, planted_total),
            p(measured.0, measured_total),
        ),
        (
            "english",
            p(planted.1, planted_total),
            p(measured.1, measured_total),
        ),
        (
            "mixed",
            p(planted.2, planted_total),
            p(measured.2, measured_total),
        ),
    ] {
        assert!(
            (a - b).abs() < 0.08,
            "{name}: planted share {a:.3} vs measured {b:.3}"
        );
    }
}

#[test]
fn global_variant_plants_and_measures_english() {
    for (country, plan) in plans(3) {
        let (html, truth) = render(&plan, ContentVariant::Global, "/");
        let page = extract(&parse(&html));
        // Ground truth says all informative labels are English…
        for kind in ElementKind::ALL {
            assert_eq!(
                truth.kind(kind).informative_native,
                0,
                "{country:?} {kind:?}"
            );
        }
        // …and the measurement agrees for almost all of them.
        let mut english = 0u32;
        let mut other = 0u32;
        for (_, text) in page.texts() {
            if classify(text).is_none() {
                match classify_label(text, country.target_language()) {
                    LabelLanguage::English => english += 1,
                    _ => other += 1,
                }
            }
        }
        assert!(
            english >= 9 * (english + other) / 10,
            "{country:?}: {english} english vs {other} other"
        );
    }
}

#[test]
fn visible_share_tracks_plan_target() {
    use langcrux::langid::composition;
    let mut err_sum = 0.0;
    let mut n = 0usize;
    for (country, plan) in plans(10) {
        let (html, _) = render(&plan, ContentVariant::Localized, "/");
        let page = extract(&parse(&html));
        let comp = composition(&page.visible_text, country.target_language());
        err_sum += (comp.native_pct / 100.0 - plan.visible_native_share).abs();
        n += 1;
    }
    let mean_err = err_sum / n as f64;
    assert!(
        mean_err < 0.06,
        "mean |measured - target| visible share {mean_err:.3}"
    );
}
