//! Audit case corpus: page-level scenarios exercising each rule's
//! semantics and the score arithmetic, beyond the isolated probes of the
//! Table 3 matrix.

use langcrux::audit::{audit_page, OTHER_AUDITS_WEIGHT};
use langcrux::crawl::extract;
use langcrux::html::parse;
use langcrux::kizuki::Kizuki;
use langcrux::lang::a11y::ElementKind;

fn audit(html: &str) -> langcrux::audit::AuditReport {
    audit_page(&extract(&parse(html)))
}

#[test]
fn score_arithmetic_single_failure() {
    // One failing 10-weight audit out of 91 + OTHER: exact expected score.
    let report = audit(r#"<head><title>t</title></head><img src="a">"#);
    let expected = (OTHER_AUDITS_WEIGHT + 91.0 - 10.0) / (OTHER_AUDITS_WEIGHT + 91.0) * 100.0;
    assert!((report.score - expected).abs() < 1e-9, "{}", report.score);
}

#[test]
fn score_arithmetic_two_failures() {
    let report = audit(
        r#"<head><title>t</title></head>
           <img src="a">
           <iframe src="/e"></iframe>"#,
    );
    let expected = (OTHER_AUDITS_WEIGHT + 91.0 - 17.0) / (OTHER_AUDITS_WEIGHT + 91.0) * 100.0;
    assert!((report.score - expected).abs() < 1e-9, "{}", report.score);
}

#[test]
fn buttons_with_inner_text_pass_links_without_fail() {
    let report = audit(
        r#"<head><title>t</title></head>
           <button>검색</button>
           <a href="/empty"></a>"#,
    );
    assert!(report.passes(ElementKind::ButtonName));
    assert!(!report.passes(ElementKind::LinkName));
}

#[test]
fn aria_label_rescues_empty_link() {
    let report = audit(
        r#"<head><title>t</title></head>
           <a href="/x" aria-label="главная страница"></a>"#,
    );
    assert!(report.passes(ElementKind::LinkName));
}

#[test]
fn select_needs_label_or_aria() {
    let with_aria = audit(
        r#"<head><title>t</title></head>
           <select aria-label="เลือกจังหวัด"><option>1</option></select>"#,
    );
    assert!(with_aria.passes(ElementKind::SelectName));
    let with_label = audit(
        r#"<head><title>t</title></head>
           <label for="p">จังหวัด</label>
           <select id="p"><option>1</option></select>"#,
    );
    assert!(with_label.passes(ElementKind::SelectName));
    let bare = audit(
        r#"<head><title>t</title></head>
           <select><option>1</option></select>"#,
    );
    assert!(!bare.passes(ElementKind::SelectName));
}

#[test]
fn input_variants() {
    // Missing value on a submit input passes (browser default text);
    // empty value fails; image input requires alt.
    let report = audit(
        r#"<head><title>t</title></head>
           <form>
             <input type="submit">
             <input type="image" src="b.png" alt="구매하기">
           </form>"#,
    );
    assert!(report.passes(ElementKind::InputButtonName));
    assert!(report.passes(ElementKind::InputImageAlt));

    let report = audit(
        r#"<head><title>t</title></head>
           <form>
             <input type="submit" value="">
             <input type="image" src="b.png">
           </form>"#,
    );
    assert!(!report.passes(ElementKind::InputButtonName));
    assert!(!report.passes(ElementKind::InputImageAlt));
}

#[test]
fn lenient_rules_never_fail_whatever_the_state() {
    let report = audit(
        r#"<head><title>t</title></head>
           <input type="text">
           <details><summary></summary></details>
           <svg role="img"><path d="M0 0"/></svg>"#,
    );
    assert!(report.passes(ElementKind::Label));
    assert!(report.passes(ElementKind::SummaryName));
    assert!(report.passes(ElementKind::SvgImgAlt));
    assert!((report.score - 100.0).abs() < 1e-9);
}

#[test]
fn decorative_images_pass_but_kizuki_ignores_them() {
    // alt="" passes the base audit and gives Kizuki nothing to examine.
    let html = r#"<html><head><title>முகப்பு</title></head><body>
        <p>தமிழ்நாட்டின் இன்றைய முக்கியச் செய்திகள் இங்கே தொகுக்கப்பட்டுள்ளன.</p>
        <img src="a" alt=""><img src="b" alt=""></body></html>"#;
    let page = extract(&parse(html));
    let base = audit_page(&page);
    assert!(base.passes(ElementKind::ImageAlt));
    let kizuki = Kizuki::standard().evaluate(&page, &base);
    assert_eq!(kizuki.new_score, kizuki.base_score);
    assert_eq!(kizuki.checks[0].examined, 0);
}

#[test]
fn kizuki_penalty_is_exactly_the_audit_weight() {
    let html = r#"<html><head><title>ページ</title></head><body>
        <p>東京の天気予報と今日の主要なニュースをまとめてお届けします。</p>
        <img src="a" alt="aerial view of the river and the old bridge">
        </body></html>"#;
    let page = extract(&parse(html));
    let base = audit_page(&page);
    assert!((base.score - 100.0).abs() < 1e-9);
    let kizuki = Kizuki::standard().evaluate(&page, &base);
    let expected_drop = 10.0 / (OTHER_AUDITS_WEIGHT + 91.0) * 100.0;
    assert!(
        (kizuki.delta() + expected_drop).abs() < 1e-9,
        "delta {} vs expected -{expected_drop}",
        kizuki.delta()
    );
}

#[test]
fn report_outcome_counts_match_page_contents() {
    let report = audit(
        r#"<head><title>t</title></head>
           <img src=a alt="один"><img src=b><img src=c alt="">"#,
    );
    let outcome = report.outcome(ElementKind::ImageAlt);
    assert_eq!(outcome.total_elements, 3);
    assert_eq!(outcome.failing_elements, 1); // only the missing alt
    let title = report.outcome(ElementKind::DocumentTitle);
    assert_eq!(title.total_elements, 1);
    assert_eq!(title.failing_elements, 0);
}
