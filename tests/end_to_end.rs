//! Cross-crate integration: determinism, serialization, fault handling.

use langcrux::core::{build_dataset, Dataset, PipelineOptions};
use langcrux::lang::Country;
use langcrux::net::FaultPlan;
use langcrux::webgen::{Corpus, CorpusConfig};

fn build(seed: u64, sites: usize, fault: FaultPlan) -> Dataset {
    let corpus = Corpus::build(CorpusConfig {
        seed,
        sites_per_country: sites,
        fault_plan: fault,
        ..Default::default()
    });
    build_dataset(
        &corpus,
        PipelineOptions {
            quota: sites,
            ..Default::default()
        },
    )
}

#[test]
fn dataset_build_is_bit_deterministic() {
    let a = build(777, 20, FaultPlan::RELIABLE);
    let b = build(777, 20, FaultPlan::RELIABLE);
    let ja = a.to_json().unwrap();
    let jb = b.to_json().unwrap();
    assert_eq!(ja, jb, "same seed must give byte-identical datasets");
}

#[test]
fn different_seeds_give_different_datasets() {
    let a = build(1, 15, FaultPlan::RELIABLE);
    let b = build(2, 15, FaultPlan::RELIABLE);
    assert_ne!(a.to_json().unwrap(), b.to_json().unwrap());
}

#[test]
fn hostile_network_still_fills_quota_via_replacement() {
    // ~10% timeouts + 5% resets + VPN detection: the selection walk must
    // absorb the failures using retries and next-candidate replacement
    // (§2: "we replace the affected websites with the next eligible
    // candidate").
    let corpus = Corpus::build(CorpusConfig {
        seed: 31337,
        sites_per_country: 25,
        fault_plan: FaultPlan::HOSTILE,
        ..Default::default()
    });
    let ds = build_dataset(
        &corpus,
        PipelineOptions {
            quota: 25,
            ..Default::default()
        },
    );
    for c in Country::STUDY {
        let n = ds.in_country(c).count();
        assert!(
            n >= 23,
            "{c:?}: only {n}/25 sites selected under a hostile network"
        );
    }
    // The network really did inject faults; the browser's retries absorbed
    // the transient ones (permanent failures, if any, were replaced).
    let m = corpus.internet().metrics();
    assert!(
        m.timeouts + m.resets > 0,
        "hostile plan injected no faults: {m:?}"
    );
}

#[test]
fn dataset_json_round_trip_preserves_analyses() {
    use langcrux::core::analysis;
    let ds = build(99, 15, FaultPlan::RELIABLE);
    let reloaded = Dataset::from_json(&ds.to_json().unwrap()).unwrap();
    // Analyses over the reloaded dataset must match exactly.
    let a = analysis::table2(&ds);
    let b = analysis::table2(&reloaded);
    assert_eq!(a, b);
    assert_eq!(
        analysis::lang_distribution(&ds),
        analysis::lang_distribution(&reloaded)
    );
    assert_eq!(
        analysis::discard_by_country(&ds),
        analysis::discard_by_country(&reloaded)
    );
}

#[test]
fn crawl_summaries_account_for_every_attempt() {
    let ds = build(5150, 20, FaultPlan::default());
    for s in &ds.crawl_summaries {
        assert_eq!(
            s.attempted,
            s.selected + s.rejected_threshold + s.failed_fetch,
            "{}: attempted != selected + rejected + failed",
            s.country_code
        );
        assert_eq!(s.selected, 20);
    }
}

#[test]
fn facade_reexports_cover_the_pipeline() {
    // The README quickstart path must exist through the facade crate.
    use langcrux::audit::audit_page;
    use langcrux::crawl::extract;
    use langcrux::html::parse;
    use langcrux::kizuki::Kizuki;

    let page = extract(&parse(
        r#"<html lang="ja"><head><title>ニュース</title></head>
           <body><p>今日のニュースをお届けします。</p>
           <img src="a" alt="渋谷の夜景"></body></html>"#,
    ));
    let base = audit_page(&page);
    let report = Kizuki::standard().evaluate(&page, &base);
    assert_eq!(report.new_score, report.base_score);
    assert_eq!(
        report.page_language,
        Some(langcrux::lang::Language::Japanese)
    );
}
