//! Ground truth for the translation-gap dimension.
//!
//! The webgen renderer reports exactly which partial-localisation
//! scenarios it planted ([`GapTruth`]); the streaming extract → gap
//! detection chain must recover them from raw HTML bytes. On top of the
//! plant-vs-measure sweep this file pins the dimension's two systemic
//! contracts: determinism (gap verdicts and gap ledger counters are
//! byte-identical at every worker count) and additivity (with the corpus
//! flag off, records carry no gap field and the ledger counts nothing —
//! the historical bytes are untouched).

use langcrux::audit::{gap_report, GapKind};
use langcrux::core::{build_dataset_with_ledger, PipelineOptions};
use langcrux::crawl::extract_streaming;
use langcrux::lang::script::Script;
use langcrux::lang::Country;
use langcrux::net::ContentVariant;
use langcrux::webgen::{render, Corpus, CorpusConfig, GapPlan, SitePlan};

/// Per-country sweep of gap-enabled plans, forced qualifying so the page's
/// dominant script is the native one (a page that is mostly English has no
/// "foreign" English to flag — those sites are the mixed-content story,
/// not the translation-gap one).
fn gapped_plans(n: u32) -> impl Iterator<Item = (Country, SitePlan)> {
    Country::STUDY.into_iter().flat_map(move |c| {
        (0..n).map(move |i| (c, SitePlan::build_gapped(0x6A7, c, i, Some(true), true)))
    })
}

#[test]
fn planted_gap_scenarios_are_recovered_from_raw_html() {
    let mut flagged_sites = 0u32;
    for (country, plan) in gapped_plans(12) {
        let (html, truth) = render(&plan, ContentVariant::Localized, "/");
        let report = gap_report(&extract_streaming(&html));
        let count = |kind: GapKind| report.regions.iter().filter(|g| g.kind == kind).count() as u32;

        // Explicit `lang` sections exist only where the plan put them, so
        // the mistagged count is exact; chrome and fallback detection can
        // additionally flag *incidental* all-English regions (an honest
        // signal, not a false positive), so those bounds are one-sided.
        assert_eq!(
            count(GapKind::LangAttrMismatch),
            truth.gaps.attr_mismatch,
            "{country:?}/{}: lang-attr gaps",
            plan.host
        );
        // Chrome/fallback detection measures English against the page's
        // *dominant* script. On a handful of sites the planted English
        // blocks themselves tip the page Latin-dominant — then English is
        // no longer "foreign" and the detector rightly stays quiet, so
        // those one-sided bounds only apply to native-dominant pages.
        let native_dominant =
            report.page_script.is_some() && report.page_script != Some(Script::Latin);
        if truth.gaps.chrome && native_dominant {
            assert!(
                count(GapKind::UntranslatedChrome) >= 2,
                "{country:?}/{}: planted English nav+footer not flagged: {report:?}",
                plan.host
            );
        }
        if native_dominant {
            assert!(
                count(GapKind::FallbackText) >= truth.gaps.fallback,
                "{country:?}/{}: planted fallback blocks not flagged: {report:?}",
                plan.host
            );
        }
        // The correctly-tagged `lang="en"` control *sections* must never
        // be flagged: tagged-and-true body markup is working multilingual
        // HTML. (Chrome is different — untranslated navigation is a gap
        // even when honestly tagged, so chrome regions may carry `en`.)
        assert!(
            !report
                .regions
                .iter()
                .any(|g| g.lang.as_deref() == Some("en") && g.kind != GapKind::UntranslatedChrome),
            "{country:?}/{}: a correctly-tagged control was flagged: {report:?}",
            plan.host
        );
        if truth.gaps.expected_gap_regions() > 0 && native_dominant {
            flagged_sites += 1;
            assert!(
                report.regions.len() as u32 >= truth.gaps.expected_gap_regions(),
                "{country:?}/{}: {} planted, {} flagged",
                plan.host,
                truth.gaps.expected_gap_regions(),
                report.regions.len()
            );
        }
    }
    // The 0x6A70 stream plants scenarios on roughly a third of sites; the
    // sweep must have exercised a healthy number of them.
    assert!(
        flagged_sites >= 20,
        "only {flagged_sites} gapped sites swept"
    );
}

#[test]
fn forced_fully_native_pages_report_zero_gaps() {
    // The zero-gap property needs *designed* full localisation: every
    // visible string native, correct declaration, no gap scenarios. (An
    // ordinary sampled plan is not enough — its chrome can come out
    // all-English by honest coincidence, which detection rightly flags.)
    for country in Country::STUDY {
        for i in 0..8 {
            let mut plan = SitePlan::build(0x60A1, country, i, Some(true));
            plan.visible_native_share = 1.0;
            plan.declares_lang = true;
            plan.declared_lang_wrong = false;
            plan.gaps = GapPlan::default();
            for path in ["/", "/about"] {
                let (html, _) = render(&plan, ContentVariant::Localized, path);
                let report = gap_report(&extract_streaming(&html));
                assert!(
                    report.is_clean(),
                    "{country:?}/{} {path}: fully-native page flagged: {report:?}",
                    plan.host
                );
            }
        }
    }
}

fn build(corpus: &Corpus, quota: usize, threads: usize) -> (String, String) {
    let (dataset, ledger) = build_dataset_with_ledger(
        corpus,
        PipelineOptions {
            quota,
            threads,
            ..PipelineOptions::default()
        },
    );
    (
        dataset.to_json().expect("dataset serializes"),
        ledger.to_json().expect("ledger serializes"),
    )
}

#[test]
fn gap_verdicts_are_byte_identical_at_every_worker_count() {
    let corpus = Corpus::build(CorpusConfig {
        gap_scenarios: true,
        ..CorpusConfig::small(29, 14)
    });
    let (dataset, ledger) = build(&corpus, 14, 1);
    // The gap dimension actually fired in this corpus …
    assert!(
        dataset.contains("\"gaps\":"),
        "no gap verdicts in the sweep"
    );
    assert!(ledger.contains("\"gap_pages\":"), "no gap ledger counters");
    // … and neither the verdicts nor the counters depend on scheduling.
    for threads in [2, 3, 0] {
        let (d, l) = build(&corpus, 14, threads);
        assert_eq!(dataset, d, "dataset bytes moved at {threads} workers");
        assert_eq!(ledger, l, "ledger bytes moved at {threads} workers");
    }
}

#[test]
fn disabled_gaps_leave_no_trace_at_any_worker_count() {
    // `gap_scenarios` defaults to off: the records must not carry even an
    // empty `gaps` field and the ledger must not emit the gap counters —
    // that absence is what keeps the historical oracle bytes intact.
    let corpus = Corpus::build(CorpusConfig::small(29, 10));
    for threads in [1, 3] {
        let (dataset, ledger) = build(&corpus, 10, threads);
        assert!(!dataset.contains("\"gaps\""), "gap field in disabled run");
        assert!(
            !ledger.contains("gap_pages"),
            "gap counters in disabled run"
        );
    }
}

#[test]
fn served_audit_gap_payload_matches_the_library_call() {
    use langcrux::serve::loadgen::post;
    use langcrux::serve::{spawn, AuditService, ServeConfig};

    // A gapped page straight from the generator, so the served verdict is
    // pinned against real corpus HTML rather than a hand-toy.
    let (country, plan) = gapped_plans(12)
        .find(|(_, p)| p.gaps.any_gap())
        .expect("a gapped plan in the sweep");
    let (html, _) = render(&plan, ContentVariant::Localized, "/");
    let service = AuditService::new();
    let oracle = service.audit_json(&html);
    let resp = service.audit(&html);
    assert!(!resp.gaps.is_clean(), "{country:?}/{}: no gaps", plan.host);
    assert_eq!(resp.gap_speech.regions, resp.gaps.regions.len() as u32);

    let server = spawn(ServeConfig::default()).expect("spawn");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut scratch = Vec::new();
    let (status, body) =
        post(&mut stream, "/v1/audit", html.as_bytes(), &mut scratch).expect("audit request");
    assert_eq!(status, 200);
    assert_eq!(body, oracle, "served gap payload drifted from the library");
    assert!(
        std::str::from_utf8(&body)
            .expect("utf8")
            .contains("\"gaps\":"),
        "served payload lacks the gap report"
    );
    server.shutdown();
}

/// CI oracle gate (ignored by default: builds the full `Scale::Default`
/// corpus). The RELIABLE Default dataset is the repo's historical release
/// oracle; with gap scenarios off its bytes must never move.
#[test]
#[ignore = "CI gate: builds the full Scale::Default RELIABLE dataset (~seconds in release)"]
fn reliable_default_oracle_digest_is_unchanged_with_gaps_off() {
    let (_, dataset, ledger) = langcrux_bench::build_scaled_dataset_with_plan(
        langcrux::lang::rng::DEFAULT_SEED,
        langcrux_bench::Scale::Default,
        langcrux::net::FaultPlan::RELIABLE,
    );
    let json = dataset.to_json().expect("dataset serializes");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    assert_eq!(dataset.len(), 4800, "record count moved");
    assert_eq!(json.len(), 35_207_595, "oracle byte length moved");
    assert_eq!(hash, 0xadfa_e44d_552e_c564, "oracle FNV-1a digest moved");
    // And the ledger of a gaps-off run carries no gap counters at all.
    let ledger_json = ledger.to_json().expect("ledger serializes");
    assert!(
        !ledger_json.contains("gap_"),
        "gap counters in the oracle run"
    );
}
