//! Determinism of the work-stealing pipeline.
//!
//! The dataset is the paper's release artefact, so its bytes must not
//! depend on scheduling: `Dataset::to_json` has to be identical across
//! runs and across worker counts (1, 2, and one-per-core).

use langcrux::core::{build_dataset, PipelineOptions};
use langcrux::lang::Country;
use langcrux::webgen::{Corpus, CorpusConfig};

fn dataset_json(corpus: &Corpus, quota: usize, threads: usize) -> String {
    build_dataset(
        corpus,
        PipelineOptions {
            quota,
            threads,
            ..PipelineOptions::default()
        },
    )
    .to_json()
    .expect("dataset serializes")
}

#[test]
fn to_json_identical_across_thread_counts_and_runs() {
    let corpus = Corpus::build(CorpusConfig::small(23, 15));
    let serial = dataset_json(&corpus, 15, 1);
    // Repeat runs at the same thread count.
    assert_eq!(
        serial,
        dataset_json(&corpus, 15, 1),
        "run-to-run drift at 1 thread"
    );
    // Other worker counts, including 0 = one per core.
    for threads in [2, 3, 0] {
        assert_eq!(
            serial,
            dataset_json(&corpus, 15, threads),
            "thread count {threads} changed the dataset bytes"
        );
        assert_eq!(
            serial,
            dataset_json(&corpus, 15, threads),
            "run-to-run drift at {threads} threads"
        );
    }
}

#[test]
fn lazy_sharded_corpus_matches_eager_at_every_worker_count() {
    // The tentpole invariant of the lazy-shard rewrite: a corpus with a
    // tight LRU residency cap (shards evicted and rebuilt throughout the
    // crawl) must produce byte-identical `Dataset::to_json` output to the
    // fully materialised corpus, at 1, 2, 3 and one-per-core workers.
    let eager = Corpus::build_eager(CorpusConfig::small(41, 12));
    let expect = dataset_json(&eager, 12, 1);
    let lazy = Corpus::build(CorpusConfig {
        resident_shards: 2,
        ..CorpusConfig::small(41, 12)
    });
    for threads in [1, 2, 3, 0] {
        assert_eq!(
            expect,
            dataset_json(&lazy, 12, threads),
            "lazy-shard corpus diverged from eager at {threads} workers"
        );
    }
    // The cap was honoured while the whole study streamed through it …
    let stats = lazy.shard_stats();
    assert!(
        stats.peak_resident <= 2,
        "peak resident shards {} exceeded the cap",
        stats.peak_resident
    );
    assert_eq!(stats.resident_cap, 2);
    // … and true live memory stayed bounded by cap + in-flight work
    // (each worker can pin at most a lease plus a revived rebuild), far
    // below the 12 shards an eager corpus materialises.
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    assert!(
        stats.peak_live <= 2 + 2 * workers.max(3),
        "peak live shards {} not bounded by cap + in-flight work",
        stats.peak_live
    );
    // … which forces evictions and revivals (12 countries through 2
    // resident slots, four pipeline runs).
    assert!(stats.evictions > 0, "cap=2 corpus never evicted");
    assert!(
        stats.builds > 12,
        "no shard was ever revived (builds = {})",
        stats.builds
    );
}

#[test]
fn rank_order_replacement_preserved_under_parallelism() {
    // Selected sites stay in CrUX rank order per country at every worker
    // count — the paper's walk, replayed over parallel probe verdicts.
    let corpus = Corpus::build(CorpusConfig::small(37, 10));
    for threads in [1, 4] {
        let ds = build_dataset(
            &corpus,
            PipelineOptions {
                quota: 10,
                threads,
                ..PipelineOptions::default()
            },
        );
        for country in Country::STUDY {
            let ranks: Vec<u64> = ds.in_country(country).map(|r| r.rank).collect();
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(ranks, sorted, "{country:?} at {threads} threads");
        }
    }
}
