//! Determinism of the work-stealing pipeline.
//!
//! The dataset is the paper's release artefact, so its bytes must not
//! depend on scheduling: `Dataset::to_json` has to be identical across
//! runs and across worker counts (1, 2, and one-per-core).

use langcrux::core::{build_dataset, PipelineOptions};
use langcrux::lang::Country;
use langcrux::webgen::{Corpus, CorpusConfig};

fn dataset_json(corpus: &Corpus, quota: usize, threads: usize) -> String {
    build_dataset(
        corpus,
        PipelineOptions {
            quota,
            threads,
            ..PipelineOptions::default()
        },
    )
    .to_json()
    .expect("dataset serializes")
}

#[test]
fn to_json_identical_across_thread_counts_and_runs() {
    let corpus = Corpus::build(CorpusConfig::small(23, 15));
    let serial = dataset_json(&corpus, 15, 1);
    // Repeat runs at the same thread count.
    assert_eq!(
        serial,
        dataset_json(&corpus, 15, 1),
        "run-to-run drift at 1 thread"
    );
    // Other worker counts, including 0 = one per core.
    for threads in [2, 3, 0] {
        assert_eq!(
            serial,
            dataset_json(&corpus, 15, threads),
            "thread count {threads} changed the dataset bytes"
        );
        assert_eq!(
            serial,
            dataset_json(&corpus, 15, threads),
            "run-to-run drift at {threads} threads"
        );
    }
}

#[test]
fn rank_order_replacement_preserved_under_parallelism() {
    // Selected sites stay in CrUX rank order per country at every worker
    // count — the paper's walk, replayed over parallel probe verdicts.
    let corpus = Corpus::build(CorpusConfig::small(37, 10));
    for threads in [1, 4] {
        let ds = build_dataset(
            &corpus,
            PipelineOptions {
                quota: 10,
                threads,
                ..PipelineOptions::default()
            },
        );
        for country in Country::STUDY {
            let ranks: Vec<u64> = ds.in_country(country).map(|r| r.rank).collect();
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(ranks, sorted, "{country:?} at {threads} threads");
        }
    }
}
