//! Chaos smoke: the crawl engine must *finish* under the most hostile
//! fault plan the repo ships, account for every candidate it consumed,
//! and contain an injected per-site analysis panic to a single ledger
//! entry — no poisoned pool, no hung run, no silent data loss.

use langcrux::core::{build_dataset, build_dataset_with_ledger, CrawlLedger, PipelineOptions};
use langcrux::lang::Country;
use langcrux::net::FaultPlan;
use langcrux::webgen::{Corpus, CorpusConfig};
use std::sync::OnceLock;

fn hostile_corpus(seed: u64, sites: usize) -> Corpus {
    Corpus::build(CorpusConfig {
        fault_plan: FaultPlan::HOSTILE,
        ..CorpusConfig::small(seed, sites)
    })
}

#[test]
fn hostile_run_completes_and_the_ledger_balances() {
    let corpus = hostile_corpus(23, 10);
    let (dataset, ledger) = build_dataset_with_ledger(
        &corpus,
        PipelineOptions {
            quota: 10,
            threads: 0,
            ..PipelineOptions::default()
        },
    );
    assert!(!dataset.is_empty(), "HOSTILE run produced no dataset");

    // Every candidate the replacement walk consumed is accounted for:
    // it was either selected or counted as a replacement, per country.
    for country_ledger in &ledger.countries {
        assert_eq!(
            country_ledger.attempted,
            country_ledger.selected + country_ledger.replacements,
            "{}: attempted != selected + replacements",
            country_ledger.country_code
        );
        assert_eq!(
            country_ledger.replacements,
            country_ledger.rejected_threshold + country_ledger.errors.total(),
            "{}: replacements don't decompose into rejections + errors",
            country_ledger.country_code
        );
        assert_eq!(
            country_ledger.retries,
            country_ledger.attempts - country_ledger.attempted,
            "{}: retries must be attempts beyond each visit's first",
            country_ledger.country_code
        );
        let country = Country::STUDY
            .iter()
            .find(|c| c.code() == country_ledger.country_code)
            .expect("ledger country is a study country");
        assert_eq!(
            country_ledger.selected as usize,
            dataset.in_country(*country).count(),
            "{}: ledger selected count disagrees with the dataset",
            country_ledger.country_code
        );
    }

    // The totals row is the exact sum of the per-country accounts.
    let mut expect_attempted = 0;
    let mut expect_errors = 0;
    let mut expect_virtual_ms = 0;
    for country_ledger in &ledger.countries {
        expect_attempted += country_ledger.attempted;
        expect_errors += country_ledger.errors.total();
        expect_virtual_ms += country_ledger.virtual_ms;
    }
    assert_eq!(ledger.totals.country_code, "total");
    assert_eq!(ledger.totals.attempted, expect_attempted);
    assert_eq!(ledger.totals.errors.total(), expect_errors);
    assert_eq!(ledger.totals.virtual_ms, expect_virtual_ms);

    // HOSTILE actually hurt: terminal errors, retries and backoff waits
    // all happened, and the run still completed.
    assert!(ledger.totals.errors.total() > 0, "no terminal errors");
    assert!(ledger.totals.retries > 0, "no retries under HOSTILE");
    assert!(ledger.totals.backoff_wait_ms > 0, "no backoff waits");
    assert!(ledger.totals.replacements > 0, "no replacement walks");
    assert!(ledger.totals.breaker_opened > 0, "no breaker ever tripped");
    assert!(ledger.totals.poisoned_sites.is_empty(), "nothing panicked");

    // The ledger is a release artefact: it round-trips through JSON.
    let json = ledger.to_json().expect("ledger serializes");
    assert_eq!(
        CrawlLedger::from_json(&json).expect("ledger parses"),
        ledger
    );
}

#[test]
fn hostile_metrics_count_every_fault_mode() {
    // Satellite of the fault-taxonomy work: after a HOSTILE build the
    // simulated internet's own counters show every expanded fault mode
    // actually fired — the taxonomy isn't dead configuration.
    let corpus = hostile_corpus(19, 10);
    let dataset = build_dataset(
        &corpus,
        PipelineOptions {
            quota: 10,
            threads: 0,
            ..PipelineOptions::default()
        },
    );
    assert!(!dataset.is_empty());
    let metrics = corpus.internet().metrics();
    assert!(metrics.requests > 0, "no requests recorded");
    assert!(metrics.bytes_served > 0, "no bytes served");
    assert!(metrics.timeouts > 0, "HOSTILE produced no timeouts");
    assert!(metrics.resets > 0, "HOSTILE produced no resets");
    assert!(metrics.server_errors > 0, "HOSTILE produced no 5xxs");
    assert!(
        metrics.truncated_bodies > 0,
        "HOSTILE produced no truncated bodies"
    );
    assert!(
        metrics.garbled_bodies > 0,
        "HOSTILE produced no garbled bodies"
    );
    assert!(
        metrics.slow_responses > 0,
        "HOSTILE produced no slow-host responses"
    );
}

/// Target host for the injected panic; `chaos_panic_host` takes a plain
/// fn pointer, so the test smuggles the dynamic choice through a static.
static POISON_TARGET: OnceLock<String> = OnceLock::new();

fn poison_target_host(host: &str) -> bool {
    POISON_TARGET.get().map(String::as_str) == Some(host)
}

#[test]
fn injected_panic_poisons_one_site_and_nothing_else() {
    let corpus = Corpus::build(CorpusConfig::small(91, 6));
    let options = PipelineOptions {
        quota: 6,
        threads: 0,
        ..PipelineOptions::default()
    };

    // Baseline: no chaos hook — note a selected host mid-run.
    let (baseline, baseline_ledger) = build_dataset_with_ledger(&corpus, options);
    let victim = baseline.records[baseline.records.len() / 2].host.clone();
    POISON_TARGET.set(victim.clone()).expect("set once");

    // Chaos run: the victim's analysis panics inside the worker pool.
    let (degraded, ledger) = build_dataset_with_ledger(
        &corpus,
        PipelineOptions {
            chaos_panic_host: Some(poison_target_host),
            ..options
        },
    );

    // Exactly one ledger entry names the victim; no other country lost
    // anything to the panic.
    assert_eq!(ledger.totals.poisoned_sites, vec![victim.clone()]);
    let poisoned_countries: Vec<&str> = ledger
        .countries
        .iter()
        .filter(|l| !l.poisoned_sites.is_empty())
        .map(|l| l.country_code.as_str())
        .collect();
    assert_eq!(poisoned_countries.len(), 1, "panic leaked across countries");

    // Selection was unaffected (the panic hits analysis, not probing):
    // per-country selected counts match the baseline ledger exactly.
    for (chaos, clean) in ledger.countries.iter().zip(&baseline_ledger.countries) {
        assert_eq!(chaos.selected, clean.selected, "{}", chaos.country_code);
        assert_eq!(chaos.attempted, clean.attempted, "{}", chaos.country_code);
    }

    // The dataset lost exactly the victim's records — every other record
    // survived byte-for-byte, in the same order.
    assert!(degraded.records.iter().all(|r| r.host != victim));
    let expect: Vec<_> = baseline
        .records
        .iter()
        .filter(|r| r.host != victim)
        .collect();
    let got: Vec<_> = degraded.records.iter().collect();
    assert_eq!(
        serde_json::to_string(&got).unwrap(),
        serde_json::to_string(&expect).unwrap(),
        "panic perturbed unrelated records"
    );
    assert!(degraded
        .extreme_examples
        .iter()
        .all(|example| example.host != victim));
    assert!(degraded
        .mismatch_examples
        .iter()
        .all(|example| example.host != victim));

    // And the degraded run is still deterministic: serial replay gives
    // the same bytes as the pool that contained the panic.
    let (serial, serial_ledger) = build_dataset_with_ledger(
        &corpus,
        PipelineOptions {
            threads: 1,
            chaos_panic_host: Some(poison_target_host),
            ..options
        },
    );
    assert_eq!(
        serial.to_json().unwrap(),
        degraded.to_json().unwrap(),
        "poisoned run not worker-count deterministic"
    );
    assert_eq!(
        serial_ledger.to_json().unwrap(),
        ledger.to_json().unwrap(),
        "poisoned ledger not worker-count deterministic"
    );
}
