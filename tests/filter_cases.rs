//! Filter case corpus: an extensive table of realistic accessibility
//! labels and their expected verdicts, spanning all eleven discard
//! categories, informative text in every study language, and the
//! boundary cases the Appendix H rules hinge on.

use langcrux::filter::{classify, DiscardCategory};

use DiscardCategory as C;

fn assert_cases(cases: &[(&str, Option<DiscardCategory>)]) {
    for (text, expected) in cases {
        assert_eq!(classify(text), *expected, "label {text:?} misclassified");
    }
}

#[test]
fn emoji_cases() {
    assert_cases(&[
        ("🙂", Some(C::Emoji)),
        ("📷", Some(C::Emoji)),
        ("▶ ▶ ▶", Some(C::Emoji)),
        ("☰", Some(C::Emoji)),
        ("⭐⭐⭐⭐⭐", Some(C::Emoji)),
        ("→", Some(C::Emoji)),
        // Emoji mixed with real words is not emoji-only.
        ("new 🎉 offers today", None),
    ]);
}

#[test]
fn url_and_path_cases() {
    assert_cases(&[
        ("https://example.com/image.png", Some(C::UrlOrFilePath)),
        ("http://news.example.bd/article/17", Some(C::UrlOrFilePath)),
        ("www.example.co.th", Some(C::UrlOrFilePath)),
        ("/assets/img/logo.svg", Some(C::UrlOrFilePath)),
        ("/static/css/main.css", Some(C::UrlOrFilePath)),
        // A bare slash-word is not a path (it falls through to the
        // single-word rule like any other short token).
        ("and/or", Some(C::SingleWord)),
    ]);
}

#[test]
fn file_name_cases() {
    assert_cases(&[
        ("banner_img123.jpg", Some(C::FileName)),
        ("IMG_2047.JPG", Some(C::FileName)),
        ("hero-image.webp", Some(C::FileName)),
        ("report.pdf", Some(C::FileName)),
        ("video.mp4", Some(C::FileName)),
        ("photo of the report cover", None),
    ]);
}

#[test]
fn ordinal_cases() {
    assert_cases(&[
        ("1 of 3", Some(C::OrdinalPhrase)),
        ("2 of 10", Some(C::OrdinalPhrase)),
        ("3/5", Some(C::OrdinalPhrase)),
        ("12 / 20", Some(C::OrdinalPhrase)),
        ("one of many stories", None),
    ]);
}

#[test]
fn label_number_cases() {
    assert_cases(&[
        ("image 1", Some(C::LabelNumberPattern)),
        ("button 2", Some(C::LabelNumberPattern)),
        ("slide 3", Some(C::LabelNumberPattern)),
        ("figure 5", Some(C::LabelNumberPattern)),
        ("banner 12", Some(C::LabelNumberPattern)),
        // Numbers first or multiple words break the pattern.
        ("2 buttons shown here", None),
    ]);
}

#[test]
fn mixed_alnum_cases() {
    assert_cases(&[
        ("img123", Some(C::MixedAlnum)),
        ("icon2", Some(C::MixedAlnum)),
        ("file1", Some(C::MixedAlnum)),
        ("ad300x250", Some(C::MixedAlnum)),
        ("covid19 vaccination centre", None),
    ]);
}

#[test]
fn dev_label_cases() {
    assert_cases(&[
        ("btn-submit", Some(C::DevLabel)),
        ("nav_menu", Some(C::DevLabel)),
        ("carousel-item-4", Some(C::DevLabel)),
        ("navbarToggle", Some(C::DevLabel)),
        ("mainHeaderLogo", Some(C::DevLabel)),
        ("hdr_logo", Some(C::DevLabel)),
        // Hyphenated natural compounds with spaces are fine.
        ("well-known local landmark", None),
    ]);
}

#[test]
fn too_short_cases() {
    assert_cases(&[
        ("go", Some(C::TooShort)),
        ("ok", Some(C::TooShort)),
        ("x", Some(C::TooShort)),
        ("图", Some(C::TooShort)), // CJK limit is 1 char
        ("..", Some(C::TooShort)),
        (">>", Some(C::TooShort)),
    ]);
}

#[test]
fn generic_action_cases() {
    assert_cases(&[
        ("close", Some(C::GenericAction)),
        ("search", Some(C::GenericAction)),
        ("Read More", Some(C::GenericAction)),
        ("toggle navigation", Some(C::GenericAction)),
        ("닫기", Some(C::GenericAction)),
        ("検索", Some(C::GenericAction)),
        ("поиск", Some(C::GenericAction)),
        ("بحث", Some(C::GenericAction)),
        ("ค้นหา", Some(C::GenericAction)),
        // A non-dictionary Hebrew token is not an action; it falls
        // through to the single-word rule.
        ("אנוסנדהאן", Some(C::SingleWord)),
    ]);
}

#[test]
fn placeholder_cases() {
    assert_cases(&[
        ("image", Some(C::Placeholder)),
        ("icon", Some(C::Placeholder)),
        ("button", Some(C::Placeholder)),
        ("Logo", Some(C::Placeholder)),
        ("placeholder", Some(C::Placeholder)),
        ("图像", Some(C::Placeholder)),
        ("画像", Some(C::Placeholder)),
        ("이미지", Some(C::Placeholder)),
        ("изображение", Some(C::Placeholder)),
        ("תמונה", Some(C::Placeholder)),
        ("صورة", Some(C::Placeholder)),
        ("รูปภาพ", Some(C::Placeholder)),
    ]);
}

#[test]
fn single_word_cases() {
    assert_cases(&[
        ("photo", Some(C::SingleWord)),
        ("economy", Some(C::SingleWord)),
        ("sports", Some(C::SingleWord)),
        ("Budget", Some(C::SingleWord)),
        // Long single tokens carry meaning and are kept.
        ("chrysanthemum", None),
        ("Thiruvananthapuram", None),
        // CJK single tokens are exempt from the single-word rule.
        ("歴史博物館", None),
        ("경복궁", None),
        // Thai short token is a single word; a long one is a phrase.
        ("แผนที่", Some(C::SingleWord)),
        ("ตลาดน้ำดำเนินสะดวก", None),
    ]);
}

#[test]
fn informative_labels_survive_in_every_study_language() {
    // A descriptive multi-word (or CJK multi-char) label per language.
    let informative = [
        "minister presents the annual budget", // English
        "শিক্ষার্থীরা বিদ্যালয়ের বাগানে গাছ লাগাচ্ছে",     // Bangla
        "नदी के किनारे वार्षिक मेले की तस्वीर",      // Hindi
        "صورة السوق القديم في وسط المدينة",    // Arabic
        "вид на старый мост через реку",       // Russian
        "渋谷の交差点を渡る人々の様子",        // Japanese
        "경복궁에서 열린 가을 축제 사진",      // Korean
        "ภาพบรรยากาศตลาดน้ำยามเช้า",             // Thai
        "άποψη του λιμανιού το ηλιοβασίλεμα",  // Greek
        "תמונת הנמל בשקיעה מהטיילת",           // Hebrew
        "維多利亞港夜景全貌",                  // Cantonese (trad.)
        "人民广场上的节日庆典",                // Mandarin (simp.)
    ];
    for label in informative {
        assert_eq!(
            classify(label),
            None,
            "informative label {label:?} was discarded"
        );
    }
}

#[test]
fn priority_resolution_on_overlapping_labels() {
    // Labels that match several rules resolve by the documented priority.
    assert_cases(&[
        // FileName beats DevLabel (has separator AND extension).
        ("btn-close.png", Some(C::FileName)),
        // UrlOrFilePath beats FileName (path prefix wins).
        ("/img/btn-close.png", Some(C::UrlOrFilePath)),
        // TooShort beats GenericAction ("go" is in the action dictionary).
        ("go", Some(C::TooShort)),
        // LabelNumberPattern beats Placeholder ("image" alone would be a
        // placeholder).
        ("image 4", Some(C::LabelNumberPattern)),
        // MixedAlnum beats DevLabel for separator-free tokens.
        ("img123", Some(C::MixedAlnum)),
    ]);
}
