//! Fault-injection determinism: the dataset AND the degraded-run ledger
//! are release artefacts, so their bytes must be pure in
//! `(corpus seed, fault plan)` — independent of worker count and of
//! run-to-run scheduling, no matter how hostile the simulated internet.
//!
//! Retries, backoff waits, circuit-breaker trips and body damage are all
//! derived from deterministic streams keyed on `(seed, host, attempt)`,
//! so even a crawl that limps through timeouts and 5xxs replays exactly.

use langcrux::core::{build_dataset_with_ledger, PipelineOptions};
use langcrux::net::FaultPlan;
use langcrux::webgen::{Corpus, CorpusConfig};
use proptest::prelude::*;

/// Dataset + ledger bytes at a given worker count.
fn run_bytes(corpus: &Corpus, quota: usize, threads: usize) -> (String, String) {
    let (dataset, ledger) = build_dataset_with_ledger(
        corpus,
        PipelineOptions {
            quota,
            threads,
            ..PipelineOptions::default()
        },
    );
    (
        dataset.to_json().expect("dataset serializes"),
        ledger.to_json().expect("ledger serializes"),
    )
}

#[test]
fn hostile_plan_is_byte_identical_across_worker_counts() {
    // The worst preset the repo ships: every fault mode armed at once.
    let corpus = Corpus::build(CorpusConfig {
        fault_plan: FaultPlan::HOSTILE,
        ..CorpusConfig::small(61, 8)
    });
    let (serial_ds, serial_ledger) = run_bytes(&corpus, 8, 1);
    for threads in [2, 3, 0] {
        let (ds, ledger) = run_bytes(&corpus, 8, threads);
        assert_eq!(
            serial_ds, ds,
            "thread count {threads} changed the dataset bytes under HOSTILE"
        );
        assert_eq!(
            serial_ledger, ledger,
            "thread count {threads} changed the ledger bytes under HOSTILE"
        );
    }
    // Run-to-run at the parallel count, same corpus: no hidden state.
    let (ds, ledger) = run_bytes(&corpus, 8, 0);
    assert_eq!(serial_ds, ds, "run-to-run dataset drift under HOSTILE");
    assert_eq!(
        serial_ledger, ledger,
        "run-to-run ledger drift under HOSTILE"
    );
}

proptest! {
    #[test]
    fn arbitrary_fault_plans_replay_identically(
        seed in 1u64..5000,
        timeout_chance in 0.0f64..0.25,
        reset_chance in 0.0f64..0.15,
        server_error_chance in 0.0f64..0.20,
        truncate_chance in 0.0f64..0.25,
        garble_chance in 0.0f64..0.25,
        slow_host_fraction in 0.0f64..0.5,
        slow_latency_multiplier in 1u32..8,
        jitter_ms in 0u32..40,
    ) {
        let plan = FaultPlan {
            timeout_chance,
            reset_chance,
            server_error_chance,
            truncate_chance,
            garble_chance,
            slow_host_fraction,
            slow_latency_multiplier,
            jitter_ms,
            ..FaultPlan::default()
        };
        // Tiny corpus: 4 sites/country keeps each case cheap while still
        // exercising replacement walks when the plan rejects candidates.
        let corpus = Corpus::build(CorpusConfig {
            fault_plan: plan,
            ..CorpusConfig::small(seed, 4)
        });
        let (serial_ds, serial_ledger) = run_bytes(&corpus, 4, 1);
        prop_assert!(!serial_ds.is_empty());
        for threads in [2, 0] {
            let (ds, ledger) = run_bytes(&corpus, 4, threads);
            prop_assert_eq!(
                &serial_ds, &ds,
                "thread count {} changed the dataset bytes", threads
            );
            prop_assert_eq!(
                &serial_ledger, &ledger,
                "thread count {} changed the ledger bytes", threads
            );
        }
    }
}
