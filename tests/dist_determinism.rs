//! Kill-at-every-boundary chaos suite for the distributed build.
//!
//! The distributed coordinator's contract is byte-identity: whatever
//! workers die, whenever they die, the recovered dataset and ledger must
//! equal the no-failure single-process oracle. A [`LocalExecutor`]
//! failure models a SIGKILL faithfully — work units are atomic, so a
//! worker killed mid-unit leaks no partial state and is indistinguishable
//! from one that failed the whole dispatch (the process-level SIGKILL
//! path itself is exercised by the CI distributed smoke and the
//! `--chaos-kill-workers` harness).
//!
//! Three angles:
//!
//! * the *boundary sweep* — for **every** work unit the build plans, run
//!   a build where exactly that unit's first dispatch dies, so no unit
//!   index is an untested edge (first, last, mid-wave);
//! * the *seeded schedule sweep* — pseudorandom multi-kill schedules
//!   (several per run, pure in the unit key) with the injected-failure
//!   count cross-checked against the coordinator's reassignment metric;
//! * the *metrics exposition* — reassignments must be visible to
//!   operators through the registry, not just internally counted.

use langcrux::core::dist::{
    build_dataset_distributed, DistBuild, DistOptions, LocalExecutor, WireBuildConfig,
};
use langcrux::core::{build_dataset_with_ledger, PipelineOptions};
use langcrux::crawl::BrowserConfig;
use langcrux::lang::rng;
use langcrux::webgen::{Corpus, CorpusConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SEED: u64 = 47;
const SITES: usize = 8;

fn corpus() -> Corpus {
    Corpus::build(CorpusConfig::small(SEED, SITES))
}

/// Single-process dataset + ledger bytes — the oracle every disturbed
/// run must reproduce.
fn oracle_bytes() -> (String, String) {
    let (ds, ledger) = build_dataset_with_ledger(
        &corpus(),
        PipelineOptions {
            quota: SITES,
            ..PipelineOptions::default()
        },
    );
    (ds.to_json().unwrap(), ledger.to_json().unwrap())
}

fn options() -> DistOptions {
    DistOptions {
        quota: SITES,
        workers: 2,
        ..DistOptions::default()
    }
}

fn run(executor: &LocalExecutor) -> DistBuild {
    build_dataset_distributed(&corpus(), executor, &options()).expect("distributed build")
}

#[test]
fn a_kill_at_every_unit_boundary_recovers_to_oracle_bytes() {
    let (ds_oracle, ledger_oracle) = oracle_bytes();
    let config = WireBuildConfig::of(&corpus(), BrowserConfig::default());

    // Recording pass: learn every unit key the coordinator plans.
    let seen: Arc<Mutex<BTreeSet<String>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let recorder = Arc::clone(&seen);
    let executor = LocalExecutor::with_failures(&config, move |key, _| {
        recorder.lock().unwrap().insert(key.to_string());
        false
    });
    let clean = run(&executor);
    assert_eq!(clean.dataset.to_json().unwrap(), ds_oracle);
    let units: Vec<String> = seen.lock().unwrap().iter().cloned().collect();
    assert_eq!(units.len() as u64, clean.stats.units_planned);
    assert!(units.len() >= 12, "one unit per country at minimum");

    // The sweep: kill each unit's first dispatch, one unit per build.
    for unit in &units {
        let victim = unit.clone();
        let executor = LocalExecutor::with_failures(&config, move |key, attempt| {
            key == victim && attempt == 0
        });
        let build = run(&executor);
        assert_eq!(
            build.dataset.to_json().unwrap(),
            ds_oracle,
            "dataset diverged with a kill at unit {unit}"
        );
        assert_eq!(
            build.ledger.to_json().unwrap(),
            ledger_oracle,
            "ledger diverged with a kill at unit {unit}"
        );
        assert_eq!(build.stats.reassignments, 1, "unit {unit}");
        assert_eq!(build.stats.worker_deaths, 1, "unit {unit}");
        assert!(build.ledger.degraded_units.is_empty(), "unit {unit}");
    }
}

#[test]
fn seeded_kill_schedules_recover_and_count_reassignments() {
    let (ds_oracle, ledger_oracle) = oracle_bytes();
    let config = WireBuildConfig::of(&corpus(), BrowserConfig::default());
    for salt in [1u64, 9, 0x5eed] {
        // A multi-kill schedule pure in the unit key: up to two dispatch
        // deaths per unit, different units per salt.
        let injected = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&injected);
        let executor = LocalExecutor::with_failures(&config, move |key, attempt| {
            let dies = attempt < ((rng::stream_id(key) ^ salt) % 3) as u32;
            if dies {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            dies
        });
        let build = run(&executor);
        assert_eq!(
            build.dataset.to_json().unwrap(),
            ds_oracle,
            "salt {salt:#x}"
        );
        assert_eq!(
            build.ledger.to_json().unwrap(),
            ledger_oracle,
            "salt {salt:#x}"
        );
        // Every injected death shows up as exactly one reassignment.
        let killed = injected.load(Ordering::Relaxed);
        assert!(killed > 0, "salt {salt:#x} scheduled no kills");
        assert_eq!(build.stats.reassignments, killed, "salt {salt:#x}");
        assert_eq!(build.stats.worker_deaths, killed, "salt {salt:#x}");
    }
}

#[test]
fn reassignments_surface_in_the_metrics_exposition() {
    let config = WireBuildConfig::of(&corpus(), BrowserConfig::default());
    let executor = LocalExecutor::with_failures(&config, |key, attempt| {
        attempt == 0 && key.starts_with("th:")
    });
    let build = run(&executor);
    assert!(build.stats.reassignments > 0);
    let mut enc = langcrux::obs::Encoder::new();
    build.stats.encode_metrics(&mut enc);
    let text = enc.prometheus_text();
    assert!(
        text.contains(&format!(
            "langcrux_dist_reassignments_total {}",
            build.stats.reassignments
        )),
        "{text}"
    );
    assert!(text.contains("langcrux_dist_workers 2"), "{text}");
}
