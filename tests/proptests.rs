//! Workspace-level property tests on core invariants.

use langcrux::core::stats::{percentile, Cdf, Histogram, Summary};
use langcrux::filter::classify;
use langcrux::lang::script::ScriptHistogram;
use langcrux::lang::{rng, Language};
use langcrux::langid::{classify_label, composition, detect, LabelLanguage};
use langcrux::net::{FaultDice, FaultPlan, Url};
use langcrux::textgen::TextGenerator;
use proptest::prelude::*;

proptest! {
    // ---------------------------------------------------------------- stats

    #[test]
    fn summary_bounds_hold(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        // Mean matches a direct computation.
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6);
    }

    #[test]
    fn summary_is_permutation_invariant(mut values in prop::collection::vec(-100f64..100.0, 2..50)) {
        let a = Summary::of(&values);
        values.reverse();
        let b = Summary::of(&values);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cdf_is_monotone_and_bounded(values in prop::collection::vec(-1e3f64..1e3, 0..100),
                                   grid in prop::collection::vec(-1e3f64..1e3, 1..20)) {
        let cdf = Cdf::of(&values);
        let mut sorted_grid = grid;
        sorted_grid.sort_by(|a, b| a.total_cmp(b));
        let mut last = 0.0f64;
        for x in sorted_grid {
            let y = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= last);
            last = y;
        }
    }

    #[test]
    fn percentile_within_range(values in prop::collection::vec(-1e3f64..1e3, 1..100),
                               p in 0.0f64..100.0) {
        let v = percentile(&values, p);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max);
    }

    #[test]
    fn histogram_conserves_count(values in prop::collection::vec(-50f64..150.0, 0..300)) {
        let mut h = Histogram::uniform(0.0, 100.0, 10);
        for v in &values {
            h.add(*v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    // --------------------------------------------------------------- filter

    #[test]
    fn filter_never_panics(text in "\\PC{0,120}") {
        let _ = classify(&text);
    }

    #[test]
    fn filter_is_trim_stable(text in "[a-zA-Z0-9 .:/_-]{0,60}") {
        // Padding with outer whitespace must not change the verdict.
        let padded = format!("  {text}\t");
        prop_assert_eq!(classify(&text), classify(&padded));
    }

    // --------------------------------------------------------------- langid

    #[test]
    fn composition_percentages_are_consistent(text in "\\PC{0,200}") {
        let c = composition(&text, Language::Thai);
        if c.has_evidence() {
            prop_assert!((c.native_pct + c.english_pct + c.other_pct - 100.0).abs() < 1e-6);
            prop_assert!(c.native_pct >= 0.0 && c.native_pct <= 100.0);
        } else {
            prop_assert_eq!(c.native_pct, 0.0);
        }
    }

    #[test]
    fn classification_stable_under_self_concatenation(seed in 0u64..5000) {
        // A label concatenated with itself has identical shares, so its
        // class must not change.
        let mut gen = TextGenerator::new(Language::Greek, seed);
        let label = gen.phrase(2, 5);
        let doubled = format!("{label} {label}");
        prop_assert_eq!(
            classify_label(&label, Language::Greek),
            classify_label(&doubled, Language::Greek)
        );
    }

    #[test]
    fn detect_never_panics(text in "\\PC{0,150}") {
        let _ = detect(&text);
    }

    #[test]
    fn generated_native_text_classifies_native(seed in 0u64..3000) {
        for lang in [Language::Bangla, Language::Korean, Language::Hebrew] {
            let mut gen = TextGenerator::new(lang, seed);
            let sentence = gen.sentence();
            prop_assert_eq!(
                classify_label(&sentence, lang),
                LabelLanguage::Native,
                "{:?}: {:?}", lang, sentence
            );
        }
    }

    #[test]
    fn script_histogram_total_is_char_count(text in "\\PC{0,200}") {
        let h = ScriptHistogram::of(&text);
        prop_assert_eq!(h.total, text.chars().count());
        prop_assert!(h.distinguishing_total() + h.common + h.unknown == h.total);
    }

    // ------------------------------------------------------------------ net

    #[test]
    fn url_display_reparses(host in "[a-z][a-z0-9-]{0,20}(\\.[a-z]{2,4}){1,2}",
                            path in "(/[a-zA-Z0-9._-]{0,8}){0,4}") {
        let input = format!("https://{host}{path}");
        let url = Url::parse(&input).unwrap();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(url, reparsed);
    }

    #[test]
    fn fault_rolls_are_probabilities(seed in any::<u64>(), attempt in 0u32..10) {
        use langcrux::net::fault::RollPurpose;
        let dice = FaultDice::new(seed, "host.example", attempt);
        for purpose in [RollPurpose::Timeout, RollPurpose::Reset, RollPurpose::GeoBlock] {
            let roll = dice.roll(purpose);
            prop_assert!((0.0..1.0).contains(&roll));
        }
        let plan = FaultPlan::default();
        let latency = dice.latency_ms(&plan);
        prop_assert!(latency >= plan.base_latency_ms);
        // Persistently slow hosts pay the plan's multiplier on top of the
        // base + jitter sample; everyone else stays inside it.
        let ceiling = (plan.base_latency_ms + plan.jitter_ms)
            * if dice.host_is_slow(&plan) {
                plan.slow_latency_multiplier
            } else {
                1
            };
        prop_assert!(latency <= ceiling);
        prop_assert_eq!(latency, dice.latency_ms(&plan), "latency sample not pure");
    }

    // ------------------------------------------------------------------ rng

    #[test]
    fn seed_derivation_is_injective_in_practice(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(rng::derive(1, &[a]), rng::derive(1, &[b]));
    }
}
