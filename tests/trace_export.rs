//! The observability layer's externally visible contracts.
//!
//! Three things must hold for traces to be trustworthy artefacts:
//! the Chrome `traceEvents` export is schema-valid (balanced B/E pairs,
//! non-decreasing timestamps per tid — what `chrome://tracing` and
//! Perfetto require to load a file), span *structure* is deterministic
//! (same seed → same names/nesting/counts/virtual durations, at every
//! worker count), and instrumentation never changes the science: the
//! dataset and crawl-ledger bytes are identical with tracing on and off.
//! Ring overflow must be accounted, never silent.

use langcrux::core::{build_dataset, build_dataset_with_ledger, PipelineOptions};
use langcrux::obs::chrome;
use langcrux::obs::trace::{self, TraceConfig, TraceReport};
use langcrux::webgen::{Corpus, CorpusConfig};
use serde_json::Value;

const QUOTA: usize = 10;

fn options(threads: usize) -> PipelineOptions {
    PipelineOptions {
        quota: QUOTA,
        threads,
        ..PipelineOptions::default()
    }
}

/// Trace one full build on a fresh corpus (fresh so the lazy shard
/// builds are part of every run's structure, not just the first).
fn traced_build(seed: u64, threads: usize) -> TraceReport {
    let corpus = Corpus::build(CorpusConfig::small(seed, QUOTA));
    let session = trace::start(TraceConfig::default());
    let ds = build_dataset(&corpus, options(threads));
    let report = session.finish();
    assert!(ds.len() > 0, "build produced no records");
    report
}

#[test]
fn chrome_export_is_schema_valid() {
    let report = traced_build(23, 2);
    let json = chrome::trace_events_json(&report);
    let doc: Value = serde_json::from_str(&json).expect("trace JSON parses");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "no events exported");

    // Balanced B/E pairs and non-decreasing ts, per tid — the loadability
    // contract of the Trace Event Format.
    let mut by_tid: Vec<(u64, i64, u64)> = Vec::new(); // (tid, open depth, last ts)
    let mut duration_events = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(|v| v.as_str()).expect("ph");
        if ph == "M" {
            continue; // metadata events carry no ts ordering contract
        }
        assert!(ph == "B" || ph == "E", "unexpected phase {ph}");
        duration_events += 1;
        let tid = match event.get("tid") {
            Some(Value::UInt(t)) => *t,
            other => panic!("tid missing or non-integer: {other:?}"),
        };
        let ts = match event.get("ts") {
            Some(Value::UInt(t)) => *t,
            other => panic!("ts missing or non-integer: {other:?}"),
        };
        if ph == "B" {
            assert!(
                event.get("name").and_then(|v| v.as_str()).is_some(),
                "B event without a name"
            );
        }
        let entry = match by_tid.iter_mut().find(|(t, _, _)| *t == tid) {
            Some(entry) => entry,
            None => {
                by_tid.push((tid, 0, 0));
                by_tid.last_mut().unwrap()
            }
        };
        assert!(
            ts >= entry.2,
            "ts regressed on tid {tid}: {ts} < {}",
            entry.2
        );
        entry.2 = ts;
        entry.1 += if ph == "B" { 1 } else { -1 };
        assert!(entry.1 >= 0, "E without matching B on tid {tid}");
    }
    for (tid, depth, _) in &by_tid {
        assert_eq!(*depth, 0, "unbalanced B/E on tid {tid}");
    }
    assert_eq!(duration_events % 2, 0);

    // Every stage of the taxonomy that a RELIABLE build exercises shows up.
    let json_text = json;
    for stage in [
        "pipeline.build",
        "pipeline.probe_wave",
        "pipeline.verdict_replay",
        "pipeline.analyze_site",
        "pipeline.ledger_fold",
        "crawl.fetch",
        "crawl.extract",
        "webgen.render",
        "corpus.shard_build",
    ] {
        assert!(
            json_text.contains(stage),
            "stage {stage} missing from export"
        );
    }
}

#[test]
fn span_structure_deterministic_across_worker_counts_and_runs() {
    let reference = traced_build(23, 1).structure_digest();
    assert!(!reference.is_empty());
    // Repeat run, same worker count.
    assert_eq!(
        reference,
        traced_build(23, 1).structure_digest(),
        "run-to-run structure drift at 1 worker"
    );
    // Other worker counts, including 0 = one per core.
    for threads in [2, 3, 0] {
        assert_eq!(
            reference,
            traced_build(23, threads).structure_digest(),
            "worker count {threads} changed the span structure"
        );
    }
    // A different seed is a different crawl — the digest must move.
    assert_ne!(
        reference,
        traced_build(24, 1).structure_digest(),
        "digest is insensitive to the seed"
    );
}

#[test]
fn tracing_never_changes_dataset_or_ledger_bytes() {
    for threads in [1, 2] {
        let corpus = Corpus::build(CorpusConfig::small(37, QUOTA));
        let (plain_ds, plain_ledger) = build_dataset_with_ledger(&corpus, options(threads));

        let corpus = Corpus::build(CorpusConfig::small(37, QUOTA));
        let session = trace::start(TraceConfig::default());
        let (traced_ds, traced_ledger) = build_dataset_with_ledger(&corpus, options(threads));
        session.finish();

        assert_eq!(
            plain_ds.to_json().expect("plain dataset"),
            traced_ds.to_json().expect("traced dataset"),
            "tracing changed the dataset bytes at {threads} workers"
        );
        assert_eq!(
            plain_ledger.to_json().expect("plain ledger"),
            traced_ledger.to_json().expect("traced ledger"),
            "tracing changed the crawl-ledger bytes at {threads} workers"
        );
    }
}

#[test]
fn ring_overflow_is_accounted_never_silent() {
    let corpus = Corpus::build(CorpusConfig::small(23, QUOTA));
    // A ring far too small for a full build: spans beyond capacity must
    // be counted as dropped, not lost silently or written out of bounds.
    let session = trace::start(TraceConfig {
        capacity_per_worker: 8,
    });
    build_dataset(&corpus, options(1));
    let report = session.finish();

    assert!(report.dropped_spans > 0, "overflow not accounted");
    assert!(report.span_count() as usize <= 8 * report.workers.len());
    // The loss is surfaced everywhere a consumer could be misled: the
    // summary table and the Chrome export's metadata both carry it.
    let table = report.summary_table();
    assert!(table.contains("dropped"), "summary hides the drop count");
    let doc: Value =
        serde_json::from_str(&chrome::trace_events_json(&report)).expect("trace JSON parses");
    match doc.get("otherData").and_then(|v| v.get("dropped_spans")) {
        Some(Value::UInt(n)) => assert_eq!(*n, report.dropped_spans),
        other => panic!("dropped_spans missing from export metadata: {other:?}"),
    }
}
