//! # LangCrUX
//!
//! A from-scratch Rust reproduction of *"Not All Visitors are Bilingual: A
//! Measurement Study of the Multilingual Web from an Accessibility
//! Perspective"* (IMC 2025).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! * [`lang`] — scripts, languages, countries, Unicode tables, UI dictionaries.
//! * [`textgen`] — deterministic synthetic multilingual text generation.
//! * [`html`] — HTML tokenizer, DOM, parser, visible-text extraction, and
//!   the streaming tokenize→extract walk (no DOM on the hot path).
//! * [`langid`] — script/language identification and label classification.
//! * [`net`] — simulated geo-localized internet with VPN vantage points.
//! * [`obs`] — unified observability: deterministic span tracing, one
//!   metrics registry, Chrome trace export (`docs/observability.md`).
//! * [`webgen`] — calibrated synthetic website generator + CrUX-style ranking.
//! * [`crawl`] — Puppeteer-like browser simulation and parallel crawler.
//! * [`audit`] — Axe/Lighthouse-like accessibility rules and scoring.
//! * [`filter`] — uninformative accessibility-text filtering (11 categories).
//! * [`kizuki`] — language-aware accessibility auditing extension.
//! * [`core`] — the LangCrUX dataset pipeline, statistics and analysis.
//! * [`serve`] — audit-as-a-service HTTP subsystem with a sharded
//!   response cache and loopback load generator.
//!
//! `ARCHITECTURE.md` at the repository root maps the crate graph, the
//! fused single-pass data flow (tokenizer → streaming extract → carried
//! histogram → selection/Kizuki/audit), the work-stealing pool's
//! determinism contract, and the serve cache design; `docs/benchmarks.md`
//! documents every `BENCH_*.json` field and how the CI gates relate to
//! the committed reference numbers. See `README.md` for a quickstart and
//! `DESIGN.md` for the system inventory.

pub use langcrux_audit as audit;
pub use langcrux_core as core;
pub use langcrux_crawl as crawl;
pub use langcrux_filter as filter;
pub use langcrux_html as html;
pub use langcrux_kizuki as kizuki;
pub use langcrux_lang as lang;
pub use langcrux_langid as langid;
pub use langcrux_net as net;
pub use langcrux_obs as obs;
pub use langcrux_serve as serve;
pub use langcrux_textgen as textgen;
pub use langcrux_webgen as webgen;
