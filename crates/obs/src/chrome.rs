//! Chrome trace-event export: renders a [`TraceReport`] as the JSON
//! object format (`{"traceEvents":[...]}`) understood by
//! `chrome://tracing` and Perfetto's legacy importer.
//!
//! Layout: one process (`pid 1`) per run, one thread lane per worker
//! ring (`tid = worker + 1`), named via `thread_name` metadata events.
//! Every span becomes a balanced `B`/`E` pair; `ts` is microseconds
//! since the session epoch and is non-decreasing per lane — both
//! properties are pinned by `tests/trace_export.rs`.
//!
//! Spans are recorded at close time (post-order), so the exporter
//! rebuilds begin-order nesting per worker from the wall-clock
//! intervals: RAII guards on one thread guarantee proper containment,
//! which a simple interval stack reconstructs exactly.

use crate::trace::{SpanRecord, TraceReport};
use serde::Value;

/// Render the report as a Chrome trace JSON string.
pub fn trace_events_json(report: &TraceReport) -> String {
    let mut events: Vec<Value> = Vec::new();
    events.push(metadata_event(0, "process_name", "langcrux run"));
    for w in &report.workers {
        let tid = u64::from(w.worker) + 1;
        events.push(metadata_event(
            tid,
            "thread_name",
            &format!("worker-{}", w.worker),
        ));
        emit_worker_events(tid, &w.spans, &mut events);
    }
    let doc = Value::Object(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Object(vec![
                (
                    "dropped_spans".to_string(),
                    Value::UInt(report.dropped_spans),
                ),
                (
                    "capacity_per_worker".to_string(),
                    Value::UInt(report.capacity_per_worker as u64),
                ),
            ]),
        ),
        ("traceEvents".to_string(), Value::Array(events)),
    ]);
    serde_json::to_string(&doc).expect("trace document serializes infallibly")
}

fn metadata_event(tid: u64, name: &str, value: &str) -> Value {
    Value::Object(vec![
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(1)),
        ("tid".to_string(), Value::UInt(tid)),
        ("name".to_string(), Value::Str(name.to_string())),
        (
            "args".to_string(),
            Value::Object(vec![("name".to_string(), Value::Str(value.to_string()))]),
        ),
    ])
}

fn duration_event(ph: &str, tid: u64, ts: u64, span: &SpanRecord) -> Value {
    let mut fields = vec![
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("pid".to_string(), Value::UInt(1)),
        ("tid".to_string(), Value::UInt(tid)),
        ("ts".to_string(), Value::UInt(ts)),
        ("name".to_string(), Value::Str(span.name.to_string())),
        (
            "cat".to_string(),
            Value::Str(category(span.name).to_string()),
        ),
    ];
    if ph == "B" {
        fields.push((
            "args".to_string(),
            Value::Object(vec![
                ("key".to_string(), Value::Str(format!("{:016x}", span.key))),
                ("virtual_ms".to_string(), Value::UInt(span.virtual_ms)),
            ]),
        ));
    }
    Value::Object(fields)
}

/// Event category = the stage-name prefix before the first dot.
fn category(name: &'static str) -> &'static str {
    name.split_once('.').map_or(name, |(cat, _)| cat)
}

/// Emit balanced B/E events for one worker lane. Spans are sorted into
/// begin order, then an interval stack closes every span whose end
/// precedes the next begin — RAII guarantees proper nesting, so the
/// stack never sees a partial overlap.
///
/// `start_us` and `dur_us` are truncated independently, so a child's
/// computed end can overshoot its parent's by a microsecond; each
/// pushed span's end is clamped to the enclosing one, keeping `ts`
/// non-decreasing when the pair closes.
fn emit_worker_events(tid: u64, spans: &[SpanRecord], out: &mut Vec<Value>) {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    // Begin order: earliest start first; at equal starts the longer span
    // is the parent and must open first.
    ordered.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then_with(|| (b.start_us + b.dur_us).cmp(&(a.start_us + a.dur_us)))
            .then_with(|| a.depth.cmp(&b.depth))
    });
    let mut stack: Vec<(&SpanRecord, u64)> = Vec::new(); // (span, clamped end)
    for span in ordered {
        let start = span.start_us;
        let mut end = start + span.dur_us;
        // Close finished spans. A zero-duration span landing exactly on
        // the top's end instant stays nested (E ties then pop inner
        // first); a span extending beyond it cannot be a child.
        while let Some(&(top, top_end)) = stack.last() {
            if top_end < start || (top_end == start && end > top_end) {
                out.push(duration_event("E", tid, top_end, top));
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, top_end)) = stack.last() {
            end = end.min(top_end);
        }
        out.push(duration_event("B", tid, start, span));
        stack.push((span, end));
    }
    while let Some((top, top_end)) = stack.pop() {
        out.push(duration_event("E", tid, top_end, top));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WorkerTrace;

    fn rec(name: &'static str, depth: u32, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name,
            key: 7,
            depth,
            start_us,
            dur_us,
            virtual_ms: 0,
        }
    }

    fn report(spans: Vec<SpanRecord>) -> TraceReport {
        TraceReport {
            workers: vec![WorkerTrace {
                worker: 0,
                dropped: 0,
                spans,
            }],
            dropped_spans: 0,
            capacity_per_worker: 16,
        }
    }

    /// Walk the rendered JSON and assert balanced B/E with
    /// non-decreasing ts per tid. Returns the event count.
    fn check_balance(json: &str) -> usize {
        let doc: Value = serde_json::from_str(json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut depth_by_tid: Vec<(u64, i64, u64)> = Vec::new(); // (tid, open, last_ts)
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            if ph == "M" {
                continue;
            }
            let tid = match ev.get("tid").unwrap() {
                Value::UInt(t) => *t,
                other => panic!("tid should be unsigned, got {other:?}"),
            };
            let ts = match ev.get("ts").unwrap() {
                Value::UInt(t) => *t,
                other => panic!("ts should be unsigned, got {other:?}"),
            };
            let entry = match depth_by_tid.iter_mut().find(|(t, _, _)| *t == tid) {
                Some(e) => e,
                None => {
                    depth_by_tid.push((tid, 0, 0));
                    depth_by_tid.last_mut().unwrap()
                }
            };
            assert!(
                ts >= entry.2,
                "ts regressed on tid {tid}: {ts} < {}",
                entry.2
            );
            entry.2 = ts;
            match ph {
                "B" => entry.1 += 1,
                "E" => {
                    entry.1 -= 1;
                    assert!(entry.1 >= 0, "E without matching B on tid {tid}");
                }
                other => panic!("unexpected phase {other}"),
            }
        }
        for (tid, open, _) in &depth_by_tid {
            assert_eq!(*open, 0, "unbalanced events on tid {tid}");
        }
        events.len()
    }

    #[test]
    fn nested_spans_emit_balanced_monotone_events() {
        // parent [0,100] wrapping child [10,60], then sibling [120,130].
        let json = trace_events_json(&report(vec![
            rec("pipeline.child", 1, 10, 50),
            rec("pipeline.parent", 0, 0, 100),
            rec("pipeline.sibling", 0, 120, 10),
        ]));
        let n = check_balance(&json);
        assert_eq!(n, 2 + 6); // 2 metadata + 3 B/E pairs
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"cat\":\"pipeline\""));
    }

    #[test]
    fn zero_duration_span_at_parent_boundary_stays_balanced() {
        // child at the parent's exact end instant, zero duration.
        let json = trace_events_json(&report(vec![
            rec("crawl.backoff", 1, 50, 0),
            rec("crawl.fetch", 0, 0, 50),
            rec("crawl.fetch", 0, 50, 20),
        ]));
        check_balance(&json);
    }

    #[test]
    fn child_end_overshooting_parent_is_clamped() {
        // Truncation artefact: the child's computed end (1 + 10 = 11)
        // overshoots the parent's (0 + 10) even though the real
        // intervals nested properly; export must stay monotone.
        let json = trace_events_json(&report(vec![
            rec("pipeline.child", 1, 1, 10),
            rec("pipeline.parent", 0, 0, 10),
        ]));
        check_balance(&json);
    }

    #[test]
    fn multiple_workers_get_distinct_named_lanes() {
        let mut r = report(vec![rec("pipeline.a", 0, 0, 5)]);
        r.workers.push(WorkerTrace {
            worker: 1,
            dropped: 0,
            spans: vec![rec("pipeline.b", 0, 2, 5)],
        });
        let json = trace_events_json(&r);
        check_balance(&json);
        assert!(json.contains("worker-0"));
        assert!(json.contains("worker-1"));
    }
}
