//! Deterministic span tracing for the langcrux pipeline.
//!
//! One global *trace session* at a time; every thread that opens a span
//! while a session is active lazily registers a fixed-capacity,
//! single-producer span buffer ("worker ring") and appends completed
//! spans to it with no locks on the hot path. [`TraceSession::finish`]
//! merges the rings into a [`TraceReport`].
//!
//! # Zero cost when disabled
//!
//! [`span`] and [`virtual_wait`] begin with a single `Relaxed` atomic
//! load of the global `ACTIVE` flag and return an inert guard when it is
//! clear — no TLS access, no allocation, no time reads. The overhead of
//! the disabled path is CI-gated (see `ObservabilityRecord` in
//! `langcrux-bench`).
//!
//! # Determinism contract
//!
//! Wall-clock fields (`start_us`, `dur_us`) vary run to run, and which
//! worker recorded a span depends on work-stealing. Everything else is
//! deterministic: span *names*, *keys*, *counts*, fence-relative
//! *depths*, and *virtual-clock durations* are pure functions of
//! `(seed, fault plan, scale)` — the canonical view is
//! [`TraceReport::structure_digest`], which is byte-identical across
//! worker counts and repeat runs (tested in `tests/trace_export.rs`).
//! The one exception: `corpus.shard_build` span counts are deterministic
//! only with an unbounded shard cache (`resident_shards: 0`); under an
//! LRU cap, rebuild counts depend on eviction interleaving.
//!
//! Each work-stealing task runs under a [`task_fence`], which makes span
//! depth relative to the task rather than the thread. Without it, a
//! single-threaded run (pool tasks inlined on the caller thread under an
//! open orchestration span) would record different depths than a
//! multi-threaded one.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One recorded span. `name`/`key`/`depth`/`virtual_ms` are
/// deterministic; `start_us`/`dur_us` are wall-clock (µs since the
/// session started).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static stage name, e.g. `"crawl.fetch"`.
    pub name: &'static str,
    /// Deterministic discriminator within a stage (host hash, wave
    /// ordinal, country index, …).
    pub key: u64,
    /// Nesting depth relative to the enclosing [`task_fence`].
    pub depth: u32,
    /// Wall-clock start, µs since the session epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub dur_us: u64,
    /// Virtual-clock milliseconds attributed to the span (crawl backoff
    /// and breaker waits tick a simulated clock, not the wall).
    pub virtual_ms: u64,
}

impl SpanRecord {
    const EMPTY: SpanRecord = SpanRecord {
        name: "",
        key: 0,
        depth: 0,
        start_us: 0,
        dur_us: 0,
        virtual_ms: 0,
    };
}

/// Trace session parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Span slots per worker ring. When a ring fills, further spans on
    /// that worker are counted in `dropped_spans` instead of recorded —
    /// never silently lost.
    pub capacity_per_worker: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 64 Ki spans ≈ 3 MiB per worker: comfortably holds a Default
        // scale build; Full scale overflows by design (and reports it).
        TraceConfig {
            capacity_per_worker: 64 * 1024,
        }
    }
}

/// Single-producer span buffer owned by one thread via TLS. The producer
/// writes a slot then publishes it with a `Release` store of `len`; the
/// merging reader loads `len` with `Acquire` and reads only below it, so
/// a straggling producer can never race the reader onto the same slot.
struct WorkerRing {
    worker: u32,
    slots: Box<[UnsafeCell<SpanRecord>]>,
    len: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots below `len` are immutable once published (Release store
// by the unique producer, Acquire load by readers); slots at or above
// `len` are touched only by the producer thread.
unsafe impl Sync for WorkerRing {}
unsafe impl Send for WorkerRing {}

impl WorkerRing {
    fn new(worker: u32, capacity: usize) -> WorkerRing {
        WorkerRing {
            worker,
            slots: (0..capacity.max(1))
                .map(|_| UnsafeCell::new(SpanRecord::EMPTY))
                .collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer-side append; counts (never silently drops) overflow.
    fn push(&self, record: SpanRecord) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: single producer; slot `i` is unpublished.
        unsafe { *self.slots[i].get() = record };
        self.len.store(i + 1, Ordering::Release);
    }

    /// Reader-side snapshot of all published spans.
    fn drain(&self) -> Vec<SpanRecord> {
        let n = self.len.load(Ordering::Acquire);
        // SAFETY: slots below `n` are published and immutable.
        (0..n).map(|i| unsafe { *self.slots[i].get() }).collect()
    }
}

struct SessionState {
    epoch: u64,
    config: TraceConfig,
    start: Instant,
    rings: Vec<Arc<WorkerRing>>,
}

/// Fast-path switch: one `Relaxed` load decides span/fence inertness.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Current session epoch (0 = none); lets TLS detect stale registration.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(0);

fn session() -> &'static (Mutex<Option<SessionState>>, Condvar) {
    static S: std::sync::OnceLock<(Mutex<Option<SessionState>>, Condvar)> =
        std::sync::OnceLock::new();
    S.get_or_init(|| (Mutex::new(None), Condvar::new()))
}

struct Tls {
    epoch: u64,
    ring: Option<Arc<WorkerRing>>,
    epoch_start: Instant,
    depth: u32,
    base: u32,
}

thread_local! {
    static TLS: RefCell<Tls> = RefCell::new(Tls {
        epoch: 0,
        ring: None,
        epoch_start: Instant::now(),
        depth: 0,
        base: 0,
    });
}

/// Is a trace session currently active? (The same `Relaxed` load the
/// span fast path uses.)
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Start the global trace session. If another session is active, blocks
/// until it finishes — sessions are exclusive so concurrently running
/// tests cannot interleave their spans.
pub fn start(config: TraceConfig) -> TraceSession {
    let (lock, cvar) = session();
    let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    while guard.is_some() {
        guard = cvar.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
    let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    *guard = Some(SessionState {
        epoch,
        config,
        start: Instant::now(),
        rings: Vec::new(),
    });
    EPOCH.store(epoch, Ordering::Release);
    ACTIVE.store(true, Ordering::Release);
    TraceSession {
        epoch,
        finished: false,
    }
}

/// Handle to the active session; finish it to collect the report. Spans
/// recorded after `finish` (or on a ring that filled) are dropped with
/// accounting, never corrupted.
#[must_use = "finish() collects the report; dropping ends the session empty"]
pub struct TraceSession {
    epoch: u64,
    finished: bool,
}

impl TraceSession {
    /// End the session and merge every worker ring into a report. The
    /// caller must have joined all traced work first; spans still open
    /// on other threads are not recorded.
    pub fn finish(mut self) -> TraceReport {
        self.finished = true;
        end_session(self.epoch).unwrap_or_else(TraceReport::empty)
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            let _ = end_session(self.epoch);
        }
    }
}

fn end_session(epoch: u64) -> Option<TraceReport> {
    let (lock, cvar) = session();
    let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    let state = match guard.as_ref() {
        Some(s) if s.epoch == epoch => guard.take().unwrap(),
        _ => return None,
    };
    ACTIVE.store(false, Ordering::Release);
    EPOCH.store(0, Ordering::Release);
    let mut workers: Vec<WorkerTrace> = state
        .rings
        .iter()
        .map(|ring| WorkerTrace {
            worker: ring.worker,
            dropped: ring.dropped.load(Ordering::Relaxed),
            spans: ring.drain(),
        })
        .collect();
    workers.sort_by_key(|w| w.worker);
    let report = TraceReport {
        capacity_per_worker: state.config.capacity_per_worker,
        dropped_spans: workers.iter().map(|w| w.dropped).sum(),
        workers,
    };
    cvar.notify_one();
    Some(report)
}

/// Ensure this thread has a ring for the current epoch; returns whether
/// recording is possible. Resets depth bookkeeping on epoch change.
fn ensure_registered(tls: &mut Tls, epoch: u64) -> bool {
    if tls.epoch == epoch {
        return tls.ring.is_some();
    }
    tls.epoch = epoch;
    tls.ring = None;
    tls.depth = 0;
    tls.base = 0;
    let (lock, _) = session();
    let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(state) = guard.as_mut() {
        if state.epoch == epoch {
            let ring = Arc::new(WorkerRing::new(
                state.rings.len() as u32,
                state.config.capacity_per_worker,
            ));
            state.rings.push(Arc::clone(&ring));
            tls.epoch_start = state.start;
            tls.ring = Some(ring);
            return true;
        }
    }
    false
}

/// RAII span guard. Records on drop; inert (a no-op shell) when tracing
/// is disabled.
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    key: u64,
    epoch: u64,
    depth: u32,
    start: Instant,
    virtual_ms: u64,
}

/// Open a span for `name` with a deterministic `key`. One relaxed atomic
/// load when tracing is off.
#[inline]
pub fn span(name: &'static str, key: u64) -> Span {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Span { data: None };
    }
    span_slow(name, key)
}

#[cold]
fn span_slow(name: &'static str, key: u64) -> Span {
    let epoch = EPOCH.load(Ordering::Acquire);
    if epoch == 0 {
        return Span { data: None };
    }
    TLS.with(|t| {
        let mut tls = t.borrow_mut();
        if !ensure_registered(&mut tls, epoch) {
            return Span { data: None };
        }
        let depth = tls.depth - tls.base;
        tls.depth += 1;
        Span {
            data: Some(SpanData {
                name,
                key,
                epoch,
                depth,
                start: Instant::now(),
                virtual_ms: 0,
            }),
        }
    })
}

impl Span {
    /// Attribute virtual-clock milliseconds to this span (replaces).
    #[inline]
    pub fn set_virtual_ms(&mut self, ms: u64) {
        if let Some(d) = self.data.as_mut() {
            d.virtual_ms = ms;
        }
    }

    /// Attribute additional virtual-clock milliseconds to this span.
    #[inline]
    pub fn add_virtual_ms(&mut self, ms: u64) {
        if let Some(d) = self.data.as_mut() {
            d.virtual_ms += ms;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(d) = self.data.take() else { return };
        TLS.with(|t| {
            let mut tls = t.borrow_mut();
            if tls.epoch != d.epoch {
                return;
            }
            tls.depth = tls.depth.saturating_sub(1);
            let Some(ring) = tls.ring.clone() else { return };
            let start_us = d.start.duration_since(tls.epoch_start).as_micros() as u64;
            let dur_us = d.start.elapsed().as_micros() as u64;
            ring.push(SpanRecord {
                name: d.name,
                key: d.key,
                depth: d.depth,
                start_us,
                dur_us,
                virtual_ms: d.virtual_ms,
            });
        });
    }
}

/// Record an instantaneous virtual-clock wait (backoff sleep, breaker
/// cooldown) as a zero-wall-duration child span of the open span.
#[inline]
pub fn virtual_wait(name: &'static str, key: u64, virtual_ms: u64) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    virtual_wait_slow(name, key, virtual_ms);
}

#[cold]
fn virtual_wait_slow(name: &'static str, key: u64, virtual_ms: u64) {
    let epoch = EPOCH.load(Ordering::Acquire);
    if epoch == 0 {
        return;
    }
    TLS.with(|t| {
        let mut tls = t.borrow_mut();
        if !ensure_registered(&mut tls, epoch) {
            return;
        }
        let depth = tls.depth - tls.base;
        let start_us = tls.epoch_start.elapsed().as_micros() as u64;
        let Some(ring) = tls.ring.clone() else { return };
        ring.push(SpanRecord {
            name,
            key,
            depth,
            start_us,
            dur_us: 0,
            virtual_ms,
        });
    });
}

/// Depth fence for one work-stealing task: spans opened inside record
/// their depth relative to the fence, so a task inlined on a thread with
/// an open orchestration span nests identically to one on a fresh pool
/// worker. Inert when tracing is off.
#[must_use = "the fence restores depth bookkeeping when dropped"]
pub struct TaskFence {
    saved: Option<(u64, u32)>,
}

/// Open a depth fence for the current task.
#[inline]
pub fn task_fence() -> TaskFence {
    if !ACTIVE.load(Ordering::Relaxed) {
        return TaskFence { saved: None };
    }
    TLS.with(|t| {
        let mut tls = t.borrow_mut();
        let saved = (tls.epoch, tls.base);
        tls.base = tls.depth;
        TaskFence { saved: Some(saved) }
    })
}

impl Drop for TaskFence {
    fn drop(&mut self) {
        let Some((epoch, base)) = self.saved.take() else {
            return;
        };
        TLS.with(|t| {
            let mut tls = t.borrow_mut();
            // Registration inside the fence resets bookkeeping on epoch
            // change; only restore if the fence's epoch is still live.
            if tls.epoch == epoch {
                tls.base = base;
            }
        });
    }
}

/// FNV-1a hash of a string — the standard deterministic span key for
/// host- or code-keyed stages.
#[inline]
pub fn key_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Spans recorded by one worker ring, in close order.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Ring registration ordinal (Chrome-trace tid is `worker + 1`).
    pub worker: u32,
    /// Spans dropped by this ring after it filled.
    pub dropped: u64,
    /// Published spans, in the order they closed.
    pub spans: Vec<SpanRecord>,
}

/// The merged result of one trace session.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Per-worker spans, sorted by worker ordinal.
    pub workers: Vec<WorkerTrace>,
    /// Total spans dropped across all rings (overflow accounting —
    /// surfaced in the summary, Chrome export and metrics, never
    /// silent).
    pub dropped_spans: u64,
    /// Ring capacity the session ran with.
    pub capacity_per_worker: usize,
}

/// Per-stage aggregate for the `--trace-summary` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    pub stage: &'static str,
    pub count: u64,
    pub total_us: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub virtual_ms: u64,
}

impl TraceReport {
    fn empty() -> TraceReport {
        TraceReport {
            workers: Vec::new(),
            dropped_spans: 0,
            capacity_per_worker: 0,
        }
    }

    /// Total recorded spans.
    pub fn span_count(&self) -> u64 {
        self.workers.iter().map(|w| w.spans.len() as u64).sum()
    }

    /// Sorted, de-duplicated stage names.
    pub fn stage_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .workers
            .iter()
            .flat_map(|w| w.spans.iter().map(|s| s.name))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Canonical deterministic view: the multiset of
    /// `(name, key, depth, virtual_ms)` over all spans, rendered as
    /// sorted run-length-encoded lines. Byte-identical across worker
    /// counts and repeat runs with the same seed — wall-clock fields and
    /// worker assignment are deliberately excluded.
    pub fn structure_digest(&self) -> String {
        let mut rows: Vec<(&'static str, u64, u32, u64)> = self
            .workers
            .iter()
            .flat_map(|w| {
                w.spans
                    .iter()
                    .map(|s| (s.name, s.key, s.depth, s.virtual_ms))
            })
            .collect();
        rows.sort_unstable();
        let mut out = String::with_capacity(rows.len() * 24);
        let mut i = 0;
        while i < rows.len() {
            let row = rows[i];
            let mut n = 1usize;
            while i + n < rows.len() && rows[i + n] == row {
                n += 1;
            }
            out.push_str(&format!(
                "{} {:016x} {} {} x{}\n",
                row.0, row.1, row.2, row.3, n
            ));
            i += n;
        }
        out
    }

    /// Per-stage count/total/p50/p99/max aggregates, sorted by total
    /// wall time descending.
    pub fn summary(&self) -> Vec<StageSummary> {
        let mut by_stage: Vec<(&'static str, Vec<u64>, u64)> = Vec::new();
        for w in &self.workers {
            for s in &w.spans {
                match by_stage.iter_mut().find(|(n, _, _)| *n == s.name) {
                    Some((_, durs, vms)) => {
                        durs.push(s.dur_us);
                        *vms += s.virtual_ms;
                    }
                    None => by_stage.push((s.name, vec![s.dur_us], s.virtual_ms)),
                }
            }
        }
        let mut rows: Vec<StageSummary> = by_stage
            .into_iter()
            .map(|(stage, mut durs, virtual_ms)| {
                durs.sort_unstable();
                let count = durs.len() as u64;
                let total_us: u64 = durs.iter().sum();
                let rank = |p: f64| -> u64 {
                    let idx = ((p / 100.0) * durs.len() as f64).ceil() as usize;
                    durs[idx.clamp(1, durs.len()) - 1]
                };
                StageSummary {
                    stage,
                    count,
                    total_us,
                    p50_us: rank(50.0),
                    p99_us: rank(99.0),
                    max_us: *durs.last().unwrap(),
                    virtual_ms,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.stage.cmp(b.stage)));
        rows
    }

    /// The `--trace-summary` table as a string (one header, one row per
    /// stage, plus an overflow line when spans were dropped).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>9} {:>12} {:>9} {:>9} {:>9} {:>10}\n",
            "stage", "count", "total_us", "p50_us", "p99_us", "max_us", "virtual_ms"
        ));
        for row in self.summary() {
            out.push_str(&format!(
                "{:<24} {:>9} {:>12} {:>9} {:>9} {:>9} {:>10}\n",
                row.stage,
                row.count,
                row.total_us,
                row.p50_us,
                row.p99_us,
                row.max_us,
                row.virtual_ms
            ));
        }
        out.push_str(&format!(
            "spans: {} across {} workers (capacity {}/worker, dropped {})\n",
            self.span_count(),
            self.workers.len(),
            self.capacity_per_worker,
            self.dropped_spans
        ));
        out
    }

    /// Register the report's aggregates into a metrics [`Encoder`]:
    /// per-stage wall-time/count/virtual-time families plus span and
    /// overflow totals.
    ///
    /// [`Encoder`]: crate::registry::Encoder
    pub fn encode_metrics(&self, enc: &mut crate::registry::Encoder) {
        enc.counter(
            "langcrux_trace_spans_total",
            "Spans recorded by the last trace session.",
            self.span_count() as f64,
        );
        enc.counter(
            "langcrux_trace_dropped_spans_total",
            "Spans dropped on ring overflow (never silent).",
            self.dropped_spans as f64,
        );
        enc.gauge(
            "langcrux_trace_workers",
            "Worker rings registered during the last trace session.",
            self.workers.len() as f64,
        );
        for row in self.summary() {
            let labels = &[("stage", row.stage)];
            enc.counter_with(
                "langcrux_pipeline_stage_spans_total",
                "Spans recorded per pipeline stage.",
                labels,
                row.count as f64,
            );
            enc.counter_with(
                "langcrux_pipeline_stage_wall_microseconds_total",
                "Wall-clock microseconds spent per pipeline stage.",
                labels,
                row.total_us as f64,
            );
            enc.counter_with(
                "langcrux_pipeline_stage_virtual_milliseconds_total",
                "Virtual-clock milliseconds attributed per pipeline stage.",
                labels,
                row.virtual_ms as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        assert!(!enabled());
        let mut s = span("test.stage", 1);
        s.set_virtual_ms(5);
        drop(s);
        virtual_wait("test.wait", 2, 10);
        // Nothing to observe: no session, no panic, no registration.
    }

    #[test]
    fn session_records_nested_spans_with_depth() {
        let session = start(TraceConfig::default());
        {
            let _outer = span("test.outer", 1);
            {
                let mut inner = span("test.inner", 2);
                inner.set_virtual_ms(40);
            }
            virtual_wait("test.wait", 3, 7);
        }
        let report = session.finish();
        assert_eq!(report.span_count(), 3);
        assert_eq!(report.dropped_spans, 0);
        let digest = report.structure_digest();
        assert!(digest.contains("test.outer 0000000000000001 0 0 x1"));
        assert!(digest.contains("test.inner 0000000000000002 1 40 x1"));
        assert!(digest.contains("test.wait 0000000000000003 1 7 x1"));
    }

    #[test]
    fn task_fence_resets_depth_baseline() {
        let session = start(TraceConfig::default());
        {
            let _orchestrator = span("test.orchestrator", 0);
            let _fence = task_fence();
            let _task = span("test.task", 9);
        }
        let report = session.finish();
        // The fenced task records depth 0 despite the open outer span.
        assert!(report
            .structure_digest()
            .contains("test.task 0000000000000009 0 0 x1"));
    }

    #[test]
    fn ring_overflow_is_counted_not_silent() {
        let session = start(TraceConfig {
            capacity_per_worker: 4,
        });
        for i in 0..10 {
            let _s = span("test.flood", i);
        }
        let report = session.finish();
        assert_eq!(report.span_count(), 4);
        assert_eq!(report.dropped_spans, 6);
        assert!(report.summary_table().contains("dropped 6"));
    }

    #[test]
    fn cross_thread_spans_merge_into_one_report() {
        let session = start(TraceConfig::default());
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let _fence = task_fence();
                    let _s = span("test.thread", i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _main = span("test.main", 99);
        drop(_main);
        let report = session.finish();
        assert_eq!(report.span_count(), 4);
        assert!(report.workers.len() >= 2);
        assert_eq!(report.stage_names(), vec!["test.main", "test.thread"]);
    }

    #[test]
    fn summary_percentiles_are_nearest_rank() {
        let report = TraceReport {
            workers: vec![WorkerTrace {
                worker: 0,
                dropped: 0,
                spans: (1..=100)
                    .map(|i| SpanRecord {
                        name: "test.p",
                        key: i,
                        depth: 0,
                        start_us: 0,
                        dur_us: i,
                        virtual_ms: 0,
                    })
                    .collect(),
            }],
            dropped_spans: 0,
            capacity_per_worker: 128,
        };
        let rows = report.summary();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 100);
        assert_eq!(rows[0].p50_us, 50);
        assert_eq!(rows[0].p99_us, 99);
        assert_eq!(rows[0].max_us, 100);
    }
}
