//! langcrux-obs: the unified observability layer.
//!
//! Three pieces, threaded through the whole workspace:
//!
//! - [`trace`] — deterministic span tracing: RAII guards around every
//!   pipeline stage record into lock-free per-worker rings, merged into
//!   a [`trace::TraceReport`] at session end. Zero-cost when disabled
//!   (one relaxed atomic load per call site).
//! - [`chrome`] — renders a report as Chrome `traceEvents` JSON for
//!   `chrome://tracing` / Perfetto (`repro --trace-out`).
//! - [`registry`] — the single metrics registry: every subsystem encodes
//!   its telemetry into one [`registry::Encoder`] pass, from which both
//!   the Prometheus exposition (`/v1/metrics`, `repro --metrics-out`)
//!   and the JSON view (`/v1/stats`) are rendered — no drift by
//!   construction.
//!
//! The determinism contract (span structure byte-identical across worker
//! counts, dataset bytes untouched by tracing) is documented in
//! [`trace`] and pinned by `tests/trace_export.rs` and
//! `docs/observability.md`.

pub mod chrome;
pub mod registry;
pub mod trace;

pub use registry::{Encoder, Registry};
pub use trace::{Span, TraceConfig, TraceReport, TraceSession};
