//! The unified metrics registry.
//!
//! Every subsystem that owns telemetry (net fault counters, corpus shard
//! gauges, crawl ledger taxonomy, serve request/latency stats, trace
//! aggregates) implements an *encode* step against [`Encoder`] — a typed
//! counter/gauge/histogram sample collector. One encoder pass is the
//! single source of truth: [`Encoder::prometheus_text`] renders the
//! Prometheus 0.0.4 exposition (served by `/v1/metrics`, written by
//! `repro --metrics-out`), [`Encoder::to_value`] renders the same
//! samples as a flat JSON object (embedded in `/v1/stats`), and
//! [`Encoder::flat_samples`] backs the test asserting the two never
//! drift.
//!
//! [`Registry`] is the dynamic half: long-lived processes (the serve
//! daemon) register collector closures so pipeline gauges from completed
//! builds appear on every later scrape.

use serde::Value;
use std::sync::Mutex;

/// Prometheus metric kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricType {
    Counter,
    Gauge,
    Histogram,
}

impl MetricType {
    fn as_str(self) -> &'static str {
        match self {
            MetricType::Counter => "counter",
            MetricType::Gauge => "gauge",
            MetricType::Histogram => "histogram",
        }
    }
}

/// One exposition sample: a (possibly suffixed) metric name, label
/// pairs, and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// `name{k="v",...}` — the flat identity used by both the JSON view
    /// and the drift test.
    ///
    /// Label *values* are escaped per the Prometheus text-format spec
    /// (`\` → `\\`, `"` → `\"`, newline → `\n`): a value containing a
    /// quote or newline would otherwise break out of the sample line and
    /// corrupt the whole exposition. Every rendering path — the text
    /// exposition, [`Encoder::flat_samples`], [`Encoder::to_value`] —
    /// funnels through here, so all three stay in agreement.
    pub fn flat_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        out.push('}');
        out
    }
}

struct Family {
    name: String,
    help: &'static str,
    typ: MetricType,
    samples: Vec<Sample>,
}

/// Typed metrics sample collector; see the module docs.
#[derive(Default)]
pub struct Encoder {
    families: Vec<Family>,
}

impl Encoder {
    pub fn new() -> Encoder {
        Encoder::default()
    }

    fn family(&mut self, name: &str, help: &'static str, typ: MetricType) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            debug_assert_eq!(
                self.families[i].typ, typ,
                "metric {name} re-registered with a different type"
            );
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            help,
            typ,
            samples: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    fn push(
        &mut self,
        name: &str,
        help: &'static str,
        typ: MetricType,
        suffix: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let family = self.family(name, help, typ);
        family.samples.push(Sample {
            name: format!("{name}{suffix}"),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Record an unlabelled counter sample.
    pub fn counter(&mut self, name: &str, help: &'static str, value: f64) {
        self.push(name, help, MetricType::Counter, "", &[], value);
    }

    /// Record a labelled counter sample (samples with the same `name`
    /// join one family under a single HELP/TYPE header).
    pub fn counter_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.push(name, help, MetricType::Counter, "", labels, value);
    }

    /// Record an unlabelled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &'static str, value: f64) {
        self.push(name, help, MetricType::Gauge, "", &[], value);
    }

    /// Record a labelled gauge sample.
    pub fn gauge_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.push(name, help, MetricType::Gauge, "", labels, value);
    }

    /// Record a full histogram: cumulative `(le, count)` buckets (the
    /// caller formats `le`, ending with `"+Inf"`), plus `_sum` and
    /// `_count` series.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &'static str,
        buckets: &[(String, u64)],
        sum: f64,
        count: u64,
    ) {
        for (le, cumulative) in buckets {
            self.push(
                name,
                help,
                MetricType::Histogram,
                "_bucket",
                &[("le", le.as_str())],
                *cumulative as f64,
            );
        }
        self.push(name, help, MetricType::Histogram, "_sum", &[], sum);
        self.push(
            name,
            help,
            MetricType::Histogram,
            "_count",
            &[],
            count as f64,
        );
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Render the Prometheus text exposition (format 0.0.4): families in
    /// registration order, each with `# HELP` / `# TYPE` headers.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(self.families.len() * 96);
        for family in &self.families {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.typ.as_str());
            out.push('\n');
            for sample in &family.samples {
                out.push_str(&sample.flat_name());
                out.push(' ');
                out.push_str(&fmt_value(sample.value));
                out.push('\n');
            }
        }
        out
    }

    /// Every sample as `(flat_name, value)`, in exposition order.
    pub fn flat_samples(&self) -> Vec<(String, f64)> {
        self.families
            .iter()
            .flat_map(|f| f.samples.iter().map(|s| (s.flat_name(), s.value)))
            .collect()
    }

    /// The same samples as a flat JSON object (`flat_name` → number),
    /// integer-typed where exact.
    pub fn to_value(&self) -> Value {
        Value::Object(
            self.flat_samples()
                .into_iter()
                .map(|(name, value)| (name, number(value)))
                .collect(),
        )
    }
}

/// Exposition value formatting: integers render without a decimal point
/// (matching the hand-written exposition this replaced); everything else
/// uses Rust's shortest float form.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn number(v: f64) -> Value {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        if v >= 0.0 {
            Value::UInt(v as u64)
        } else {
            Value::Int(v as i64)
        }
    } else {
        Value::Float(v)
    }
}

/// A metrics collector: encodes one subsystem's snapshot on scrape.
type Collector = Box<dyn Fn(&mut Encoder) + Send + Sync>;

/// A set of collector closures encoded on every scrape. Serve holds one
/// so an embedding process (the repro daemon after a build) can export
/// pipeline/crawl/corpus telemetry through `/v1/metrics` and
/// `/v1/stats` alongside the server's own counters.
#[derive(Default)]
pub struct Registry {
    collectors: Mutex<Vec<Collector>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add a collector; it runs on every subsequent [`collect_into`].
    ///
    /// [`collect_into`]: Registry::collect_into
    pub fn register(&self, collector: impl Fn(&mut Encoder) + Send + Sync + 'static) {
        self.collectors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(collector));
    }

    /// Run every registered collector against `enc`.
    pub fn collect_into(&self, enc: &mut Encoder) {
        for collector in self
            .collectors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            collector(enc);
        }
    }

    /// Number of registered collectors.
    pub fn len(&self) -> usize {
        self.collectors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience: encode all collectors and render the exposition.
    pub fn prometheus_text(&self) -> String {
        let mut enc = Encoder::new();
        self.collect_into(&mut enc);
        enc.prometheus_text()
    }
}

/// Git SHA baked in at compile time by the crate's build script
/// (`"unknown"` outside a git checkout).
pub fn git_sha() -> &'static str {
    env!("LANGCRUX_GIT_SHA")
}

/// Capability flags compiled into this build, reported by `/v1/healthz`.
pub fn feature_flags() -> Vec<&'static str> {
    let mut flags = vec!["span-tracing", "metrics-registry", "chrome-trace-export"];
    if cfg!(debug_assertions) {
        flags.push("debug-assertions");
    }
    flags
}

/// Encode the standard `langcrux_build_info` gauge (value always 1).
pub fn encode_build_info(enc: &mut Encoder, service: &str, version: &str) {
    enc.gauge_with(
        "langcrux_build_info",
        "Build metadata; the value is always 1.",
        &[
            ("service", service),
            ("version", version),
            ("git_sha", git_sha()),
        ],
        1.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_group_into_one_family_per_name() {
        let mut enc = Encoder::new();
        enc.counter_with("reqs_total", "Requests.", &[("endpoint", "a")], 2.0);
        enc.counter_with("reqs_total", "Requests.", &[("endpoint", "b")], 3.0);
        enc.gauge("depth", "Depth.", 7.0);
        let text = enc.prometheus_text();
        assert_eq!(text.matches("# TYPE reqs_total counter").count(), 1);
        assert!(text.contains("reqs_total{endpoint=\"a\"} 2\n"));
        assert!(text.contains("reqs_total{endpoint=\"b\"} 3\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth 7\n"));
    }

    #[test]
    fn histogram_renders_buckets_sum_count() {
        let mut enc = Encoder::new();
        enc.histogram(
            "lat_us",
            "Latency.",
            &[("100".to_string(), 1), ("+Inf".to_string(), 2)],
            250.5,
            2,
        );
        let text = enc.prometheus_text();
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum 250.5\n"));
        assert!(text.contains("lat_us_count 2\n"));
    }

    #[test]
    fn flat_samples_and_json_view_agree_with_exposition() {
        let mut enc = Encoder::new();
        enc.counter("a_total", "A.", 5.0);
        enc.gauge_with("b", "B.", &[("k", "v")], 1.5);
        let flat = enc.flat_samples();
        assert_eq!(
            flat,
            vec![
                ("a_total".to_string(), 5.0),
                ("b{k=\"v\"}".to_string(), 1.5)
            ]
        );
        let json = serde_json::to_string(&enc.to_value()).unwrap();
        assert_eq!(json, "{\"a_total\":5,\"b{k=\\\"v\\\"}\":1.5}");
    }

    #[test]
    fn hostile_label_values_are_escaped_in_every_view() {
        let mut enc = Encoder::new();
        enc.counter_with(
            "evil_total",
            "Hostile labels.",
            &[("path", "a\"b\\c\nd")],
            1.0,
        );
        let text = enc.prometheus_text();
        // The sample line must carry the spec escapes — and in particular
        // must stay a single line.
        assert!(
            text.contains("evil_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{text:?}"
        );
        assert_eq!(text.lines().count(), 3, "{text:?}");
        // flat_samples and the JSON view agree with the exposition.
        let flat = enc.flat_samples();
        assert_eq!(flat[0].0, "evil_total{path=\"a\\\"b\\\\c\\nd\"}");
        let json = serde_json::to_string(&enc.to_value()).unwrap();
        assert!(json.contains("evil_total"), "{json}");
        // A benign value is untouched.
        let plain = Sample {
            name: "ok".into(),
            labels: vec![("k".into(), "v".into())],
            value: 0.0,
        };
        assert_eq!(plain.flat_name(), "ok{k=\"v\"}");
    }

    #[test]
    fn registry_collectors_run_on_every_scrape() {
        let registry = Registry::new();
        assert!(registry.is_empty());
        registry.register(|enc| enc.counter("c_total", "C.", 1.0));
        assert_eq!(registry.len(), 1);
        let text = registry.prometheus_text();
        assert!(text.contains("c_total 1\n"));
    }

    #[test]
    fn build_info_carries_service_version_sha() {
        let mut enc = Encoder::new();
        encode_build_info(&mut enc, "serve", "0.1.0");
        let text = enc.prometheus_text();
        assert!(text.contains("langcrux_build_info{service=\"serve\",version=\"0.1.0\",git_sha=\""));
        assert!(!git_sha().is_empty());
        assert!(feature_flags().contains(&"span-tracing"));
    }
}
