//! Bakes the git SHA into the build so `/v1/healthz` and metrics
//! snapshots can report exactly which tree produced them. Falls back to
//! `"unknown"` outside a git checkout (e.g. a source tarball).

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=LANGCRUX_GIT_SHA={sha}");
    // Re-run when HEAD moves so the SHA never goes stale in incremental
    // builds; harmless if the path does not exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
