//! The LangCrUX dataset model.
//!
//! What the paper releases as "LangCrUX, the first large-scale dataset of
//! 120,000 popular websites across 12 languages": per-site records of
//! visible-language composition, accessibility-element states (with filter
//! verdicts and label-language classes), audit scores, and the per-country
//! crawl provenance. Serializes to JSON via serde (`Dataset::to_json` /
//! `Dataset::from_json`), which is the open-source release format.
//!
//! Element records store *metrics and classifications*, not raw label text
//! (120k sites × hundreds of elements of text would dominate memory);
//! illustrative raw examples for the paper's Tables 4 and 5 are captured
//! separately in [`Dataset::extreme_examples`] / [`Dataset::mismatch_examples`].

use langcrux_filter::DiscardCategory;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Country;
use langcrux_langid::LabelLanguage;
use serde::{field, DeError, Deserialize, Serialize, Value};

/// State of one accessibility element on a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TextState {
    /// No accessibility-text source present.
    Missing,
    /// Source present but whitespace-only.
    Empty,
    /// Non-empty text, with its measured properties.
    Present {
        /// Unicode chars (Table 2 "text length").
        chars: u32,
        /// Whitespace tokens (Table 2 "word count").
        words: u32,
        /// `Some(cat)` when the filter discarded it as uninformative.
        discard: Option<DiscardCategory>,
        /// Language class (meaningful for informative texts).
        label: LabelLanguage,
    },
}

/// One accessibility element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementRecord {
    pub kind: ElementKind,
    pub state: TextState,
}

/// Per-site translation-gap summary, aggregated from the audit layer's
/// [`GapReport`](langcrux_audit::GapReport) and Kizuki's speak-order
/// outcome model. Present only on gap-enabled runs where at least one
/// region was flagged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteGaps {
    /// Flagged regions on the landing page.
    pub regions: u32,
    /// Untranslated `nav`/`header`/`footer` chrome landmarks.
    pub chrome: u32,
    /// Subtrees whose `lang` attribute contradicts their content.
    pub lang_attr: u32,
    /// Unmarked foreign-script fallback regions.
    pub fallback: u32,
    /// Foreign distinguishing characters across flagged regions.
    pub foreign_chars: u64,
    /// Gap regions a VoiceOver-like reader would mispronounce (it picks
    /// an engine for the claimed language and reads foreign text with it).
    pub mispronounced: u32,
    /// Gap regions such a reader would skip outright (no engine at all).
    pub skipped: u32,
}

/// One website in the dataset.
///
/// Serialization is hand-written (not derived) for one reason: the
/// optional `gaps` object must be *absent* — not `null` — when a site has
/// no translation-gap summary, so datasets built with gap scenarios
/// disabled serialize byte-identically to those produced before the gap
/// dimension existed. The field order matches the old derive exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRecord {
    pub host: String,
    pub country: Country,
    /// CrUX-style global rank.
    pub rank: u64,
    /// Percent of visible distinguishing characters in the native language.
    pub visible_native_pct: f64,
    /// Percent in Latin/English.
    pub visible_english_pct: f64,
    /// Declared `<html lang>`, if any.
    pub declared_lang: Option<String>,
    /// Every accessibility element extracted from the landing page.
    pub elements: Vec<ElementRecord>,
    /// Base Lighthouse-style score (0–100).
    pub base_score: f64,
    /// Score after Kizuki's language-aware checks.
    pub kizuki_score: f64,
    /// Whether the site passes base `image-alt` (Figure 6 eligibility).
    pub kizuki_eligible: bool,
    /// Translation-gap summary; `None` when gap scenarios were disabled
    /// or the page audited clean.
    pub gaps: Option<SiteGaps>,
}

impl Serialize for SiteRecord {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("host".to_string(), self.host.to_value()),
            ("country".to_string(), self.country.to_value()),
            ("rank".to_string(), self.rank.to_value()),
            (
                "visible_native_pct".to_string(),
                self.visible_native_pct.to_value(),
            ),
            (
                "visible_english_pct".to_string(),
                self.visible_english_pct.to_value(),
            ),
            ("declared_lang".to_string(), self.declared_lang.to_value()),
            ("elements".to_string(), self.elements.to_value()),
            ("base_score".to_string(), self.base_score.to_value()),
            ("kizuki_score".to_string(), self.kizuki_score.to_value()),
            (
                "kizuki_eligible".to_string(),
                self.kizuki_eligible.to_value(),
            ),
        ];
        if let Some(gaps) = &self.gaps {
            obj.push(("gaps".to_string(), gaps.to_value()));
        }
        Value::Object(obj)
    }
}

impl Deserialize for SiteRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        Ok(SiteRecord {
            host: field(obj, "host")?,
            country: field(obj, "country")?,
            rank: field(obj, "rank")?,
            visible_native_pct: field(obj, "visible_native_pct")?,
            visible_english_pct: field(obj, "visible_english_pct")?,
            declared_lang: field(obj, "declared_lang")?,
            elements: field(obj, "elements")?,
            base_score: field(obj, "base_score")?,
            kizuki_score: field(obj, "kizuki_score")?,
            kizuki_eligible: field(obj, "kizuki_eligible")?,
            gaps: match v.get("gaps") {
                Some(g) => Some(SiteGaps::from_value(g)?),
                None => None,
            },
        })
    }
}

impl SiteRecord {
    /// Elements of a kind.
    pub fn of_kind(&self, kind: ElementKind) -> impl Iterator<Item = &ElementRecord> {
        self.elements.iter().filter(move |e| e.kind == kind)
    }

    /// Counts of informative a11y texts by language class:
    /// `(native, english, mixed)`.
    pub fn informative_lang_counts(&self) -> (u32, u32, u32) {
        let mut counts = (0u32, 0u32, 0u32);
        for e in &self.elements {
            if let TextState::Present {
                discard: None,
                label,
                ..
            } = &e.state
            {
                match label {
                    LabelLanguage::Native => counts.0 += 1,
                    LabelLanguage::English => counts.1 += 1,
                    LabelLanguage::Mixed => counts.2 += 1,
                    _ => {}
                }
            }
        }
        counts
    }

    /// Percent of informative a11y texts in the native language; `None`
    /// when the site has no informative a11y text at all.
    pub fn a11y_native_pct(&self) -> Option<f64> {
        let (native, english, mixed) = self.informative_lang_counts();
        let total = native + english + mixed;
        if total == 0 {
            None
        } else {
            Some(f64::from(native) * 100.0 / f64::from(total))
        }
    }
}

/// An extreme accessibility-text example (Table 4 / Appendix E).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtremeExample {
    pub host: String,
    pub country: Country,
    pub kind: ElementKind,
    pub chars: u32,
    pub words: u32,
    /// First 120 characters of the offending text.
    pub preview: String,
}

/// A visible/accessibility language-mismatch example (Table 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MismatchExample {
    pub host: String,
    pub country: Country,
    pub visible_native_pct: f64,
    /// An English alt text found on the native-language page.
    pub alt_preview: String,
}

/// Per-country crawl provenance (the §2 selection workflow's telemetry).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CountryCrawlSummary {
    pub country_code: String,
    /// Candidates fetched (rank order).
    pub attempted: u64,
    /// Sites accepted into the dataset.
    pub selected: u64,
    /// Candidates rejected by the 50% language threshold.
    pub rejected_threshold: u64,
    /// Candidates lost to network failures after retries.
    pub failed_fetch: u64,
    /// Candidates that served restricted/bot-wall content.
    pub restricted: u64,
}

/// The full dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Workspace seed the corpus was generated from.
    pub seed: u64,
    /// Target sites per country.
    pub quota: usize,
    pub records: Vec<SiteRecord>,
    pub crawl_summaries: Vec<CountryCrawlSummary>,
    pub extreme_examples: Vec<ExtremeExample>,
    pub mismatch_examples: Vec<MismatchExample>,
}

impl Dataset {
    /// Records for one country.
    pub fn in_country(&self, country: Country) -> impl Iterator<Item = &SiteRecord> {
        self.records.iter().filter(move |r| r.country == country)
    }

    /// Countries present, in study order.
    pub fn countries(&self) -> Vec<Country> {
        Country::STUDY
            .iter()
            .copied()
            .filter(|c| self.records.iter().any(|r| r.country == *c))
            .collect()
    }

    /// Total site count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize to pretty JSON (the release format).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Load from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Dataset> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn present(
        kind: ElementKind,
        discard: Option<DiscardCategory>,
        label: LabelLanguage,
    ) -> ElementRecord {
        ElementRecord {
            kind,
            state: TextState::Present {
                chars: 10,
                words: 2,
                discard,
                label,
            },
        }
    }

    fn record() -> SiteRecord {
        SiteRecord {
            host: "sangbad-1.bd".into(),
            country: Country::Bangladesh,
            rank: 1200,
            visible_native_pct: 92.0,
            visible_english_pct: 8.0,
            declared_lang: Some("bn".into()),
            elements: vec![
                present(ElementKind::ImageAlt, None, LabelLanguage::Native),
                present(ElementKind::ImageAlt, None, LabelLanguage::English),
                present(ElementKind::ImageAlt, None, LabelLanguage::English),
                present(
                    ElementKind::ButtonName,
                    Some(DiscardCategory::GenericAction),
                    LabelLanguage::English,
                ),
                present(ElementKind::LinkName, None, LabelLanguage::Mixed),
                ElementRecord {
                    kind: ElementKind::ImageAlt,
                    state: TextState::Missing,
                },
            ],
            base_score: 93.0,
            kizuki_score: 86.0,
            kizuki_eligible: true,
            gaps: None,
        }
    }

    #[test]
    fn informative_lang_counts_skip_discarded_and_missing() {
        let r = record();
        assert_eq!(r.informative_lang_counts(), (1, 2, 1));
        let pct = r.a11y_native_pct().unwrap();
        assert!((pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn a11y_native_pct_none_when_no_informative() {
        let mut r = record();
        r.elements.clear();
        assert_eq!(r.a11y_native_pct(), None);
    }

    #[test]
    fn of_kind_filters() {
        let r = record();
        assert_eq!(r.of_kind(ElementKind::ImageAlt).count(), 4);
        assert_eq!(r.of_kind(ElementKind::SelectName).count(), 0);
    }

    #[test]
    fn json_round_trip() {
        let ds = Dataset {
            seed: 42,
            quota: 10,
            records: vec![record()],
            crawl_summaries: vec![CountryCrawlSummary {
                country_code: "bd".into(),
                attempted: 12,
                selected: 10,
                rejected_threshold: 1,
                failed_fetch: 1,
                restricted: 0,
            }],
            extreme_examples: vec![],
            mismatch_examples: vec![],
        };
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.seed, 42);
        assert_eq!(back.len(), 1);
        assert_eq!(back.records[0].host, "sangbad-1.bd");
        assert_eq!(back.records[0].elements.len(), 6);
        assert_eq!(back.crawl_summaries[0].selected, 10);
    }

    #[test]
    fn gap_summary_is_absent_not_null_when_missing() {
        let r = record();
        let v = r.to_value();
        assert!(
            v.get("gaps").is_none(),
            "a gap-free record must not carry a `gaps` key at all"
        );
        // And a pre-gap-dimension record (no `gaps` key) still loads.
        let back = SiteRecord::from_value(&v).unwrap();
        assert_eq!(back.gaps, None);
        assert_eq!(back.host, r.host);
    }

    #[test]
    fn gap_summary_round_trips_when_present() {
        let mut r = record();
        r.gaps = Some(SiteGaps {
            regions: 3,
            chrome: 2,
            lang_attr: 1,
            fallback: 0,
            foreign_chars: 184,
            mispronounced: 2,
            skipped: 1,
        });
        let v = r.to_value();
        assert!(v.get("gaps").is_some());
        let back = SiteRecord::from_value(&v).unwrap();
        assert_eq!(back.gaps, r.gaps);
    }

    #[test]
    fn countries_in_study_order() {
        let mut ds = Dataset::default();
        let mut r1 = record();
        r1.country = Country::Thailand;
        let mut r2 = record();
        r2.country = Country::China;
        ds.records = vec![r1, r2];
        assert_eq!(ds.countries(), vec![Country::China, Country::Thailand]);
    }
}
