//! # langcrux-core
//!
//! The LangCrUX measurement pipeline: the paper's methodology (Figure 1)
//! end-to-end, plus the statistics and analyses behind every table and
//! figure of the evaluation.
//!
//! ```text
//! candidate pool ──select_languages──▶ 12 language-country pairs
//! corpus (webgen) ──select_websites──▶ rank-ordered, threshold-verified sites
//!                 ──build_dataset────▶ Dataset (the LangCrUX release)
//! Dataset ──analysis::*──▶ Table 2/3/4/5, Figures 2–9, headline findings
//! ```
//!
//! * [`stats`] — summaries, CDFs, histograms, count grids.
//! * [`selection`] — the §2 inclusion criteria (languages and websites).
//! * [`pipeline`] — crawl + extract + filter + classify + audit, per
//!   country on a worker pool, with unwind-guarded work units.
//! * [`ledger`] — the degraded-run ledger: per-country error taxonomy,
//!   retry/backoff/breaker accounting, replacement-chain depth.
//! * [`dist`] — the fault-tolerant distributed build: coordinator/worker
//!   sharding with lease-based reassignment, checkpoint/resume, and
//!   byte-identical recovery under injected crashes.
//! * [`dataset`] — the serializable LangCrUX data model.
//! * [`analysis`] — one function per paper artefact.
//! * [`render`] — plain-text rendering used by the `repro` harness.
//! * [`report`] — one-shot Markdown report over a whole dataset.

pub mod analysis;
pub mod dataset;
pub mod dist;
pub mod ledger;
pub mod pipeline;
pub mod render;
pub mod report;
pub mod selection;
pub mod stats;

pub use dataset::{Dataset, SiteGaps, SiteRecord, TextState};
pub use dist::{
    build_dataset_distributed, DistBuild, DistHalted, DistOptions, DistStats, LocalExecutor,
    UnitError, UnitExecutor, UnitRequest, WireBuildConfig, WorkerState,
};
pub use ledger::{CountryLedger, CrawlLedger, DegradedUnit, ErrorTaxonomy};
pub use pipeline::{build_dataset, build_dataset_with_ledger, PipelineOptions};
pub use report::markdown_report;
pub use selection::{select_languages, select_websites, LanguageVerdict};
