//! Analyses: one function per table/figure of the paper.
//!
//! Every function consumes the measured [`Dataset`] (never the generator's
//! calibration tables) and produces a plain data structure that the
//! `render` module formats and the `repro` binary prints. The experiment
//! ids match DESIGN.md's index (T2 = Table 2, F5 = Figure 5, …).

use crate::dataset::{Dataset, SiteRecord, TextState};
use crate::stats::{Cdf, CountGrid, Histogram, Summary};
use langcrux_filter::DiscardCategory;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Country;
use langcrux_langid::LabelLanguage;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------- Table 2

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementStatsRow {
    pub kind: ElementKind,
    /// Per-site missing percentage (sites with ≥1 element of the kind).
    pub missing: Summary,
    /// Per-site empty percentage.
    pub empty: Summary,
    /// Text length (chars) over all non-empty texts.
    pub text_len: Summary,
    /// Word count over all non-empty texts.
    pub word_count: Summary,
}

/// T2: per-element statistics across the whole dataset.
pub fn table2(ds: &Dataset) -> Vec<ElementStatsRow> {
    ElementKind::TABLE2
        .iter()
        .map(|&kind| element_stats(ds, kind))
        .collect()
}

fn element_stats(ds: &Dataset, kind: ElementKind) -> ElementStatsRow {
    let mut missing_pcts = Vec::new();
    let mut empty_pcts = Vec::new();
    let mut lens = Vec::new();
    let mut words = Vec::new();
    for record in &ds.records {
        let mut total = 0u32;
        let mut missing = 0u32;
        let mut empty = 0u32;
        for e in record.of_kind(kind) {
            total += 1;
            match &e.state {
                TextState::Missing => missing += 1,
                TextState::Empty => empty += 1,
                TextState::Present {
                    chars, words: w, ..
                } => {
                    lens.push(f64::from(*chars));
                    words.push(f64::from(*w));
                }
            }
        }
        if total > 0 {
            missing_pcts.push(f64::from(missing) * 100.0 / f64::from(total));
            empty_pcts.push(f64::from(empty) * 100.0 / f64::from(total));
        }
    }
    ElementStatsRow {
        kind,
        missing: Summary::of(&missing_pcts),
        empty: Summary::of(&empty_pcts),
        text_len: Summary::of(&lens),
        word_count: Summary::of(&words),
    }
}

// ---------------------------------------------------------------- Figure 2

/// F2: per-site visible-language points for one country:
/// `(english_pct, native_pct)`.
pub fn visible_scatter(ds: &Dataset, country: Country) -> Vec<(f64, f64)> {
    ds.in_country(country)
        .map(|r| (r.visible_english_pct, r.visible_native_pct))
        .collect()
}

// ---------------------------------------------------------------- Figure 3

/// A discard distribution: percent of all non-empty accessibility texts
/// per category (indexed by `DiscardCategory::ALL`), plus the informative
/// remainder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscardDistribution {
    pub label: String,
    pub total_texts: u64,
    pub pct: [f64; 11],
    pub informative_pct: f64,
}

fn discard_distribution<'a>(
    label: String,
    elements: impl Iterator<Item = &'a TextState>,
) -> DiscardDistribution {
    let mut counts = [0u64; 11];
    let mut informative = 0u64;
    let mut total = 0u64;
    for state in elements {
        if let TextState::Present { discard, .. } = state {
            total += 1;
            match discard {
                Some(cat) => {
                    counts[DiscardCategory::ALL
                        .iter()
                        .position(|c| c == cat)
                        .expect("cat indexed")] += 1
                }
                None => informative += 1,
            }
        }
    }
    let pct = |n: u64| {
        if total == 0 {
            0.0
        } else {
            n as f64 * 100.0 / total as f64
        }
    };
    let mut out = [0.0; 11];
    for (i, c) in counts.iter().enumerate() {
        out[i] = pct(*c);
    }
    DiscardDistribution {
        label,
        total_texts: total,
        pct: out,
        informative_pct: pct(informative),
    }
}

/// F3: discard distribution per country.
pub fn discard_by_country(ds: &Dataset) -> Vec<DiscardDistribution> {
    ds.countries()
        .into_iter()
        .map(|country| {
            discard_distribution(
                country.code().to_string(),
                ds.in_country(country)
                    .flat_map(|r| r.elements.iter().map(|e| &e.state)),
            )
        })
        .collect()
}

/// F9: discard distribution per element kind.
pub fn discard_by_element(ds: &Dataset) -> Vec<DiscardDistribution> {
    ElementKind::ALL
        .iter()
        .map(|&kind| {
            discard_distribution(
                kind.audit_id().to_string(),
                ds.records
                    .iter()
                    .flat_map(move |r| r.of_kind(kind).map(|e| &e.state)),
            )
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 4

/// F4: language distribution of informative accessibility texts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LangDistRow {
    pub country_code: String,
    pub native_pct: f64,
    pub english_pct: f64,
    pub mixed_pct: f64,
    pub informative_texts: u64,
}

/// F4 for every country (percentages normalised over the three buckets).
pub fn lang_distribution(ds: &Dataset) -> Vec<LangDistRow> {
    ds.countries()
        .into_iter()
        .map(|country| {
            let mut native = 0u64;
            let mut english = 0u64;
            let mut mixed = 0u64;
            for record in ds.in_country(country) {
                for e in &record.elements {
                    if let TextState::Present {
                        discard: None,
                        label,
                        ..
                    } = &e.state
                    {
                        match label {
                            LabelLanguage::Native => native += 1,
                            LabelLanguage::English => english += 1,
                            LabelLanguage::Mixed => mixed += 1,
                            _ => {}
                        }
                    }
                }
            }
            let total = native + english + mixed;
            let pct = |n: u64| {
                if total == 0 {
                    0.0
                } else {
                    n as f64 * 100.0 / total as f64
                }
            };
            LangDistRow {
                country_code: country.code().to_string(),
                native_pct: pct(native),
                english_pct: pct(english),
                mixed_pct: pct(mixed),
                informative_texts: total,
            }
        })
        .collect()
}

// ------------------------------------------------------------- Figures 5/8

/// F5: per-country CDFs of native share in visible vs accessibility text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MismatchCdfs {
    pub country_code: String,
    pub visible: Cdf,
    pub a11y: Cdf,
    /// Share of sites (%) with <10% native accessibility text — the §4
    /// mismatch headline (sites without informative a11y text count as 0%).
    pub sites_below_10pct_native_a11y: f64,
}

/// Per-site native share of accessibility text; `0` for sites with no
/// informative a11y text (they offer a native-language user nothing).
fn site_a11y_native_pct(record: &SiteRecord) -> f64 {
    record.a11y_native_pct().unwrap_or(0.0)
}

/// F5 for every country.
pub fn mismatch_cdfs(ds: &Dataset) -> Vec<MismatchCdfs> {
    ds.countries()
        .into_iter()
        .map(|country| {
            let visible: Vec<f64> = ds
                .in_country(country)
                .map(|r| r.visible_native_pct)
                .collect();
            let a11y: Vec<f64> = ds.in_country(country).map(site_a11y_native_pct).collect();
            let below = if a11y.is_empty() {
                0.0
            } else {
                a11y.iter().filter(|v| **v < 10.0).count() as f64 * 100.0 / a11y.len() as f64
            };
            MismatchCdfs {
                country_code: country.code().to_string(),
                visible: Cdf::of(&visible),
                a11y: Cdf::of(&a11y),
                sites_below_10pct_native_a11y: below,
            }
        })
        .collect()
}

/// F8: per-site `(visible_native_pct, a11y_native_pct)` points.
pub fn mismatch_scatter(ds: &Dataset, country: Country) -> Vec<(f64, f64)> {
    ds.in_country(country)
        .map(|r| (r.visible_native_pct, site_a11y_native_pct(r)))
        .collect()
}

/// F8 companion: per-country Pearson correlation between visible and
/// accessibility native shares. The paper's scatter plots show visually
/// that the two are only weakly coupled (English a11y text on strongly
/// native pages); the coefficient quantifies it.
pub fn mismatch_correlation(ds: &Dataset) -> Vec<(String, Option<f64>)> {
    ds.countries()
        .into_iter()
        .map(|country| {
            let points = mismatch_scatter(ds, country);
            (country.code().to_string(), crate::stats::pearson(&points))
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 6

/// F6: the Kizuki before/after score experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KizukiShift {
    /// Countries included (the paper: Bangladesh and Thailand).
    pub countries: Vec<String>,
    /// Sites passing base image-alt (the inclusion rule).
    pub eligible_sites: u64,
    pub old_scores: Histogram,
    pub new_scores: Histogram,
    pub old_above_90_pct: f64,
    pub new_above_90_pct: f64,
    pub old_perfect_pct: f64,
    pub new_perfect_pct: f64,
}

/// F6 over the given countries (defaults in the caller: bd + th).
pub fn kizuki_shift(ds: &Dataset, countries: &[Country]) -> KizukiShift {
    let mut old_scores = Histogram::uniform(30.0, 100.0, 14);
    let mut new_scores = Histogram::uniform(30.0, 100.0, 14);
    let mut eligible = 0u64;
    let mut old_above = 0u64;
    let mut new_above = 0u64;
    let mut old_perfect = 0u64;
    let mut new_perfect = 0u64;
    for &country in countries {
        for record in ds.in_country(country) {
            if !record.kizuki_eligible {
                continue;
            }
            eligible += 1;
            old_scores.add(record.base_score);
            new_scores.add(record.kizuki_score);
            if record.base_score > 90.0 {
                old_above += 1;
            }
            if record.kizuki_score > 90.0 {
                new_above += 1;
            }
            if record.base_score >= 100.0 - 1e-9 {
                old_perfect += 1;
            }
            if record.kizuki_score >= 100.0 - 1e-9 {
                new_perfect += 1;
            }
        }
    }
    let pct = |n: u64| {
        if eligible == 0 {
            0.0
        } else {
            n as f64 * 100.0 / eligible as f64
        }
    };
    KizukiShift {
        countries: countries.iter().map(|c| c.code().to_string()).collect(),
        eligible_sites: eligible,
        old_scores,
        new_scores,
        old_above_90_pct: pct(old_above),
        new_above_90_pct: pct(new_above),
        old_perfect_pct: pct(old_perfect),
        new_perfect_pct: pct(new_perfect),
    }
}

// ---------------------------------------------------------------- Figure 7

/// Figure 7's rank buckets (upper edges).
pub const RANK_BUCKETS: [(u64, &str); 7] = [
    (1_000, "1k"),
    (5_000, "5k"),
    (10_000, "10k"),
    (50_000, "50k"),
    (100_000, "100k"),
    (500_000, "500k"),
    (1_000_000, "1M"),
];

/// F7: rank-bucket × country site counts.
pub fn rank_heatmap(ds: &Dataset) -> CountGrid {
    let rows: Vec<String> = RANK_BUCKETS.iter().map(|(_, l)| l.to_string()).collect();
    let countries = ds.countries();
    let cols: Vec<String> = countries.iter().map(|c| c.code().to_string()).collect();
    let mut grid = CountGrid::new(rows, cols);
    for (col, country) in countries.iter().enumerate() {
        for record in ds.in_country(*country) {
            let row = RANK_BUCKETS
                .iter()
                .position(|(edge, _)| record.rank <= *edge)
                .unwrap_or(RANK_BUCKETS.len() - 1);
            grid.add(row, col, 1);
        }
    }
    grid
}

// ----------------------------------------------------- Declared language

/// X3 (extension): how trustworthy is the declared `<html lang>` metadata
/// that screen readers rely on for pronunciation? §1 of the paper blames
/// metadata that is "absent, incorrect, or inconsistent with the visible
/// text"; this analysis quantifies all three states per country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeclaredLangRow {
    pub country_code: String,
    /// Sites with any `lang` attribute (%).
    pub declared_pct: f64,
    /// Sites whose declaration matches the native language (%).
    pub correct_pct: f64,
    /// Sites declaring a language that contradicts their visible content (%).
    pub incorrect_pct: f64,
    /// Sites with no declaration at all (%).
    pub absent_pct: f64,
}

/// X3 for every country.
pub fn declared_lang(ds: &Dataset) -> Vec<DeclaredLangRow> {
    ds.countries()
        .into_iter()
        .map(|country| {
            let native_primary = country
                .target_language()
                .tag()
                .split('-')
                .next()
                .expect("tag has primary subtag")
                .to_string();
            let mut declared = 0u64;
            let mut correct = 0u64;
            let mut total = 0u64;
            for record in ds.in_country(country) {
                total += 1;
                if let Some(tag) = &record.declared_lang {
                    declared += 1;
                    let primary = tag
                        .split(['-', '_'])
                        .next()
                        .unwrap_or("")
                        .to_ascii_lowercase();
                    if primary == native_primary {
                        correct += 1;
                    }
                }
            }
            let pct = |n: u64| {
                if total == 0 {
                    0.0
                } else {
                    n as f64 * 100.0 / total as f64
                }
            };
            DeclaredLangRow {
                country_code: country.code().to_string(),
                declared_pct: pct(declared),
                correct_pct: pct(correct),
                incorrect_pct: pct(declared - correct),
                absent_pct: pct(total - declared),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Headlines

/// X1: headline findings of §1/§3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Headlines {
    /// Per-country share of sites with <10% native accessibility text.
    pub mismatch_share: Vec<(String, f64)>,
    /// Share of *all* non-empty texts that the filter discarded.
    pub discarded_share_pct: f64,
    /// Total sites.
    pub sites: u64,
}

/// Compute the headline findings.
pub fn headlines(ds: &Dataset) -> Headlines {
    let cdfs = mismatch_cdfs(ds);
    let mismatch_share = cdfs
        .iter()
        .map(|c| (c.country_code.clone(), c.sites_below_10pct_native_a11y))
        .collect();
    let all = discard_distribution(
        "all".to_string(),
        ds.records
            .iter()
            .flat_map(|r| r.elements.iter().map(|e| &e.state)),
    );
    Headlines {
        mismatch_share,
        discarded_share_pct: 100.0 - all.informative_pct,
        sites: ds.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ElementRecord;

    fn present(
        kind: ElementKind,
        chars: u32,
        words: u32,
        discard: Option<DiscardCategory>,
        label: LabelLanguage,
    ) -> ElementRecord {
        ElementRecord {
            kind,
            state: TextState::Present {
                chars,
                words,
                discard,
                label,
            },
        }
    }

    fn site(country: Country, host: &str, elements: Vec<ElementRecord>) -> SiteRecord {
        SiteRecord {
            host: host.into(),
            country,
            rank: 2_000,
            visible_native_pct: 90.0,
            visible_english_pct: 10.0,
            declared_lang: None,
            elements,
            base_score: 95.0,
            kizuki_score: 88.0,
            kizuki_eligible: true,
            gaps: None,
        }
    }

    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::default();
        ds.records.push(site(
            Country::Bangladesh,
            "a.bd",
            vec![
                present(ElementKind::ImageAlt, 20, 4, None, LabelLanguage::English),
                present(ElementKind::ImageAlt, 15, 3, None, LabelLanguage::Native),
                ElementRecord {
                    kind: ElementKind::ImageAlt,
                    state: TextState::Missing,
                },
                ElementRecord {
                    kind: ElementKind::ImageAlt,
                    state: TextState::Empty,
                },
            ],
        ));
        ds.records.push(site(
            Country::Bangladesh,
            "b.bd",
            vec![
                present(
                    ElementKind::ImageAlt,
                    4,
                    1,
                    Some(DiscardCategory::Placeholder),
                    LabelLanguage::English,
                ),
                present(ElementKind::ImageAlt, 30, 6, None, LabelLanguage::Mixed),
            ],
        ));
        ds
    }

    #[test]
    fn table2_per_site_percentages() {
        let ds = toy_dataset();
        let rows = table2(&ds);
        let image = rows
            .iter()
            .find(|r| r.kind == ElementKind::ImageAlt)
            .unwrap();
        // Site a: 25% missing, 25% empty. Site b: 0%, 0%.
        assert_eq!(image.missing.count, 2);
        assert!((image.missing.mean - 12.5).abs() < 1e-9);
        assert!((image.empty.mean - 12.5).abs() < 1e-9);
        // 4 non-empty texts: lengths 20, 15, 4, 30.
        assert_eq!(image.text_len.count, 4);
        assert!((image.text_len.mean - 17.25).abs() < 1e-9);
        // Kinds with no elements produce empty summaries.
        let label = rows.iter().find(|r| r.kind == ElementKind::Label).unwrap();
        assert_eq!(label.missing.count, 0);
    }

    #[test]
    fn fig3_discard_distribution() {
        let ds = toy_dataset();
        let rows = discard_by_country(&ds);
        assert_eq!(rows.len(), 1);
        let bd = &rows[0];
        assert_eq!(bd.label, "bd");
        assert_eq!(bd.total_texts, 4);
        let placeholder_idx = DiscardCategory::ALL
            .iter()
            .position(|c| *c == DiscardCategory::Placeholder)
            .unwrap();
        assert!((bd.pct[placeholder_idx] - 25.0).abs() < 1e-9);
        assert!((bd.informative_pct - 75.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_lang_distribution_normalised() {
        let ds = toy_dataset();
        let rows = lang_distribution(&ds);
        let bd = &rows[0];
        assert_eq!(bd.informative_texts, 3);
        assert!((bd.native_pct + bd.english_pct + bd.mixed_pct - 100.0).abs() < 1e-9);
        assert!((bd.native_pct - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig5_counts_no_informative_as_zero() {
        let mut ds = toy_dataset();
        ds.records.push(site(Country::Bangladesh, "c.bd", vec![]));
        let cdfs = mismatch_cdfs(&ds);
        let bd = &cdfs[0];
        assert_eq!(bd.a11y.len(), 3);
        // c.bd has no informative texts -> 0% native -> below 10%.
        // a.bd: 1/2 native = 50%. b.bd: 0 native of 1 -> 0%.
        assert!((bd.sites_below_10pct_native_a11y - 2.0 / 3.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_shift_counts() {
        let ds = toy_dataset();
        let shift = kizuki_shift(&ds, &[Country::Bangladesh, Country::Thailand]);
        assert_eq!(shift.eligible_sites, 2);
        assert!((shift.old_above_90_pct - 100.0).abs() < 1e-9);
        assert!((shift.new_above_90_pct - 0.0).abs() < 1e-9);
        assert_eq!(shift.old_scores.total(), 2);
    }

    #[test]
    fn fig7_rank_buckets() {
        let ds = toy_dataset();
        let grid = rank_heatmap(&ds);
        // rank 2000 lands in the "5k" bucket (row 1).
        assert_eq!(grid.get(1, 0), 2);
        assert_eq!(grid.col_total(0), 2);
    }

    #[test]
    fn fig8_correlation_runs() {
        let ds = toy_dataset();
        let rows = mismatch_correlation(&ds);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "bd");
        // Two sites with identical visible share -> constant x -> None.
        assert_eq!(rows[0].1, None);
    }

    #[test]
    fn fig2_and_fig8_points() {
        let ds = toy_dataset();
        let f2 = visible_scatter(&ds, Country::Bangladesh);
        assert_eq!(f2.len(), 2);
        assert_eq!(f2[0], (10.0, 90.0));
        let f8 = mismatch_scatter(&ds, Country::Bangladesh);
        assert_eq!(f8[0], (90.0, 50.0));
    }

    #[test]
    fn headlines_aggregate() {
        let ds = toy_dataset();
        let h = headlines(&ds);
        assert_eq!(h.sites, 2);
        assert!((h.discarded_share_pct - 25.0).abs() < 1e-9);
        assert_eq!(h.mismatch_share.len(), 1);
    }

    #[test]
    fn x3_declared_lang_states() {
        let mut ds = toy_dataset();
        // a.bd declares "bn" (correct); add one wrong and one absent site.
        let mut wrong = site(Country::Bangladesh, "w.bd", vec![]);
        wrong.declared_lang = Some("en".into());
        ds.records.push(wrong);
        let mut absent = site(Country::Bangladesh, "n.bd", vec![]);
        absent.declared_lang = None;
        ds.records.push(absent);
        // Toy records from site() default to declared_lang: None, except
        // we set a.bd and b.bd explicitly here.
        ds.records[0].declared_lang = Some("bn".into());
        ds.records[1].declared_lang = Some("bn-BD".into());
        let rows = declared_lang(&ds);
        let bd = &rows[0];
        assert_eq!(bd.country_code, "bd");
        // 4 sites: 2 correct (bn, bn-BD), 1 wrong (en), 1 absent.
        assert!((bd.declared_pct - 75.0).abs() < 1e-9);
        assert!((bd.correct_pct - 50.0).abs() < 1e-9);
        assert!((bd.incorrect_pct - 25.0).abs() < 1e-9);
        assert!((bd.absent_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fig9_by_element() {
        let ds = toy_dataset();
        let rows = discard_by_element(&ds);
        let image = rows.iter().find(|r| r.label == "image-alt").unwrap();
        assert_eq!(image.total_texts, 4);
        let empty_kinds = rows.iter().filter(|r| r.total_texts == 0).count();
        assert_eq!(empty_kinds, 11);
    }
}
