//! The fault-tolerant distributed build: coordinator, work units,
//! checkpoint log, and the deterministic replay that makes an N-process
//! build byte-identical to the single-process pipeline.
//!
//! ## Shape
//!
//! The coordinator plans the same probe waves as [`crate::pipeline`] —
//! per-country windows of `need + need/7 + 8` candidates, chunked into
//! `(country, candidate-range)` **work units** — but instead of handing
//! units to an in-process thread pool it dispatches them to workers
//! through a [`UnitExecutor`]. A worker executes a unit by probing every
//! candidate in its range *and*, for each qualifying candidate, running
//! the full per-site analysis, shipping back one serializable
//! [`WireVerdict`] per candidate. The coordinator then replays the
//! paper's sequential replacement walk over the concatenated verdicts —
//! the exact loop the single-process pipeline runs — so `Dataset` and
//! `CrawlLedger` bytes are independent of worker count, scheduling, and
//! failure timing.
//!
//! ## Why the bytes cannot drift
//!
//! * **Probe purity** (the PR 1 contract): a candidate's verdict is a
//!   pure function of `(corpus seed, host, vantage)`. Workers rebuild
//!   their corpus shards from [`WireBuildConfig`]; shard contents are
//!   pure in `(seed, country)`, so every worker — and every *retry* of a
//!   killed unit — computes the identical verdict list.
//! * **Wave congruence**: window extents depend only on quota and
//!   qualified counts, never on chunking, so the coordinator probes the
//!   same candidate prefix as the in-process pipeline at every worker
//!   count.
//! * **Replay**: selection, ledger folding, and example caps run in the
//!   same sequential order over the same verdicts, through the same
//!   accumulators ([`CountryLedger::record_probe_outcome`],
//!   [`tally_outcome`]).
//!
//! ## Fault tolerance
//!
//! Every dispatch carries a lease (the executor's per-unit deadline); a
//! worker that dies or stalls fails the dispatch, and the unit is
//! reassigned with capped-exponential virtual backoff (the PR 6
//! discipline, pure in `(seed, unit, attempt)`). A per-worker breaker
//! trips after consecutive failures and asks the executor to revive the
//! worker. Completed units are appended to an on-disk checkpoint log, so
//! a coordinator killed mid-run resumes without recomputation. A unit
//! still failing after `max_reassignments` is *degraded*: its country's
//! replay truncates at the hole (quota shortfall, not an abort) and the
//! loss is recorded in the ledger's `degraded_units` section.

use crate::dataset::{Dataset, ExtremeExample, MismatchExample, SiteRecord};
use crate::ledger::{CountryLedger, CrawlLedger, DegradedUnit};
use crate::pipeline::{chunk_ranges, probe_window, process_site, to_summary};
use crate::selection::{probe_candidate_traced, tally_outcome, Rejection, SelectionStats};
use langcrux_crawl::{Browser, BrowserConfig, VisitTrace};
use langcrux_kizuki::{Kizuki, ScreenReader};
use langcrux_lang::{rng, Country};
use langcrux_net::{vpn_vantage, FaultPlan};
use langcrux_obs as obs;
use langcrux_webgen::{Corpus, CorpusConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Derivation stream tag for reassignment-backoff jitter (disjoint from
/// the crawl backoff stream `0xB0FF` and the fault-roll streams).
const DIST_BACKOFF_STREAM: u64 = 0xD1B0;

/// Everything a worker process needs to rebuild a corpus congruent with
/// the coordinator's, plus the browser discipline to probe it with.
/// Carried inside every [`UnitRequest`] so workers are stateless across
/// builds (a worker caches the corpus keyed by this config's JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBuildConfig {
    pub seed: u64,
    pub sites_per_country: usize,
    pub countries: Vec<Country>,
    pub overprovision: f64,
    /// Worker-side shard residency cap (the coordinator's own cap is not
    /// shipped: workers touching a handful of countries need less).
    pub resident_shards: usize,
    pub gap_scenarios: bool,
    pub fault_plan: FaultPlan,
    pub browser: BrowserConfig,
}

impl WireBuildConfig {
    /// Capture the corpus a coordinator is building from.
    pub fn of(corpus: &Corpus, browser: BrowserConfig) -> Self {
        let config = corpus.config();
        WireBuildConfig {
            seed: config.seed,
            sites_per_country: config.sites_per_country,
            countries: config.countries.clone(),
            overprovision: config.overprovision,
            resident_shards: config.resident_shards,
            gap_scenarios: config.gap_scenarios,
            fault_plan: *corpus.internet().fault_plan(),
            browser,
        }
    }

    /// The corpus configuration this wire config describes.
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            seed: self.seed,
            sites_per_country: self.sites_per_country,
            countries: self.countries.clone(),
            overprovision: self.overprovision,
            resident_shards: self.resident_shards,
            gap_scenarios: self.gap_scenarios,
            fault_plan: self.fault_plan,
        }
    }

    /// Rebuild the corpus (`O(1)` — shards materialise lazily on first
    /// candidate touch, bit-identical to the coordinator's).
    pub fn build_corpus(&self) -> Corpus {
        Corpus::build(self.corpus_config())
    }

    /// Stable cache key for worker-side corpus reuse.
    pub fn cache_key(&self) -> String {
        serde_json::to_string(self).expect("serialize wire build config")
    }
}

/// One `(country, candidate-range)` work unit, as shipped to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRequest {
    pub config: WireBuildConfig,
    pub country: Country,
    /// Candidate range `start..end` in rank order.
    pub start: usize,
    pub end: usize,
    /// Chaos support: wall milliseconds the worker sleeps before
    /// executing, giving an externally scheduled SIGKILL time to land
    /// mid-unit. `0` in production; never affects output bytes.
    pub hold_ms: u64,
}

impl UnitRequest {
    /// Stable unit key: independent of worker assignment and attempt,
    /// survives coordinator restarts. Used for the checkpoint log and
    /// the chaos kill schedule.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.country.code(), self.start, self.end)
    }
}

/// One candidate's verdict as computed by a worker. `Selected` carries
/// the *finished* site record (plus uncapped example captures) so the
/// coordinator never fetches or analyses anything itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireOutcome {
    Selected {
        record: SiteRecord,
        extremes: Vec<ExtremeExample>,
        mismatches: Vec<MismatchExample>,
    },
    Rejected(Rejection),
}

/// One probed candidate on the wire: verdict plus its visit trace, the
/// same pair the in-process pipeline replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireVerdict {
    pub outcome: WireOutcome,
    pub trace: VisitTrace,
}

impl WireVerdict {
    fn is_selected(&self) -> bool {
        matches!(self.outcome, WireOutcome::Selected { .. })
    }

    /// The site-free verdict the shared ledger/stats accumulators fold.
    fn outcome_ref(&self) -> Result<(), &Rejection> {
        match &self.outcome {
            WireOutcome::Selected { .. } => Ok(()),
            WireOutcome::Rejected(r) => Err(r),
        }
    }
}

/// Execute one work unit against a corpus: probe every candidate in the
/// range and fully analyse each qualifying one. This is the worker-side
/// entry point — `repro --dist-worker` calls it behind the RPC endpoint,
/// and [`LocalExecutor`] calls it in-process for tests.
pub fn execute_unit(
    corpus: &Corpus,
    browser_config: BrowserConfig,
    country: Country,
    start: usize,
    end: usize,
) -> Vec<WireVerdict> {
    let mut span = obs::trace::span("dist.unit", obs::trace::key_str(country.code()));
    let vantage = vpn_vantage(country).unwrap_or_else(|| panic!("no VPN endpoint for {country:?}"));
    let native = country.target_language();
    let kizuki = Kizuki::standard();
    let reader = ScreenReader::voiceover_like();
    let gaps_enabled = corpus.config().gap_scenarios;
    let mut browser = Browser::new(corpus.internet(), browser_config);
    let mut verdicts = Vec::with_capacity(end - start);
    let mut virtual_ms = 0u64;
    for plan in corpus.candidates(country)[start..end].iter() {
        let (outcome, trace) = probe_candidate_traced(&mut browser, plan, vantage, native);
        virtual_ms += trace.virtual_ms;
        let outcome = match outcome {
            Ok(site) => {
                let mut extremes = Vec::new();
                let mut mismatches = Vec::new();
                let gap_reader = gaps_enabled.then_some(&reader);
                let record = process_site(
                    &site,
                    country,
                    &kizuki,
                    gap_reader,
                    &mut extremes,
                    &mut mismatches,
                );
                WireOutcome::Selected {
                    record,
                    extremes,
                    mismatches,
                }
            }
            Err(rejection) => WireOutcome::Rejected(rejection),
        };
        verdicts.push(WireVerdict { outcome, trace });
    }
    span.set_virtual_ms(virtual_ms);
    verdicts
}

/// Why one dispatch of a unit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitError {
    /// The worker died mid-unit (connection dropped, process exited,
    /// injected chaos kill).
    WorkerDied(String),
    /// The per-unit lease deadline elapsed without a response (worker
    /// stalled).
    LeaseExpired(String),
}

/// Transport abstraction the coordinator dispatches through. The bench
/// crate implements it over loopback HTTP to `repro --dist-worker`
/// processes; [`LocalExecutor`] implements it in-process for tests.
///
/// Called concurrently from one dispatcher thread per worker slot; a
/// given `worker` index is only ever used by its own dispatcher.
pub trait UnitExecutor: Sync {
    /// Execute `request` on worker slot `worker` (0-based). `attempt` is
    /// the 0-based dispatch attempt for this unit (drives the chaos
    /// schedule and backoff).
    fn execute(
        &self,
        worker: usize,
        attempt: u32,
        request: &UnitRequest,
    ) -> Result<Vec<WireVerdict>, UnitError>;

    /// Liveness probe issued before each dispatch. Default: always
    /// alive (in-process executors cannot die between units).
    fn heartbeat(&self, _worker: usize) -> bool {
        true
    }

    /// Restart a worker after a failed heartbeat or a tripped per-worker
    /// breaker. Returns whether a restart actually happened.
    fn revive(&self, _worker: usize) -> bool {
        false
    }
}

/// In-process executor: runs units against its own corpus (rebuilt from
/// the wire config, exactly as a worker process would) with an
/// injectable failure schedule. The backbone of the kill-at-every-
/// boundary test suite.
pub struct LocalExecutor {
    corpus: Corpus,
    /// Injected failure: `(unit key, attempt) -> fail?`. A failing
    /// dispatch still computes nothing — like a SIGKILLed worker, its
    /// partial work is simply never observed.
    #[allow(clippy::type_complexity)]
    pub fail: Option<Arc<dyn Fn(&str, u32) -> bool + Send + Sync>>,
}

impl LocalExecutor {
    /// Build the executor's own corpus from the wire config — the same
    /// reconstruction a worker process performs, so tests exercise the
    /// config round-trip too.
    pub fn new(config: &WireBuildConfig) -> Self {
        LocalExecutor {
            corpus: config.build_corpus(),
            fail: None,
        }
    }

    /// Fail dispatches according to `schedule`.
    pub fn with_failures(
        config: &WireBuildConfig,
        schedule: impl Fn(&str, u32) -> bool + Send + Sync + 'static,
    ) -> Self {
        LocalExecutor {
            corpus: config.build_corpus(),
            fail: Some(Arc::new(schedule)),
        }
    }
}

impl UnitExecutor for LocalExecutor {
    fn execute(
        &self,
        _worker: usize,
        attempt: u32,
        request: &UnitRequest,
    ) -> Result<Vec<WireVerdict>, UnitError> {
        if let Some(fail) = &self.fail {
            if fail(&request.key(), attempt) {
                return Err(UnitError::WorkerDied("injected failure".to_string()));
            }
        }
        Ok(execute_unit(
            &self.corpus,
            request.config.browser,
            request.country,
            request.start,
            request.end,
        ))
    }
}

/// Coordinator options. The dataset/ledger bytes produced under any
/// `workers`/failure schedule equal `build_dataset_with_ledger` with a
/// `PipelineOptions` carrying the same `quota`, `browser`, and example
/// caps — the tested contract.
#[derive(Debug, Clone)]
pub struct DistOptions {
    pub quota: usize,
    pub browser: BrowserConfig,
    pub max_extreme_examples: usize,
    pub max_mismatch_examples: usize,
    /// Worker slots (dispatcher threads / worker processes).
    pub workers: usize,
    /// Reassignments after a unit's first dispatch before it is given up
    /// as degraded.
    pub max_reassignments: u32,
    /// Consecutive dispatch failures on one worker slot that trip its
    /// breaker and force a revive.
    pub worker_breaker_threshold: u32,
    /// Per-unit lease: wall milliseconds the executor waits for a unit
    /// before declaring the worker stalled.
    pub lease_ms: u64,
    /// Virtual-clock reassignment backoff (the crawl discipline's shape:
    /// `min(base << attempt, cap) + jitter`, pure in
    /// `(seed, unit, attempt)`).
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    pub backoff_jitter_ms: u64,
    /// Append-only unit-checkpoint log; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Crash simulation: stop dispatching after this many units complete
    /// *in this run* and return [`DistHalted`]. The checkpoint log then
    /// holds exactly the completed units. `None` in production.
    pub halt_after_units: Option<usize>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            quota: 1_000,
            browser: BrowserConfig::default(),
            max_extreme_examples: 40,
            max_mismatch_examples: 24,
            workers: 2,
            max_reassignments: 5,
            worker_breaker_threshold: 3,
            lease_ms: 60_000,
            backoff_base_ms: 200,
            backoff_cap_ms: 5_000,
            backoff_jitter_ms: 50,
            checkpoint: None,
            halt_after_units: None,
        }
    }
}

/// Coordinator-side counters, exposed as the `langcrux_dist_*` metric
/// families.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct DistStats {
    /// Worker slots the run was configured with.
    pub workers: usize,
    /// Probe waves the coordinator planned.
    pub waves: u64,
    /// Work units planned (including checkpoint-satisfied ones).
    pub units_planned: u64,
    /// Units actually executed by workers in this run.
    pub units_executed: u64,
    /// Units satisfied from the checkpoint log without dispatch.
    pub units_from_checkpoint: u64,
    /// Failed dispatches that were retried on another attempt.
    pub reassignments: u64,
    /// Dispatches that failed because the worker died.
    pub worker_deaths: u64,
    /// Dispatches that failed because the lease deadline elapsed.
    pub lease_expirations: u64,
    /// Heartbeat probes that found a worker dead.
    pub heartbeat_failures: u64,
    /// Worker restarts the breaker (or a failed heartbeat) forced.
    pub worker_revivals: u64,
    /// Units permanently lost after exhausting reassignments.
    pub degraded_units: u64,
    /// Virtual milliseconds of reassignment backoff (never slept).
    pub backoff_virtual_ms: u64,
}

impl DistStats {
    /// Register the run's counters into the unified metrics registry
    /// (`langcrux_dist_*` family).
    pub fn encode_metrics(&self, enc: &mut obs::Encoder) {
        enc.gauge(
            "langcrux_dist_workers",
            "Worker slots the distributed build ran with.",
            self.workers as f64,
        );
        enc.counter(
            "langcrux_dist_waves_total",
            "Probe waves the coordinator planned.",
            self.waves as f64,
        );
        enc.counter(
            "langcrux_dist_units_total",
            "Work units planned, including checkpoint-satisfied ones.",
            self.units_planned as f64,
        );
        enc.counter(
            "langcrux_dist_units_executed_total",
            "Work units executed by workers in this run.",
            self.units_executed as f64,
        );
        enc.counter(
            "langcrux_dist_units_from_checkpoint_total",
            "Work units satisfied from the checkpoint log without dispatch.",
            self.units_from_checkpoint as f64,
        );
        enc.counter(
            "langcrux_dist_reassignments_total",
            "Failed unit dispatches that were reassigned.",
            self.reassignments as f64,
        );
        enc.counter(
            "langcrux_dist_worker_deaths_total",
            "Unit dispatches that failed because the worker died.",
            self.worker_deaths as f64,
        );
        enc.counter(
            "langcrux_dist_lease_expirations_total",
            "Unit dispatches that failed because the lease deadline elapsed.",
            self.lease_expirations as f64,
        );
        enc.counter(
            "langcrux_dist_heartbeat_failures_total",
            "Heartbeat probes that found a worker dead.",
            self.heartbeat_failures as f64,
        );
        enc.counter(
            "langcrux_dist_worker_revivals_total",
            "Worker restarts forced by the per-worker breaker or a failed heartbeat.",
            self.worker_revivals as f64,
        );
        enc.gauge(
            "langcrux_dist_degraded_units",
            "Work units permanently lost after exhausting reassignments.",
            self.degraded_units as f64,
        );
        enc.counter(
            "langcrux_dist_backoff_virtual_milliseconds_total",
            "Virtual milliseconds of reassignment backoff.",
            self.backoff_virtual_ms as f64,
        );
    }
}

/// A completed distributed build.
#[derive(Debug)]
pub struct DistBuild {
    pub dataset: Dataset,
    pub ledger: CrawlLedger,
    pub stats: DistStats,
}

/// The coordinator stopped early (crash simulation via
/// [`DistOptions::halt_after_units`]); completed units up to the halt
/// are durable in the checkpoint log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistHalted {
    /// Units that completed (and were checkpointed) in this run.
    pub units_completed: usize,
}

/// Reassignment backoff for dispatch attempt `attempt` of `unit_key` —
/// the crawl engine's capped-exponential shape with seeded jitter, pure
/// in `(seed, unit, attempt)` so degraded-run accounting is reproducible.
fn reassignment_backoff_ms(options: &DistOptions, seed: u64, unit_key: &str, attempt: u32) -> u64 {
    let exp = options
        .backoff_base_ms
        .checked_shl(attempt.min(16))
        .unwrap_or(u64::MAX)
        .min(options.backoff_cap_ms);
    let jitter = if options.backoff_jitter_ms == 0 {
        0
    } else {
        rng::rng_for(
            seed,
            &[
                rng::stream_id(unit_key),
                u64::from(attempt),
                DIST_BACKOFF_STREAM,
            ],
        )
        .gen_range(0..=options.backoff_jitter_ms)
    };
    exp + jitter
}

// ---------------------------------------------------------------------
// Checkpoint log
// ---------------------------------------------------------------------

/// First line of a checkpoint file: identifies the build it belongs to.
/// A header mismatch (different seed/quota/config) invalidates the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointHeader {
    checkpoint: String,
    quota: usize,
    config: WireBuildConfig,
}

/// One completed unit: its stable key and the verdicts it produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointEntry {
    unit: String,
    verdicts: Vec<WireVerdict>,
}

/// Append-only JSON-lines log of completed units. Tolerates a torn
/// trailing line (the coordinator died mid-write); every complete line
/// is a durable unit that will never be recomputed.
struct CheckpointLog {
    file: Option<std::fs::File>,
}

impl CheckpointLog {
    /// Open (or create) the log at `path`, returning the verdicts of
    /// every durable unit recorded for *this* build. A file written for
    /// a different build (header mismatch) or with a corrupt prefix is
    /// discarded and restarted.
    fn open(
        path: Option<&Path>,
        config: &WireBuildConfig,
        quota: usize,
    ) -> (Self, HashMap<String, Vec<WireVerdict>>) {
        let Some(path) = path else {
            return (CheckpointLog { file: None }, HashMap::new());
        };
        let header = CheckpointHeader {
            checkpoint: "langcrux-dist".to_string(),
            quota,
            config: config.clone(),
        };
        let mut completed = HashMap::new();
        let mut valid = false;
        if let Ok(file) = std::fs::File::open(path) {
            let mut lines = BufReader::new(file).lines();
            if let Some(Ok(first)) = lines.next() {
                if serde_json::from_str::<CheckpointHeader>(&first)
                    .map(|h| h == header)
                    .unwrap_or(false)
                {
                    valid = true;
                    for line in lines {
                        let Ok(line) = line else { break };
                        // A torn trailing line parses as garbage; stop at
                        // the first bad line and keep the durable prefix.
                        let Ok(entry) = serde_json::from_str::<CheckpointEntry>(&line) else {
                            break;
                        };
                        completed.insert(entry.unit, entry.verdicts);
                    }
                }
            }
        }
        let mut file = if valid {
            std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .expect("reopen checkpoint log for append")
        } else {
            completed.clear();
            let mut f = std::fs::File::create(path).expect("create checkpoint log");
            writeln!(
                f,
                "{}",
                serde_json::to_string(&header).expect("serialize checkpoint header")
            )
            .expect("write checkpoint header");
            f
        };
        file.flush().expect("flush checkpoint log");
        (CheckpointLog { file: Some(file) }, completed)
    }

    /// Append one completed unit and flush — the unit is durable once
    /// this returns.
    fn append(&mut self, unit: &str, verdicts: &[WireVerdict]) {
        let Some(file) = &mut self.file else { return };
        let entry = CheckpointEntry {
            unit: unit.to_string(),
            verdicts: verdicts.to_vec(),
        };
        writeln!(
            file,
            "{}",
            serde_json::to_string(&entry).expect("serialize checkpoint entry")
        )
        .expect("append checkpoint entry");
        file.flush().expect("flush checkpoint log");
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Per-country coordinator state across waves.
struct CountryState {
    country: Country,
    /// Concatenated unit verdicts for the candidate prefix `0..probed`
    /// (frozen at the first hole once `degraded`).
    verdicts: Vec<WireVerdict>,
    qualified: usize,
    probed: usize,
    degraded: bool,
}

/// Resolution of one planned unit after the wave's scheduler drains.
enum UnitResolution {
    Pending,
    Done(Vec<WireVerdict>),
    Lost,
}

/// Run the distributed build: plan waves, dispatch units through the
/// executor with lease/retry/checkpoint handling, then replay and
/// assemble the dataset + ledger.
///
/// Returns `Err(DistHalted)` only under the
/// [`DistOptions::halt_after_units`] crash simulation.
pub fn build_dataset_distributed<E: UnitExecutor + ?Sized>(
    corpus: &Corpus,
    executor: &E,
    options: &DistOptions,
) -> Result<DistBuild, DistHalted> {
    let workers = options.workers.max(1);
    let _build_span = obs::trace::span("dist.build", corpus.config().seed);
    let config = WireBuildConfig::of(corpus, options.browser);
    let (log, completed) =
        CheckpointLog::open(options.checkpoint.as_deref(), &config, options.quota);
    let checkpoint = Mutex::new(log);
    let completed = Mutex::new(completed);

    let mut states: Vec<CountryState> = corpus
        .countries()
        .map(|country| CountryState {
            country,
            verdicts: Vec::new(),
            qualified: 0,
            probed: 0,
            degraded: false,
        })
        .collect();
    let mut degraded_units: Vec<DegradedUnit> = Vec::new();
    let mut stats = DistStats {
        workers,
        ..DistStats::default()
    };
    let executed_this_run = AtomicUsize::new(0);
    let halted = AtomicBool::new(false);

    let mut wave_ordinal = 0u64;
    loop {
        // ---- Plan the wave: same windows as the in-process pipeline.
        let mut windows: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut total = 0usize;
        for (ci, st) in states.iter().enumerate() {
            if st.degraded || st.qualified >= options.quota {
                continue;
            }
            let candidates = corpus.candidates(st.country).len();
            if st.probed >= candidates {
                continue;
            }
            let need = options.quota - st.qualified;
            let window = probe_window(need).min(candidates - st.probed);
            windows.push((ci, st.probed..st.probed + window));
            total += window;
        }
        if windows.is_empty() {
            break;
        }
        let _wave_span = obs::trace::span("dist.wave", wave_ordinal);
        wave_ordinal += 1;
        stats.waves += 1;
        let chunk = (total / (workers * 4).max(1)).clamp(4, 64);
        let mut units: Vec<(usize, UnitRequest)> = Vec::new();
        for (ci, window) in windows {
            for r in chunk_ranges(window.len(), chunk) {
                units.push((
                    ci,
                    UnitRequest {
                        config: config.clone(),
                        country: states[ci].country,
                        start: window.start + r.start,
                        end: window.start + r.end,
                        hold_ms: 0,
                    },
                ));
            }
        }
        stats.units_planned += units.len() as u64;

        // ---- Execute the wave.
        let resolutions = run_wave(
            executor,
            &units,
            options,
            workers,
            corpus.config().seed,
            &checkpoint,
            &completed,
            &mut stats,
            &executed_this_run,
            &halted,
        );

        // ---- Fold unit results in plan order; a lost unit opens a hole
        // that freezes the country's verdict prefix (graceful
        // degradation: shortfall, not abort).
        let mut saw_pending = false;
        for ((ci, req), resolution) in units.iter().zip(resolutions) {
            let st = &mut states[*ci];
            match resolution {
                UnitResolution::Done(vs) => {
                    st.probed = req.end;
                    if !st.degraded {
                        st.qualified += vs.iter().filter(|v| v.is_selected()).count();
                        st.verdicts.extend(vs);
                    }
                }
                UnitResolution::Lost => {
                    st.probed = req.end;
                    if !st.degraded {
                        st.degraded = true;
                        stats.degraded_units += 1;
                        degraded_units.push(DegradedUnit {
                            country_code: req.country.code().to_string(),
                            start: req.start as u64,
                            end: req.end as u64,
                            attempts: 1 + options.max_reassignments,
                        });
                    }
                }
                UnitResolution::Pending => saw_pending = true,
            }
        }
        if halted.load(Ordering::SeqCst) || saw_pending {
            return Err(DistHalted {
                units_completed: executed_this_run.load(Ordering::SeqCst),
            });
        }
    }

    let (dataset, ledger) = assemble(corpus, options, states, degraded_units);
    Ok(DistBuild {
        dataset,
        ledger,
        stats,
    })
}

/// Dispatch one wave's units across the worker slots until every unit is
/// done or lost (or the halt simulation fires). One dispatcher thread
/// per worker slot; failed dispatches re-queue with virtual backoff
/// until the reassignment budget is exhausted.
#[allow(clippy::too_many_arguments)]
fn run_wave<E: UnitExecutor + ?Sized>(
    executor: &E,
    units: &[(usize, UnitRequest)],
    options: &DistOptions,
    workers: usize,
    seed: u64,
    checkpoint: &Mutex<CheckpointLog>,
    completed: &Mutex<HashMap<String, Vec<WireVerdict>>>,
    stats: &mut DistStats,
    executed_this_run: &AtomicUsize,
    halted: &AtomicBool,
) -> Vec<UnitResolution> {
    let mut resolutions: Vec<UnitResolution> = Vec::with_capacity(units.len());
    let mut queue: VecDeque<(usize, u32)> = VecDeque::new();
    {
        let completed = completed.lock().unwrap();
        for (idx, (_, req)) in units.iter().enumerate() {
            if let Some(vs) = completed.get(&req.key()) {
                stats.units_from_checkpoint += 1;
                resolutions.push(UnitResolution::Done(vs.clone()));
            } else {
                queue.push_back((idx, 0));
                resolutions.push(UnitResolution::Pending);
            }
        }
    }
    let pending = AtomicUsize::new(queue.len());
    if queue.is_empty() {
        return resolutions;
    }
    let queue = Mutex::new(queue);
    let resolutions = Mutex::new(resolutions);
    // Wave-scoped counter deltas, folded into `stats` after the scope
    // joins (dispatchers run on their own threads).
    let delta = Mutex::new(DistStats::default());

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queue = &queue;
            let resolutions = &resolutions;
            let delta = &delta;
            let pending = &pending;
            scope.spawn(move || {
                let mut consecutive_failures = 0u32;
                loop {
                    if halted.load(Ordering::SeqCst) {
                        break;
                    }
                    let job = queue.lock().unwrap().pop_front();
                    let Some((idx, attempt)) = job else {
                        if pending.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        // Another dispatcher may still re-queue a failed
                        // unit; yield briefly and re-check.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        continue;
                    };
                    let (_, req) = &units[idx];
                    let key = req.key();
                    if !executor.heartbeat(worker) {
                        let mut d = delta.lock().unwrap();
                        d.heartbeat_failures += 1;
                        d.worker_revivals += u64::from(executor.revive(worker));
                    }
                    match executor.execute(worker, attempt, req) {
                        Ok(verdicts) => {
                            consecutive_failures = 0;
                            checkpoint.lock().unwrap().append(&key, &verdicts);
                            completed.lock().unwrap().insert(key, verdicts.clone());
                            resolutions.lock().unwrap()[idx] = UnitResolution::Done(verdicts);
                            pending.fetch_sub(1, Ordering::SeqCst);
                            delta.lock().unwrap().units_executed += 1;
                            let done = executed_this_run.fetch_add(1, Ordering::SeqCst) + 1;
                            if let Some(halt) = options.halt_after_units {
                                if done >= halt {
                                    halted.store(true, Ordering::SeqCst);
                                }
                            }
                        }
                        Err(error) => {
                            consecutive_failures += 1;
                            {
                                let mut d = delta.lock().unwrap();
                                match &error {
                                    UnitError::WorkerDied(_) => d.worker_deaths += 1,
                                    UnitError::LeaseExpired(_) => d.lease_expirations += 1,
                                }
                                if attempt < options.max_reassignments {
                                    d.reassignments += 1;
                                    d.backoff_virtual_ms +=
                                        reassignment_backoff_ms(options, seed, &key, attempt);
                                }
                            }
                            if attempt < options.max_reassignments {
                                queue.lock().unwrap().push_back((idx, attempt + 1));
                            } else {
                                resolutions.lock().unwrap()[idx] = UnitResolution::Lost;
                                pending.fetch_sub(1, Ordering::SeqCst);
                            }
                            if consecutive_failures >= options.worker_breaker_threshold.max(1) {
                                delta.lock().unwrap().worker_revivals +=
                                    u64::from(executor.revive(worker));
                                consecutive_failures = 0;
                            }
                        }
                    }
                }
            });
        }
    });

    let delta = delta.into_inner().unwrap();
    stats.units_executed += delta.units_executed;
    stats.reassignments += delta.reassignments;
    stats.worker_deaths += delta.worker_deaths;
    stats.lease_expirations += delta.lease_expirations;
    stats.heartbeat_failures += delta.heartbeat_failures;
    stats.worker_revivals += delta.worker_revivals;
    stats.backoff_virtual_ms += delta.backoff_virtual_ms;
    resolutions.into_inner().unwrap()
}

/// Replay the sequential replacement walk over each country's verdicts
/// and assemble the dataset + ledger — the same loop, accumulators, and
/// caps as the in-process pipeline, so the bytes cannot differ.
fn assemble(
    corpus: &Corpus,
    options: &DistOptions,
    states: Vec<CountryState>,
    mut degraded_units: Vec<DegradedUnit>,
) -> (Dataset, CrawlLedger) {
    struct CountryOut {
        country: Country,
        records: Vec<SiteRecord>,
        summary: crate::dataset::CountryCrawlSummary,
        extremes: Vec<ExtremeExample>,
        mismatches: Vec<MismatchExample>,
    }

    let mut country_ledgers: Vec<CountryLedger> = Vec::with_capacity(states.len());
    let mut results: Vec<CountryOut> = Vec::with_capacity(states.len());
    for st in states {
        let mut replay_span =
            obs::trace::span("dist.replay", obs::trace::key_str(st.country.code()));
        let mut ledger = CountryLedger::new(st.country.code());
        let mut stats = SelectionStats::default();
        let mut records = Vec::new();
        let mut extremes = Vec::new();
        let mut mismatches = Vec::new();
        let mut error_run = 0u64;
        let mut selected = 0usize;
        for verdict in &st.verdicts {
            if selected >= options.quota {
                break;
            }
            ledger.record_probe_outcome(verdict.outcome_ref(), &verdict.trace);
            if verdict.is_selected() {
                ledger.note_replacement_run(error_run);
                error_run = 0;
            } else {
                error_run += 1;
            }
            tally_outcome(verdict.outcome_ref(), &mut stats);
            if let WireOutcome::Selected {
                record,
                extremes: site_extremes,
                mismatches: site_mismatches,
            } = &verdict.outcome
            {
                selected += 1;
                if let Some(gaps) = &record.gaps {
                    ledger.gap_pages += 1;
                    ledger.gap_regions += u64::from(gaps.regions);
                }
                records.push(record.clone());
                for e in site_extremes {
                    if extremes.len() < options.max_extreme_examples {
                        extremes.push(e.clone());
                    }
                }
                for m in site_mismatches {
                    if mismatches.len() < options.max_mismatch_examples {
                        mismatches.push(m.clone());
                    }
                }
            }
        }
        ledger.note_replacement_run(error_run);
        stats.shortfall = (options.quota as u64).saturating_sub(stats.selected);
        replay_span.set_virtual_ms(ledger.virtual_ms);
        let summary = to_summary(st.country, &stats);
        country_ledgers.push(ledger);
        results.push(CountryOut {
            country: st.country,
            records,
            summary,
            extremes,
            mismatches,
        });
    }

    results.sort_by_key(|r| Country::STUDY.iter().position(|&c| c == r.country));
    country_ledgers.sort_by_key(|l| {
        Country::STUDY
            .iter()
            .position(|&c| c.code() == l.country_code)
    });
    degraded_units.sort_by_key(|u| {
        (
            Country::STUDY
                .iter()
                .position(|&c| c.code() == u.country_code),
            u.start,
        )
    });

    let mut dataset = Dataset {
        seed: corpus.config().seed,
        quota: options.quota,
        ..Dataset::default()
    };
    for mut result in results {
        dataset.records.append(&mut result.records);
        dataset.crawl_summaries.push(result.summary);
        for e in result.extremes {
            if dataset.extreme_examples.len() < options.max_extreme_examples {
                dataset.extreme_examples.push(e);
            }
        }
        for m in result.mismatches {
            if dataset.mismatch_examples.len() < options.max_mismatch_examples {
                dataset.mismatch_examples.push(m);
            }
        }
    }
    let mut ledger = CrawlLedger::new(
        corpus.config().seed,
        *corpus.internet().fault_plan(),
        country_ledgers,
    );
    ledger.degraded_units = degraded_units;
    (dataset, ledger)
}

// ---------------------------------------------------------------------
// Worker-side RPC handler
// ---------------------------------------------------------------------

/// Worker-process state: one cached corpus keyed by the wire config's
/// JSON. A worker serves one build at a time; a request carrying a new
/// config transparently replaces the cache (shards are pure in the
/// config, so a rebuilt corpus is bit-identical).
#[derive(Default)]
pub struct WorkerState {
    #[allow(clippy::type_complexity)]
    cache: Mutex<Option<(String, Arc<Corpus>)>>,
}

impl WorkerState {
    pub fn new() -> Self {
        WorkerState::default()
    }

    /// Handle one unit-RPC body (a [`UnitRequest`] as JSON). Returns the
    /// verdicts as a JSON array, or a human-readable error for a 400.
    pub fn handle_unit(&self, body: &[u8]) -> Result<String, String> {
        let text = std::str::from_utf8(body).map_err(|e| format!("body not UTF-8: {e}"))?;
        let request: UnitRequest =
            serde_json::from_str(text).map_err(|e| format!("bad unit request: {e}"))?;
        if request.end < request.start {
            return Err(format!("bad unit range {}..{}", request.start, request.end));
        }
        if request.hold_ms > 0 {
            // Chaos hold: park so an externally scheduled SIGKILL lands
            // mid-unit. Wall time only; never affects verdict bytes.
            std::thread::sleep(std::time::Duration::from_millis(request.hold_ms.min(2_000)));
        }
        let key = request.config.cache_key();
        let corpus = {
            let mut cache = self.cache.lock().unwrap();
            match cache.as_ref() {
                Some((cached_key, corpus)) if *cached_key == key => Arc::clone(corpus),
                _ => {
                    let corpus = Arc::new(request.config.build_corpus());
                    *cache = Some((key, Arc::clone(&corpus)));
                    corpus
                }
            }
        };
        let candidates = corpus.candidates(request.country).len();
        if request.end > candidates {
            return Err(format!(
                "unit range {}..{} exceeds {} candidates for {}",
                request.start,
                request.end,
                candidates,
                request.country.code()
            ));
        }
        let verdicts = execute_unit(
            &corpus,
            request.config.browser,
            request.country,
            request.start,
            request.end,
        );
        serde_json::to_string(&verdicts).map_err(|e| format!("serialize verdicts: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_dataset_with_ledger, PipelineOptions};

    fn small_config(seed: u64, sites: usize) -> WireBuildConfig {
        let corpus = Corpus::build(CorpusConfig::small(seed, sites));
        WireBuildConfig::of(&corpus, BrowserConfig::default())
    }

    fn oracle(seed: u64, sites: usize, quota: usize) -> (String, String) {
        let corpus = Corpus::build(CorpusConfig::small(seed, sites));
        let (ds, ledger) = build_dataset_with_ledger(
            &corpus,
            PipelineOptions {
                quota,
                ..PipelineOptions::default()
            },
        );
        (ds.to_json().unwrap(), ledger.to_json().unwrap())
    }

    fn dist_run(
        seed: u64,
        sites: usize,
        options: &DistOptions,
        executor: &LocalExecutor,
    ) -> DistBuild {
        let corpus = Corpus::build(CorpusConfig::small(seed, sites));
        build_dataset_distributed(&corpus, executor, options).expect("distributed build")
    }

    #[test]
    fn matches_single_process_bytes_at_every_worker_count() {
        let (ds_oracle, ledger_oracle) = oracle(19, 14, 14);
        let config = small_config(19, 14);
        let executor = LocalExecutor::new(&config);
        for workers in [1, 2, 3] {
            let options = DistOptions {
                quota: 14,
                workers,
                ..DistOptions::default()
            };
            let build = dist_run(19, 14, &options, &executor);
            assert_eq!(
                build.dataset.to_json().unwrap(),
                ds_oracle,
                "workers = {workers}"
            );
            assert_eq!(
                build.ledger.to_json().unwrap(),
                ledger_oracle,
                "workers = {workers}"
            );
            assert!(build.ledger.degraded_units.is_empty());
            assert_eq!(build.stats.workers, workers);
            assert!(build.stats.units_planned > 0);
        }
    }

    #[test]
    fn recovers_from_injected_failures_to_identical_bytes() {
        let (ds_oracle, ledger_oracle) = oracle(23, 12, 12);
        let config = small_config(23, 12);
        // Every unit fails its first two dispatches on a seeded schedule.
        let executor = LocalExecutor::with_failures(&config, |key, attempt| {
            attempt < (rng::stream_id(key) % 3) as u32
        });
        let options = DistOptions {
            quota: 12,
            workers: 2,
            ..DistOptions::default()
        };
        let build = dist_run(23, 12, &options, &executor);
        assert_eq!(build.dataset.to_json().unwrap(), ds_oracle);
        assert_eq!(build.ledger.to_json().unwrap(), ledger_oracle);
        assert!(build.stats.reassignments > 0, "{:?}", build.stats);
        assert_eq!(build.stats.worker_deaths, build.stats.reassignments);
        assert!(build.stats.backoff_virtual_ms > 0);
    }

    #[test]
    fn degrades_gracefully_when_a_unit_is_permanently_lost() {
        let config = small_config(31, 10);
        // One specific country's first unit never completes.
        let executor = LocalExecutor::with_failures(&config, |key, _| key.starts_with("jp:0:"));
        let options = DistOptions {
            quota: 10,
            workers: 2,
            max_reassignments: 2,
            ..DistOptions::default()
        };
        let build = dist_run(31, 10, &options, &executor);
        assert_eq!(build.stats.degraded_units, 1, "{:?}", build.stats);
        assert_eq!(build.ledger.degraded_units.len(), 1);
        let lost = &build.ledger.degraded_units[0];
        assert_eq!(lost.country_code, "jp");
        assert_eq!(lost.attempts, 3);
        // Japan's replay truncated at the hole: shortfall, not abort.
        let jp = build
            .dataset
            .crawl_summaries
            .iter()
            .find(|s| s.country_code == "jp")
            .unwrap();
        assert_eq!(jp.selected, 0);
        // Every other country matches the no-failure single-process run.
        let (ds_oracle, _) = oracle(31, 10, 10);
        let oracle_ds = crate::dataset::Dataset::from_json(&ds_oracle).unwrap();
        for s in &build.dataset.crawl_summaries {
            if s.country_code != "jp" {
                let expected = oracle_ds
                    .crawl_summaries
                    .iter()
                    .find(|o| o.country_code == s.country_code)
                    .unwrap();
                assert_eq!(s, expected, "{}", s.country_code);
            }
        }
        // The degraded section serializes (and the ledger round-trips).
        let json = build.ledger.to_json().unwrap();
        assert!(json.contains("degraded_units"));
        let back = CrawlLedger::from_json(&json).unwrap();
        assert_eq!(back, build.ledger);
    }

    #[test]
    fn checkpoint_resume_reproduces_bytes_without_recomputation() {
        let (ds_oracle, ledger_oracle) = oracle(37, 12, 12);
        let config = small_config(37, 12);
        let executor = LocalExecutor::new(&config);
        let dir = std::env::temp_dir().join(format!("langcrux-dist-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let _ = std::fs::remove_file(&path);

        // First run: crash after 3 units.
        let halted_options = DistOptions {
            quota: 12,
            workers: 1,
            checkpoint: Some(path.clone()),
            halt_after_units: Some(3),
            ..DistOptions::default()
        };
        let corpus = Corpus::build(CorpusConfig::small(37, 12));
        let halted = build_dataset_distributed(&corpus, &executor, &halted_options)
            .expect_err("run must halt");
        assert!(halted.units_completed >= 3);

        // Second run: resume from the log, complete, identical bytes.
        let resume_options = DistOptions {
            checkpoint: Some(path.clone()),
            halt_after_units: None,
            ..halted_options
        };
        let build = build_dataset_distributed(&corpus, &executor, &resume_options)
            .expect("resumed build completes");
        assert_eq!(build.dataset.to_json().unwrap(), ds_oracle);
        assert_eq!(build.ledger.to_json().unwrap(), ledger_oracle);
        assert!(build.stats.units_from_checkpoint >= 3, "{:?}", build.stats);

        // Third run over a complete log: no unit executes at all.
        let replay = build_dataset_distributed(&corpus, &executor, &resume_options)
            .expect("pure-checkpoint replay");
        assert_eq!(replay.stats.units_executed, 0, "{:?}", replay.stats);
        assert_eq!(replay.dataset.to_json().unwrap(), ds_oracle);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_for_a_different_build_is_discarded() {
        let dir = std::env::temp_dir().join(format!("langcrux-dist-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.jsonl");
        std::fs::write(&path, "not a checkpoint header\n").unwrap();
        let config = small_config(41, 8);
        let (_, completed) = CheckpointLog::open(Some(&path), &config, 8);
        assert!(completed.is_empty());
        // The file was restarted with a valid header for this build.
        let (_, completed) = CheckpointLog::open(Some(&path), &config, 8);
        assert!(completed.is_empty());
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.starts_with("{"));
        // A different quota invalidates it again.
        let (_, completed) = CheckpointLog::open(Some(&path), &config, 9);
        assert!(completed.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_checkpoint_line_is_ignored() {
        let dir = std::env::temp_dir().join(format!("langcrux-dist-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let config = small_config(43, 8);
        // Write a valid header + one durable entry, then a torn line.
        {
            let (mut log, _) = CheckpointLog::open(Some(&path), &config, 8);
            log.append("bd:0:4", &[]);
        }
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{{\"unit\":\"bd:4:8\",\"verd").unwrap();
        drop(f);
        let (_, completed) = CheckpointLog::open(Some(&path), &config, 8);
        assert_eq!(completed.len(), 1);
        assert!(completed.contains_key("bd:0:4"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wire_verdicts_round_trip_through_json() {
        let config = small_config(47, 6);
        let corpus = config.build_corpus();
        let country = corpus.countries().next().unwrap();
        let verdicts = execute_unit(&corpus, config.browser, country, 0, 6);
        assert_eq!(verdicts.len(), 6);
        assert!(verdicts.iter().any(|v| v.is_selected()));
        let json = serde_json::to_string(&verdicts).unwrap();
        let back: Vec<WireVerdict> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, verdicts);
    }

    #[test]
    fn reassignment_backoff_is_capped_and_pure() {
        let options = DistOptions::default();
        let a = reassignment_backoff_ms(&options, 7, "bd:0:64", 3);
        assert_eq!(a, reassignment_backoff_ms(&options, 7, "bd:0:64", 3));
        // Deep attempts saturate at cap + jitter.
        let deep = reassignment_backoff_ms(&options, 7, "bd:0:64", 40);
        assert!(deep <= options.backoff_cap_ms + options.backoff_jitter_ms);
        assert!(deep >= options.backoff_cap_ms);
    }

    #[test]
    fn worker_state_serves_units_and_rejects_garbage() {
        let config = small_config(53, 6);
        let state = WorkerState::new();
        let country = config.countries[0];
        let request = UnitRequest {
            config: config.clone(),
            country,
            start: 0,
            end: 4,
            hold_ms: 0,
        };
        let body = serde_json::to_string(&request).unwrap();
        let response = state.handle_unit(body.as_bytes()).expect("unit executes");
        let verdicts: Vec<WireVerdict> = serde_json::from_str(&response).unwrap();
        assert_eq!(verdicts.len(), 4);
        // Same config → cached corpus; different range still works.
        let request2 = UnitRequest {
            start: 4,
            end: 6,
            ..request.clone()
        };
        let body2 = serde_json::to_string(&request2).unwrap();
        assert!(state.handle_unit(body2.as_bytes()).is_ok());
        // Garbage and out-of-range units are rejected, not panicked.
        assert!(state.handle_unit(b"not json").is_err());
        let bad = UnitRequest {
            start: 0,
            end: 10_000,
            ..request
        };
        let body3 = serde_json::to_string(&bad).unwrap();
        assert!(state.handle_unit(body3.as_bytes()).is_err());
    }
}
