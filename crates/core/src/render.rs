//! Plain-text rendering of every table and figure.
//!
//! The `repro` binary prints these; EXPERIMENTS.md embeds them. Rendering
//! is purely presentational — all numbers come from `analysis`.

use crate::analysis::{
    DeclaredLangRow, DiscardDistribution, ElementStatsRow, Headlines, KizukiShift, LangDistRow,
    MismatchCdfs,
};
use crate::dataset::{Dataset, ExtremeExample, MismatchExample};
use crate::stats::CountGrid;
use langcrux_audit::MatrixRow;
use langcrux_filter::DiscardCategory;
use std::fmt::Write as _;

fn hr(width: usize) -> String {
    "-".repeat(width)
}

/// Render Table 2.
pub fn table2(rows: &[ElementStatsRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} | {:>23} | {:>23} | {:>23} | {:>23}",
        "Element",
        "Missing % (med/sd/mean)",
        "Empty % (med/sd/mean)",
        "Text len (med/sd/mean)",
        "Words (med/sd/mean)"
    );
    let _ = writeln!(out, "{}", hr(122));
    for row in rows {
        let f = |s: &crate::stats::Summary| {
            format!("{:>6.2}/{:>6.2}/{:>6.2}", s.median, s.std_dev, s.mean)
        };
        let _ = writeln!(
            out,
            "{:<18} | {:>23} | {:>23} | {:>23} | {:>23}",
            row.kind.audit_id(),
            f(&row.missing),
            f(&row.empty),
            f(&row.text_len),
            f(&row.word_count),
        );
    }
    out
}

/// Render Table 3 (the Lighthouse pass/fail matrix).
pub fn table3(matrix: &[MatrixRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} | {:^15} | {:^11} | {:^18}",
        "Accessibility Rule", "Missing Element", "Empty Value", "Incorrect Language"
    );
    let _ = writeln!(out, "{}", hr(72));
    let tick = |pass: bool| if pass { "pass" } else { "FAIL" };
    for row in matrix {
        let _ = writeln!(
            out,
            "{:<18} | {:^15} | {:^11} | {:^18}",
            row.kind.audit_id(),
            tick(row.pass_missing),
            tick(row.pass_empty),
            tick(row.pass_wrong_language),
        );
    }
    out
}

/// Render a discard distribution table (Figures 3 and 9 share the shape).
pub fn discards(rows: &[DiscardDistribution]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<18}", "");
    for cat in DiscardCategory::ALL {
        let _ = write!(out, " | {:>7}", short_cat(cat));
    }
    let _ = writeln!(out, " | {:>7}", "useful");
    let _ = writeln!(out, "{}", hr(18 + 12 * 10));
    for row in rows {
        let _ = write!(out, "{:<18}", row.label);
        for pct in row.pct {
            let _ = write!(out, " | {pct:>6.2}%");
        }
        let _ = writeln!(out, " | {:>6.2}%", row.informative_pct);
    }
    out
}

fn short_cat(cat: DiscardCategory) -> &'static str {
    match cat {
        DiscardCategory::Emoji => "emoji",
        DiscardCategory::TooShort => "short",
        DiscardCategory::FileName => "file",
        DiscardCategory::UrlOrFilePath => "url",
        DiscardCategory::GenericAction => "action",
        DiscardCategory::Placeholder => "plchld",
        DiscardCategory::DevLabel => "devlbl",
        DiscardCategory::LabelNumberPattern => "lblnum",
        DiscardCategory::SingleWord => "1word",
        DiscardCategory::MixedAlnum => "alnum",
        DiscardCategory::OrdinalPhrase => "ordnl",
    }
}

/// Render Figure 4.
pub fn lang_distribution(rows: &[LangDistRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} | {:>8} | {:>8} | {:>8} | {:>10}",
        "country", "native%", "english%", "mixed%", "texts"
    );
    let _ = writeln!(out, "{}", hr(54));
    for row in rows {
        let _ = writeln!(
            out,
            "{:<8} | {:>7.1}% | {:>7.1}% | {:>7.1}% | {:>10}",
            row.country_code, row.native_pct, row.english_pct, row.mixed_pct, row.informative_texts
        );
    }
    out
}

/// Render Figure 5 (CDFs on a 10-point grid, plus the mismatch headline).
pub fn mismatch_cdfs(rows: &[MismatchCdfs]) -> String {
    let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "CDF of native-language share (V = visible text, A = accessibility text)"
    );
    let _ = write!(out, "{:<10}", "country");
    for g in &grid {
        let _ = write!(out, " {:>5}", format!("≤{g:.0}"));
    }
    let _ = writeln!(out, "  | <10% native a11y");
    let _ = writeln!(out, "{}", hr(10 + 11 * 6 + 20));
    for row in rows {
        let _ = write!(out, "{:<8} V", row.country_code);
        for g in &grid {
            let _ = write!(out, " {:>5.2}", row.visible.at(*g));
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<8} A", "");
        for g in &grid {
            let _ = write!(out, " {:>5.2}", row.a11y.at(*g));
        }
        let _ = writeln!(
            out,
            "  | {:>5.1}% of sites",
            row.sites_below_10pct_native_a11y
        );
    }
    out
}

/// Render Figure 6 (score histograms before/after Kizuki).
pub fn kizuki_shift(shift: &KizukiShift) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Kizuki rescoring over {} eligible sites in {:?}:",
        shift.eligible_sites, shift.countries
    );
    let _ = writeln!(
        out,
        "  above 90: {:>5.1}% -> {:>5.1}%   perfect: {:>4.1}% -> {:>4.1}%",
        shift.old_above_90_pct,
        shift.new_above_90_pct,
        shift.old_perfect_pct,
        shift.new_perfect_pct
    );
    let _ = writeln!(out, "  {:>9} | {:>6} | {:>6}", "score bin", "old", "new");
    let _ = writeln!(out, "  {}", hr(29));
    for i in 0..shift.old_scores.counts.len() {
        let lo = shift.old_scores.edges[i];
        let hi = shift.old_scores.edges[i + 1];
        let _ = writeln!(
            out,
            "  {:>4.0}-{:<4.0} | {:>6} | {:>6}",
            lo, hi, shift.old_scores.counts[i], shift.new_scores.counts[i]
        );
    }
    out
}

/// Render Figure 7 (rank heatmap).
pub fn rank_heatmap(grid: &CountGrid) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<8}", "rank");
    for col in &grid.cols {
        let _ = write!(out, " {col:>6}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", hr(8 + grid.cols.len() * 7));
    for (r, row_label) in grid.rows.iter().enumerate() {
        let _ = write!(out, "{row_label:<8}");
        for c in 0..grid.cols.len() {
            let _ = write!(out, " {:>6}", grid.get(r, c));
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a scatter (Figures 2 and 8) as a 10×10 density grid.
///
/// `x_range`/`y_range` are (lo, hi); each cell prints the point count.
pub fn scatter_density(
    title: &str,
    points: &[(f64, f64)],
    x_range: (f64, f64),
    y_range: (f64, f64),
) -> String {
    const BINS: usize = 10;
    let mut cells = [[0u32; BINS]; BINS];
    for &(x, y) in points {
        let fx = ((x - x_range.0) / (x_range.1 - x_range.0)).clamp(0.0, 0.999);
        let fy = ((y - y_range.0) / (y_range.1 - y_range.0)).clamp(0.0, 0.999);
        cells[(fy * BINS as f64) as usize][(fx * BINS as f64) as usize] += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title} ({} sites)", points.len());
    for row in (0..BINS).rev() {
        let y_lo = y_range.0 + (y_range.1 - y_range.0) * row as f64 / BINS as f64;
        let _ = write!(out, "{y_lo:>5.0} |");
        for &n in &cells[row] {
            let _ = match n {
                0 => write!(out, "    ."),
                n => write!(out, "{n:>5}"),
            };
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "      ");
    for col in 0..BINS {
        let x_lo = x_range.0 + (x_range.1 - x_range.0) * col as f64 / BINS as f64;
        let _ = write!(out, "{x_lo:>5.0}");
    }
    let _ = writeln!(out);
    out
}

/// Render Table 4 (extreme examples).
pub fn extreme_examples(examples: &[ExtremeExample]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} | {:<4} | {:>8} | {:>6} | preview",
        "host", "cc", "chars", "words"
    );
    let _ = writeln!(out, "{}", hr(100));
    for e in examples {
        let _ = writeln!(
            out,
            "{:<22} | {:<4} | {:>8} | {:>6} | {}…",
            e.host,
            e.country.code(),
            e.chars,
            e.words,
            e.preview.chars().take(48).collect::<String>()
        );
    }
    out
}

/// Render Table 5 (mismatch examples).
pub fn mismatch_examples(examples: &[MismatchExample]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} | {:<4} | {:>9} | English alt text on a native-language page",
        "host", "cc", "native %"
    );
    let _ = writeln!(out, "{}", hr(110));
    for m in examples {
        let _ = writeln!(
            out,
            "{:<22} | {:<4} | {:>8.1}% | \"{}\"",
            m.host,
            m.country.code(),
            m.visible_native_pct,
            m.alt_preview.chars().take(60).collect::<String>()
        );
    }
    out
}

/// Render the declared-language consistency table (extension X3).
pub fn declared_lang(rows: &[DeclaredLangRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} | {:>9} | {:>9} | {:>10} | {:>8}",
        "country", "declared", "correct", "incorrect", "absent"
    );
    let _ = writeln!(out, "{}", hr(58));
    for row in rows {
        let _ = writeln!(
            out,
            "{:<8} | {:>8.1}% | {:>8.1}% | {:>9.1}% | {:>7.1}%",
            row.country_code, row.declared_pct, row.correct_pct, row.incorrect_pct, row.absent_pct
        );
    }
    out
}

/// Render the headline findings.
pub fn headlines(h: &Headlines) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Dataset: {} sites", h.sites);
    let _ = writeln!(
        out,
        "Share of accessibility texts discarded as uninformative: {:.1}%",
        h.discarded_share_pct
    );
    let _ = writeln!(out, "Sites with <10% native accessibility text:");
    for (code, pct) in &h.mismatch_share {
        let _ = writeln!(out, "  {code:<4} {pct:>5.1}%");
    }
    out
}

/// Render the per-country crawl provenance.
pub fn crawl_summaries(ds: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} | {:>9} | {:>8} | {:>10} | {:>6} | {:>10}",
        "country", "attempted", "selected", "rejected", "failed", "restricted"
    );
    let _ = writeln!(out, "{}", hr(66));
    for s in &ds.crawl_summaries {
        let _ = writeln!(
            out,
            "{:<8} | {:>9} | {:>8} | {:>10} | {:>6} | {:>10}",
            s.country_code,
            s.attempted,
            s.selected,
            s.rejected_threshold,
            s.failed_fetch,
            s.restricted
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::stats::Histogram;

    #[test]
    fn table3_render_contains_quirks() {
        let matrix = langcrux_audit::lighthouse_matrix();
        let text = table3(&matrix);
        assert!(text.contains("image-alt"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("pass"));
        // 12 rows + header + rule.
        assert_eq!(text.lines().count(), 14);
    }

    #[test]
    fn scatter_density_renders() {
        let points = vec![(10.0, 90.0), (15.0, 85.0), (90.0, 10.0)];
        let text = scatter_density("test", &points, (0.0, 100.0), (0.0, 100.0));
        assert!(text.contains("(3 sites)"));
        assert!(text.lines().count() >= 11);
    }

    #[test]
    fn kizuki_render_shape() {
        let shift = analysis::KizukiShift {
            countries: vec!["bd".into(), "th".into()],
            eligible_sites: 10,
            old_scores: Histogram::uniform(30.0, 100.0, 14),
            new_scores: Histogram::uniform(30.0, 100.0, 14),
            old_above_90_pct: 43.0,
            new_above_90_pct: 15.8,
            old_perfect_pct: 5.6,
            new_perfect_pct: 1.8,
        };
        let text = kizuki_shift(&shift);
        assert!(text.contains("43.0%"));
        assert!(text.contains("15.8%"));
    }

    #[test]
    fn declared_lang_render() {
        let rows = vec![crate::analysis::DeclaredLangRow {
            country_code: "bd".into(),
            declared_pct: 75.0,
            correct_pct: 50.0,
            incorrect_pct: 25.0,
            absent_pct: 25.0,
        }];
        let text = declared_lang(&rows);
        assert!(text.contains("bd"));
        assert!(text.contains("75.0%"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn empty_examples_render_headers_only() {
        assert_eq!(extreme_examples(&[]).lines().count(), 2);
        assert_eq!(mismatch_examples(&[]).lines().count(), 2);
    }
}
