//! Full-report generation.
//!
//! [`markdown_report`] assembles every analysis into one self-contained
//! Markdown document — the equivalent of regenerating the paper's entire
//! evaluation section from a dataset. Used by downstream tooling and by
//! users of released dataset JSON who want a readable overview without
//! running the individual `repro` artefacts.

use crate::analysis;
use crate::dataset::Dataset;
use crate::render;
use langcrux_lang::Country;
use std::fmt::Write as _;

fn code_block(out: &mut String, body: &str) {
    let _ = writeln!(out, "```text\n{}```\n", ensure_trailing_newline(body));
}

fn ensure_trailing_newline(s: &str) -> String {
    if s.ends_with('\n') {
        s.to_string()
    } else {
        format!("{s}\n")
    }
}

/// Render the full evaluation report for a dataset.
pub fn markdown_report(ds: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# LangCrUX measurement report\n");
    let _ = writeln!(
        out,
        "{} sites across {} countries (seed {:#x}, quota {}/country).\n",
        ds.len(),
        ds.countries().len(),
        ds.seed,
        ds.quota
    );

    let _ = writeln!(out, "## Crawl provenance\n");
    code_block(&mut out, &render::crawl_summaries(ds));

    let _ = writeln!(out, "## Table 2 — accessibility element statistics\n");
    code_block(&mut out, &render::table2(&analysis::table2(ds)));

    let _ = writeln!(out, "## Table 3 — Lighthouse pass/fail matrix\n");
    code_block(
        &mut out,
        &render::table3(&langcrux_audit::lighthouse_matrix()),
    );

    let _ = writeln!(out, "## Figure 3 — discard reasons by country\n");
    code_block(
        &mut out,
        &render::discards(&analysis::discard_by_country(ds)),
    );

    let _ = writeln!(
        out,
        "## Figure 4 — language of informative accessibility text\n"
    );
    code_block(
        &mut out,
        &render::lang_distribution(&analysis::lang_distribution(ds)),
    );

    let _ = writeln!(out, "## Figure 5 — native share CDFs\n");
    code_block(
        &mut out,
        &render::mismatch_cdfs(&analysis::mismatch_cdfs(ds)),
    );

    let _ = writeln!(out, "## Figure 6 — Kizuki rescoring (bd + th)\n");
    let shift = analysis::kizuki_shift(ds, &[Country::Bangladesh, Country::Thailand]);
    code_block(&mut out, &render::kizuki_shift(&shift));

    let _ = writeln!(out, "## Figure 7 — rank distribution\n");
    code_block(&mut out, &render::rank_heatmap(&analysis::rank_heatmap(ds)));

    let _ = writeln!(out, "## Figure 9 — discard reasons by element\n");
    code_block(
        &mut out,
        &render::discards(&analysis::discard_by_element(ds)),
    );

    let _ = writeln!(out, "## Declared `lang` metadata (X3)\n");
    code_block(
        &mut out,
        &render::declared_lang(&analysis::declared_lang(ds)),
    );

    if !ds.extreme_examples.is_empty() {
        let _ = writeln!(out, "## Table 4 — extreme alt texts\n");
        code_block(&mut out, &render::extreme_examples(&ds.extreme_examples));
    }
    if !ds.mismatch_examples.is_empty() {
        let _ = writeln!(out, "## Table 5 — language mismatches\n");
        code_block(&mut out, &render::mismatch_examples(&ds.mismatch_examples));
    }

    let _ = writeln!(out, "## Headlines\n");
    code_block(&mut out, &render::headlines(&analysis::headlines(ds)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_dataset, PipelineOptions};
    use langcrux_webgen::{Corpus, CorpusConfig};

    #[test]
    fn report_contains_every_section() {
        let corpus = Corpus::build(CorpusConfig::small(3, 15));
        let ds = build_dataset(
            &corpus,
            PipelineOptions {
                quota: 15,
                ..PipelineOptions::default()
            },
        );
        let report = markdown_report(&ds);
        for heading in [
            "# LangCrUX measurement report",
            "## Crawl provenance",
            "## Table 2",
            "## Table 3",
            "## Figure 3",
            "## Figure 4",
            "## Figure 5",
            "## Figure 6",
            "## Figure 7",
            "## Figure 9",
            "## Declared `lang` metadata (X3)",
            "## Headlines",
        ] {
            assert!(report.contains(heading), "missing section {heading:?}");
        }
        // Code fences must be balanced.
        assert_eq!(report.matches("```").count() % 2, 0);
        // All 12 countries appear.
        assert!(report.contains("bd") && report.contains("th") && report.contains("il"));
    }

    #[test]
    fn report_is_deterministic() {
        let build = || {
            let corpus = Corpus::build(CorpusConfig::small(8, 10));
            let ds = build_dataset(
                &corpus,
                PipelineOptions {
                    quota: 10,
                    ..PipelineOptions::default()
                },
            );
            markdown_report(&ds)
        };
        assert_eq!(build(), build());
    }
}
