//! The paper's two selection stages (§2).
//!
//! **Language & country selection** — start from the 26-language candidate
//! pool, require (1) at least 10,000 websites with ≥50% visible content in
//! the target language and (2) CrUX coverage with sufficient traffic data;
//! the result is exactly the 12 study pairs, with Tamil, Telugu, Sinhala,
//! Georgian and the rest excluded. Candidate availability numbers are
//! modelled (documented in [`AVAILABILITY`]) to reproduce the paper's
//! reported outcome, since the real CrUX counts are proprietary.
//!
//! **Website selection** — walk a country's CrUX-rank-ordered candidates,
//! crawl each through the country VPN, keep sites whose visible text passes
//! the 50% native threshold, and "replace \[failures\] with the next-ranking
//! candidate" until the quota is filled.

use langcrux_crawl::{Browser, BrowserConfig, Visit, VisitError, VisitTrace};
use langcrux_lang::{Country, Language};
use langcrux_langid::composition_of_histogram;
use langcrux_net::{vpn_vantage, Url, Vantage};
use langcrux_webgen::{Corpus, SitePlan};
use serde::{Deserialize, Serialize};

/// The paper's inclusion thresholds.
pub const MIN_QUALIFYING_SITES: u64 = 10_000;
pub const NATIVE_CONTENT_THRESHOLD_PCT: f64 = 50.0;

/// Modelled per-language web availability: how many sites have ≥50%
/// content in the language, and whether CrUX covers its main market with
/// sufficient traffic data. Values are stand-ins for the proprietary CrUX
/// counts, ordered so that the paper's reported inclusions/exclusions fall
/// out of the thresholds (e.g. §2: Tamil and Telugu "do not meet the
/// 10,000-website requirement"; "similar exclusions apply to Sinhala …
/// and Georgian").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LanguageAvailability {
    pub language: Language,
    pub qualifying_sites: u64,
    pub in_crux: bool,
}

/// The modelled availability table for the 26-candidate pool.
pub const AVAILABILITY: [LanguageAvailability; 26] = [
    a(Language::MandarinChinese, 48_000, true),
    a(Language::Hindi, 14_500, true),
    a(Language::ModernStandardArabic, 21_000, true),
    a(Language::Bangla, 12_800, true),
    a(Language::Russian, 45_000, true),
    a(Language::Japanese, 52_000, true),
    a(Language::EgyptianArabic, 11_600, true),
    a(Language::Cantonese, 10_900, true),
    a(Language::Korean, 38_000, true),
    a(Language::Thai, 24_000, true),
    a(Language::Greek, 13_200, true),
    a(Language::Hebrew, 11_100, true),
    // ---- excluded candidates ----
    a(Language::Urdu, 6_900, true),
    a(Language::Tamil, 7_200, true),
    a(Language::Telugu, 6_400, true),
    a(Language::Marathi, 8_100, true),
    a(Language::Amharic, 2_700, true),
    a(Language::Burmese, 5_600, true),
    a(Language::Sinhala, 4_800, true),
    a(Language::Georgian, 3_900, true),
    a(Language::Punjabi, 7_800, true),
    a(Language::Gujarati, 6_100, true),
    a(Language::Kannada, 5_300, true),
    a(Language::Malayalam, 5_900, true),
    // Persian's market lacks usable CrUX traffic data in our model.
    a(Language::Persian, 19_000, false),
    a(Language::Nepali, 4_100, true),
];

const fn a(language: Language, qualifying_sites: u64, in_crux: bool) -> LanguageAvailability {
    LanguageAvailability {
        language,
        qualifying_sites,
        in_crux,
    }
}

/// Outcome of the language-selection stage for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LanguageVerdict {
    Included,
    BelowSiteThreshold,
    NoCruxCoverage,
}

/// Run the paper's language-selection stage over the candidate pool.
pub fn select_languages() -> Vec<(Language, LanguageVerdict)> {
    AVAILABILITY
        .iter()
        .map(|av| {
            let verdict = if !av.in_crux {
                LanguageVerdict::NoCruxCoverage
            } else if av.qualifying_sites < MIN_QUALIFYING_SITES {
                LanguageVerdict::BelowSiteThreshold
            } else {
                LanguageVerdict::Included
            };
            (av.language, verdict)
        })
        .collect()
}

/// Why a candidate website was rejected during website selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rejection {
    /// Visible text below the 50% native threshold.
    BelowThreshold,
    /// Fetch failed after retries.
    Fetch(VisitError),
}

/// One selected website (plan + its crawl result).
pub struct SelectedSite {
    pub plan: SitePlan,
    pub visit: Visit,
    /// Measured visible native share at selection time.
    pub visible_native_pct: f64,
    pub visible_english_pct: f64,
}

/// Telemetry of one country's website-selection pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SelectionStats {
    pub attempted: u64,
    pub selected: u64,
    pub rejected_threshold: u64,
    pub failed_fetch: u64,
    pub restricted: u64,
    /// Quota shortfall (0 when the quota was met).
    pub shortfall: u64,
}

/// Fetch one candidate and apply the 50%-native-content inclusion test.
///
/// The outcome depends only on `(corpus seed, host, vantage)` — never on
/// when or from which worker the probe runs — which is what lets the
/// pipeline probe candidates in parallel chunks and still replay the
/// paper's sequential rank-order replacement walk over the verdicts.
/// The language composition comes from the histogram the crawler computed
/// during DOM extraction; the visible text is not re-scanned.
pub fn probe_candidate(
    browser: &mut Browser,
    plan: &SitePlan,
    vantage: Vantage,
    native: Language,
) -> Result<SelectedSite, Rejection> {
    probe_candidate_traced(browser, plan, vantage, native).0
}

/// [`probe_candidate`], also returning the visit's [`VisitTrace`] so the
/// pipeline can fold retry/backoff/breaker/damage accounting into the
/// degraded-run ledger ([`crate::ledger`]).
pub fn probe_candidate_traced(
    browser: &mut Browser,
    plan: &SitePlan,
    vantage: Vantage,
    native: Language,
) -> (Result<SelectedSite, Rejection>, VisitTrace) {
    let (result, trace) = browser.visit_traced(&Url::from_host(&plan.host), vantage);
    let outcome = match result {
        Ok(visit) => {
            let comp = composition_of_histogram(&visit.extract.visible_hist, native);
            if comp.has_evidence() && comp.native_pct >= NATIVE_CONTENT_THRESHOLD_PCT {
                Ok(SelectedSite {
                    plan: plan.clone(),
                    visible_native_pct: comp.native_pct,
                    visible_english_pct: comp.english_pct,
                    visit,
                })
            } else {
                Err(Rejection::BelowThreshold)
            }
        }
        Err(e) => Err(Rejection::Fetch(e)),
    };
    (outcome, trace)
}

/// Fold one probe outcome into the running stats, appending to `selected`
/// when the candidate qualified. Shared by the sequential walk below and
/// the pipeline's parallel verdict replay so both count identically.
pub fn tally_probe(
    outcome: Result<SelectedSite, Rejection>,
    selected: &mut Vec<SelectedSite>,
    stats: &mut SelectionStats,
) {
    tally_outcome(outcome.as_ref().map(|_| ()), stats);
    if let Ok(site) = outcome {
        selected.push(site);
    }
}

/// [`tally_probe`] over a site-free verdict — the shape distributed
/// workers ship back ([`crate::dist`]). Every replay counts through this
/// one function, so single-process and distributed stats cannot drift.
pub fn tally_outcome(outcome: Result<(), &Rejection>, stats: &mut SelectionStats) {
    stats.attempted += 1;
    match outcome {
        Ok(()) => stats.selected += 1,
        Err(Rejection::BelowThreshold) => stats.rejected_threshold += 1,
        Err(Rejection::Fetch(VisitError::Restricted)) => {
            stats.restricted += 1;
            stats.failed_fetch += 1;
        }
        Err(Rejection::Fetch(_)) => stats.failed_fetch += 1,
    }
}

/// Select up to `quota` websites for `country` from the corpus, walking
/// candidates in CrUX rank order and replacing failures with the next
/// candidate — the paper's procedure.
pub fn select_websites(
    corpus: &Corpus,
    country: Country,
    quota: usize,
    browser_config: BrowserConfig,
) -> (Vec<SelectedSite>, SelectionStats) {
    let vantage = vpn_vantage(country).unwrap_or_else(|| panic!("no VPN endpoint for {country:?}"));
    let mut browser = Browser::new(corpus.internet(), browser_config);
    let native = country.target_language();

    let mut selected = Vec::with_capacity(quota);
    let mut stats = SelectionStats::default();

    for plan in corpus.candidates(country).iter() {
        if selected.len() >= quota {
            break;
        }
        let outcome = probe_candidate(&mut browser, plan, vantage, native);
        tally_probe(outcome, &mut selected, &mut stats);
    }
    stats.shortfall = (quota as u64).saturating_sub(stats.selected);
    (selected, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_webgen::CorpusConfig;

    #[test]
    fn language_selection_yields_exactly_the_study_pairs() {
        let verdicts = select_languages();
        let included: Vec<Language> = verdicts
            .iter()
            .filter(|(_, v)| *v == LanguageVerdict::Included)
            .map(|(l, _)| *l)
            .collect();
        assert_eq!(included.len(), 12);
        let mut expected = Language::INCLUDED.to_vec();
        expected.sort();
        let mut got = included.clone();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn paper_named_exclusions_hold() {
        let verdicts = select_languages();
        let verdict = |l: Language| verdicts.iter().find(|(x, _)| *x == l).unwrap().1;
        for lang in [
            Language::Tamil,
            Language::Telugu,
            Language::Sinhala,
            Language::Georgian,
            Language::Urdu,
            Language::Marathi,
        ] {
            assert_eq!(
                verdict(lang),
                LanguageVerdict::BelowSiteThreshold,
                "{lang:?}"
            );
        }
        assert_eq!(verdict(Language::Persian), LanguageVerdict::NoCruxCoverage);
    }

    #[test]
    fn website_selection_fills_quota_with_replacement() {
        let corpus = Corpus::build(CorpusConfig::small(301, 40));
        let (sites, stats) =
            select_websites(&corpus, Country::Thailand, 40, BrowserConfig::default());
        assert_eq!(sites.len(), 40, "quota unmet: {stats:?}");
        assert_eq!(stats.shortfall, 0);
        // Replacement must actually have happened: some candidates rejected.
        assert!(
            stats.rejected_threshold > 0,
            "no disqualified candidates encountered: {stats:?}"
        );
        assert!(stats.attempted > 40);
        for site in &sites {
            assert!(site.visible_native_pct >= NATIVE_CONTENT_THRESHOLD_PCT);
        }
    }

    #[test]
    fn selection_respects_rank_order() {
        let corpus = Corpus::build(CorpusConfig::small(301, 20));
        let (sites, _) = select_websites(&corpus, Country::Japan, 20, BrowserConfig::default());
        for w in sites.windows(2) {
            assert!(w[0].plan.rank <= w[1].plan.rank);
        }
    }

    #[test]
    fn small_quota_small_attempts() {
        let corpus = Corpus::build(CorpusConfig::small(301, 30));
        let (sites, stats) = select_websites(&corpus, Country::Israel, 5, BrowserConfig::default());
        assert_eq!(sites.len(), 5);
        assert!(stats.attempted <= 12, "attempted = {}", stats.attempted);
    }
}
