//! The degraded-run ledger: what a crawl *lost* and what it cost.
//!
//! The dataset records what survived the crawl; under fault injection
//! that is only half the story. [`CrawlLedger`] is the other half — a
//! serializable per-country account of every error by taxonomy class,
//! every retry and virtual-time wait, body damage, breaker activity, and
//! the replacement-chain depth the paper's next-candidate rule had to
//! walk. It is built from the same sequential verdict replay that picks
//! the sites, so for a given `(seed, fault plan)` the ledger bytes are
//! identical at every worker count — the same determinism contract as
//! `Dataset::to_json`, and a tested invariant.
//!
//! Sites whose analysis panicked (poisoned work units — see
//! [`crate::pipeline`]) are listed per country by host, so a degraded
//! run is auditable down to the individual page.

use crate::selection::{Rejection, SelectedSite};
use langcrux_crawl::{VisitError, VisitTrace};
use langcrux_net::{FaultPlan, FetchError};
use serde::{field, DeError, Deserialize, Serialize, Value};

/// Terminal error counts, bucketed by the expanded fault taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorTaxonomy {
    /// Request timeouts that survived all retries.
    pub timeouts: u64,
    /// Connection resets that survived all retries.
    pub resets: u64,
    /// Transient 5xx answers that survived all retries.
    pub server_errors: u64,
    /// Vantage refused outright (geo-block wall).
    pub geo_blocks: u64,
    /// Hostname missing from the simulated DNS.
    pub unknown_hosts: u64,
    /// Bot-wall / VPN-detection pages served instead of content.
    pub restricted: u64,
    /// Per-visit virtual-time budget exhausted mid-retry-chain.
    pub deadline_exceeded: u64,
    /// Circuit breaker still open at the visit deadline.
    pub circuit_open: u64,
}

impl ErrorTaxonomy {
    /// Bucket one terminal visit error.
    pub fn record(&mut self, error: &VisitError) {
        match error {
            VisitError::Fetch(FetchError::Timeout) => self.timeouts += 1,
            VisitError::Fetch(FetchError::ConnectionReset) => self.resets += 1,
            VisitError::Fetch(FetchError::ServerError(_)) => self.server_errors += 1,
            VisitError::Fetch(FetchError::GeoBlocked) => self.geo_blocks += 1,
            VisitError::Fetch(FetchError::UnknownHost(_)) => self.unknown_hosts += 1,
            VisitError::Restricted => self.restricted += 1,
            VisitError::DeadlineExceeded => self.deadline_exceeded += 1,
            VisitError::CircuitOpen => self.circuit_open += 1,
        }
    }

    /// Sum over every bucket.
    pub fn total(&self) -> u64 {
        self.timeouts
            + self.resets
            + self.server_errors
            + self.geo_blocks
            + self.unknown_hosts
            + self.restricted
            + self.deadline_exceeded
            + self.circuit_open
    }
}

/// One country's degraded-run account.
///
/// Serialization is hand-written so the translation-gap counters — which
/// only a gap-enabled corpus can make nonzero — are *omitted* when zero.
/// Ledgers from runs with gap scenarios disabled therefore serialize
/// byte-identically to ledgers produced before the gap dimension existed,
/// and old ledger JSON still deserializes (missing counters read as 0).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CountryLedger {
    pub country_code: String,
    /// Candidates consumed by the replacement walk.
    pub attempted: u64,
    /// Candidates that qualified (== sites selected).
    pub selected: u64,
    /// Fetch attempts issued, including retries.
    pub attempts: u64,
    /// Retries alone (attempts beyond each visit's first).
    pub retries: u64,
    /// Terminal errors by taxonomy class.
    pub errors: ErrorTaxonomy,
    /// Candidates rejected by the 50% native-content threshold.
    pub rejected_threshold: u64,
    /// Visits whose body arrived truncated.
    pub truncated_bodies: u64,
    /// Visits whose body arrived with a garbled span.
    pub garbled_bodies: u64,
    /// Virtual ms spent in exponential-backoff waits.
    pub backoff_wait_ms: u64,
    /// Virtual ms spent waiting out breaker cooldowns.
    pub breaker_wait_ms: u64,
    /// Total virtual ms the country's visits consumed.
    pub virtual_ms: u64,
    /// Circuit-breaker trips (including re-opens).
    pub breaker_opened: u64,
    /// Half-open probes admitted.
    pub breaker_probes: u64,
    /// Successful probes that re-closed a breaker.
    pub breaker_reclosed: u64,
    /// Candidates the replacement rule consumed without selecting
    /// (threshold rejections + terminal errors).
    pub replacements: u64,
    /// Longest consecutive run of non-selections — how deep the paper's
    /// next-candidate rule had to dig at the worst point.
    pub max_replacement_run: u64,
    /// Hosts whose site analysis panicked and was contained.
    pub poisoned_sites: Vec<String>,
    /// Selected pages carrying at least one translation-gap region.
    pub gap_pages: u64,
    /// Translation-gap regions flagged across the country's pages.
    pub gap_regions: u64,
}

impl Serialize for CountryLedger {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("country_code".to_string(), self.country_code.to_value()),
            ("attempted".to_string(), self.attempted.to_value()),
            ("selected".to_string(), self.selected.to_value()),
            ("attempts".to_string(), self.attempts.to_value()),
            ("retries".to_string(), self.retries.to_value()),
            ("errors".to_string(), self.errors.to_value()),
            (
                "rejected_threshold".to_string(),
                self.rejected_threshold.to_value(),
            ),
            (
                "truncated_bodies".to_string(),
                self.truncated_bodies.to_value(),
            ),
            ("garbled_bodies".to_string(), self.garbled_bodies.to_value()),
            (
                "backoff_wait_ms".to_string(),
                self.backoff_wait_ms.to_value(),
            ),
            (
                "breaker_wait_ms".to_string(),
                self.breaker_wait_ms.to_value(),
            ),
            ("virtual_ms".to_string(), self.virtual_ms.to_value()),
            ("breaker_opened".to_string(), self.breaker_opened.to_value()),
            ("breaker_probes".to_string(), self.breaker_probes.to_value()),
            (
                "breaker_reclosed".to_string(),
                self.breaker_reclosed.to_value(),
            ),
            ("replacements".to_string(), self.replacements.to_value()),
            (
                "max_replacement_run".to_string(),
                self.max_replacement_run.to_value(),
            ),
            ("poisoned_sites".to_string(), self.poisoned_sites.to_value()),
        ];
        if self.gap_pages != 0 || self.gap_regions != 0 {
            obj.push(("gap_pages".to_string(), self.gap_pages.to_value()));
            obj.push(("gap_regions".to_string(), self.gap_regions.to_value()));
        }
        Value::Object(obj)
    }
}

impl Deserialize for CountryLedger {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        let optional = |name: &str| -> Result<u64, DeError> {
            match v.get(name) {
                Some(count) => u64::from_value(count),
                None => Ok(0),
            }
        };
        Ok(CountryLedger {
            country_code: field(obj, "country_code")?,
            attempted: field(obj, "attempted")?,
            selected: field(obj, "selected")?,
            attempts: field(obj, "attempts")?,
            retries: field(obj, "retries")?,
            errors: field(obj, "errors")?,
            rejected_threshold: field(obj, "rejected_threshold")?,
            truncated_bodies: field(obj, "truncated_bodies")?,
            garbled_bodies: field(obj, "garbled_bodies")?,
            backoff_wait_ms: field(obj, "backoff_wait_ms")?,
            breaker_wait_ms: field(obj, "breaker_wait_ms")?,
            virtual_ms: field(obj, "virtual_ms")?,
            breaker_opened: field(obj, "breaker_opened")?,
            breaker_probes: field(obj, "breaker_probes")?,
            breaker_reclosed: field(obj, "breaker_reclosed")?,
            replacements: field(obj, "replacements")?,
            max_replacement_run: field(obj, "max_replacement_run")?,
            poisoned_sites: field(obj, "poisoned_sites")?,
            gap_pages: optional("gap_pages")?,
            gap_regions: optional("gap_regions")?,
        })
    }
}

impl CountryLedger {
    pub fn new(country_code: &str) -> Self {
        CountryLedger {
            country_code: country_code.to_string(),
            ..CountryLedger::default()
        }
    }

    /// Fold one probed candidate (its verdict and visit trace) into the
    /// account. Replacement-run depth is tracked by the caller, which
    /// owns the sequential walk — see [`note_replacement_run`].
    ///
    /// [`note_replacement_run`]: CountryLedger::note_replacement_run
    pub fn record_probe(&mut self, outcome: &Result<SelectedSite, Rejection>, trace: &VisitTrace) {
        self.record_probe_outcome(outcome.as_ref().map(|_| ()), trace);
    }

    /// [`record_probe`](CountryLedger::record_probe) over a site-free
    /// verdict — the shape distributed workers ship back. Both replays
    /// fold through this one accumulator, so their arithmetic cannot
    /// drift.
    pub fn record_probe_outcome(&mut self, outcome: Result<(), &Rejection>, trace: &VisitTrace) {
        self.attempted += 1;
        self.attempts += u64::from(trace.attempts);
        self.retries += u64::from(trace.attempts.saturating_sub(1));
        self.truncated_bodies += u64::from(trace.truncated);
        self.garbled_bodies += u64::from(trace.garbled);
        self.backoff_wait_ms += trace.backoff_wait_ms;
        self.breaker_wait_ms += trace.breaker_wait_ms;
        self.virtual_ms += trace.virtual_ms;
        self.breaker_opened += u64::from(trace.breaker_opened);
        self.breaker_probes += u64::from(trace.breaker_probes);
        self.breaker_reclosed += u64::from(trace.breaker_reclosed);
        match outcome {
            Ok(()) => self.selected += 1,
            Err(Rejection::BelowThreshold) => {
                self.rejected_threshold += 1;
                self.replacements += 1;
            }
            Err(Rejection::Fetch(e)) => {
                self.errors.record(e);
                self.replacements += 1;
            }
        }
    }

    /// Report one consecutive run of non-selections from the replacement
    /// walk; keeps the maximum.
    pub fn note_replacement_run(&mut self, run: u64) {
        self.max_replacement_run = self.max_replacement_run.max(run);
    }

    /// Sum another account into this one (used for the run totals).
    pub fn absorb(&mut self, other: &CountryLedger) {
        self.attempted += other.attempted;
        self.selected += other.selected;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.errors.timeouts += other.errors.timeouts;
        self.errors.resets += other.errors.resets;
        self.errors.server_errors += other.errors.server_errors;
        self.errors.geo_blocks += other.errors.geo_blocks;
        self.errors.unknown_hosts += other.errors.unknown_hosts;
        self.errors.restricted += other.errors.restricted;
        self.errors.deadline_exceeded += other.errors.deadline_exceeded;
        self.errors.circuit_open += other.errors.circuit_open;
        self.rejected_threshold += other.rejected_threshold;
        self.truncated_bodies += other.truncated_bodies;
        self.garbled_bodies += other.garbled_bodies;
        self.backoff_wait_ms += other.backoff_wait_ms;
        self.breaker_wait_ms += other.breaker_wait_ms;
        self.virtual_ms += other.virtual_ms;
        self.breaker_opened += other.breaker_opened;
        self.breaker_probes += other.breaker_probes;
        self.breaker_reclosed += other.breaker_reclosed;
        self.replacements += other.replacements;
        self.max_replacement_run = self.max_replacement_run.max(other.max_replacement_run);
        self.poisoned_sites
            .extend(other.poisoned_sites.iter().cloned());
        self.gap_pages += other.gap_pages;
        self.gap_regions += other.gap_regions;
    }
}

/// A work unit a distributed build permanently lost: its worker died (or
/// stalled past its lease) more than `max_reassignments` times, so its
/// candidate range was never probed. The affected country's verdict
/// replay truncates at the hole — the run degrades to a quota shortfall
/// instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedUnit {
    pub country_code: String,
    /// Candidate range the unit covered (`start..end`, rank order).
    pub start: u64,
    pub end: u64,
    /// Dispatch attempts consumed before the unit was given up.
    pub attempts: u32,
}

/// The degraded-run ledger for one dataset build.
///
/// Serialization is hand-written for the same reason as
/// [`CountryLedger`]'s: the `degraded_units` section — which only a
/// distributed build that permanently lost a unit can populate — is
/// *omitted* when empty, so single-process ledgers (and every fully
/// recovered distributed run) serialize byte-identically to ledgers
/// produced before the distributed build existed.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlLedger {
    /// Corpus seed the run was built from.
    pub seed: u64,
    /// The fault plan in force (round-trips through JSON).
    pub fault_plan: FaultPlan,
    /// Per-country accounts, in study order.
    pub countries: Vec<CountryLedger>,
    /// Whole-run totals (`country_code == "total"`).
    pub totals: CountryLedger,
    /// Work units a distributed build lost after max reassignments;
    /// empty on single-process and fully recovered runs.
    pub degraded_units: Vec<DegradedUnit>,
}

impl Serialize for CrawlLedger {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("seed".to_string(), self.seed.to_value()),
            ("fault_plan".to_string(), self.fault_plan.to_value()),
            ("countries".to_string(), self.countries.to_value()),
            ("totals".to_string(), self.totals.to_value()),
        ];
        if !self.degraded_units.is_empty() {
            obj.push(("degraded_units".to_string(), self.degraded_units.to_value()));
        }
        Value::Object(obj)
    }
}

impl Deserialize for CrawlLedger {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        Ok(CrawlLedger {
            seed: field(obj, "seed")?,
            fault_plan: field(obj, "fault_plan")?,
            countries: field(obj, "countries")?,
            totals: field(obj, "totals")?,
            degraded_units: match v.get("degraded_units") {
                Some(units) => Vec::from_value(units)?,
                None => Vec::new(),
            },
        })
    }
}

impl CrawlLedger {
    pub fn new(seed: u64, fault_plan: FaultPlan, countries: Vec<CountryLedger>) -> Self {
        let mut totals = CountryLedger::new("total");
        for country in &countries {
            totals.absorb(country);
        }
        CrawlLedger {
            seed,
            fault_plan,
            countries,
            totals,
            degraded_units: Vec::new(),
        }
    }

    /// Register the run totals into the unified metrics registry
    /// (`langcrux_crawl_*` family — see `docs/observability.md`).
    pub fn encode_metrics(&self, enc: &mut langcrux_obs::Encoder) {
        let t = &self.totals;
        enc.counter(
            "langcrux_crawl_candidates_attempted_total",
            "Candidates consumed by the replacement walk.",
            t.attempted as f64,
        );
        enc.counter(
            "langcrux_crawl_sites_selected_total",
            "Candidates that qualified (sites in the dataset).",
            t.selected as f64,
        );
        enc.counter(
            "langcrux_crawl_fetch_attempts_total",
            "Fetch attempts issued, including retries.",
            t.attempts as f64,
        );
        enc.counter(
            "langcrux_crawl_retries_total",
            "Retries beyond each visit's first attempt.",
            t.retries as f64,
        );
        const ERRORS: &str = "Terminal visit errors, by taxonomy class.";
        for (class, count) in [
            ("timeout", t.errors.timeouts),
            ("reset", t.errors.resets),
            ("server_error", t.errors.server_errors),
            ("geo_block", t.errors.geo_blocks),
            ("unknown_host", t.errors.unknown_hosts),
            ("restricted", t.errors.restricted),
            ("deadline_exceeded", t.errors.deadline_exceeded),
            ("circuit_open", t.errors.circuit_open),
        ] {
            enc.counter_with(
                "langcrux_crawl_errors_total",
                ERRORS,
                &[("class", class)],
                count as f64,
            );
        }
        enc.counter(
            "langcrux_crawl_rejected_threshold_total",
            "Candidates rejected by the 50% native-content threshold.",
            t.rejected_threshold as f64,
        );
        const DAMAGE: &str = "Visits whose body arrived damaged, by kind.";
        enc.counter_with(
            "langcrux_crawl_damaged_bodies_total",
            DAMAGE,
            &[("kind", "truncated")],
            t.truncated_bodies as f64,
        );
        enc.counter_with(
            "langcrux_crawl_damaged_bodies_total",
            DAMAGE,
            &[("kind", "garbled")],
            t.garbled_bodies as f64,
        );
        const WAITS: &str = "Virtual milliseconds spent waiting, by cause.";
        enc.counter_with(
            "langcrux_crawl_wait_virtual_milliseconds_total",
            WAITS,
            &[("cause", "backoff")],
            t.backoff_wait_ms as f64,
        );
        enc.counter_with(
            "langcrux_crawl_wait_virtual_milliseconds_total",
            WAITS,
            &[("cause", "breaker")],
            t.breaker_wait_ms as f64,
        );
        enc.counter(
            "langcrux_crawl_virtual_milliseconds_total",
            "Total virtual milliseconds the crawl consumed.",
            t.virtual_ms as f64,
        );
        enc.counter(
            "langcrux_crawl_breaker_opened_total",
            "Circuit-breaker trips, including re-opens.",
            t.breaker_opened as f64,
        );
        enc.counter(
            "langcrux_crawl_breaker_probes_total",
            "Half-open probes admitted.",
            t.breaker_probes as f64,
        );
        enc.counter(
            "langcrux_crawl_breaker_reclosed_total",
            "Successful probes that re-closed a breaker.",
            t.breaker_reclosed as f64,
        );
        enc.counter(
            "langcrux_crawl_replacements_total",
            "Candidates consumed without selection.",
            t.replacements as f64,
        );
        enc.gauge(
            "langcrux_crawl_max_replacement_run",
            "Deepest consecutive non-selection run of the replacement walk.",
            t.max_replacement_run as f64,
        );
        enc.gauge(
            "langcrux_crawl_poisoned_sites",
            "Hosts whose site analysis panicked and was contained.",
            t.poisoned_sites.len() as f64,
        );
        const GAP_PAGES: &str = "Selected pages with at least one translation-gap region.";
        const GAP_REGIONS: &str = "Translation-gap regions flagged by the audit.";
        for c in &self.countries {
            let labels = [("country", c.country_code.as_str())];
            enc.counter_with(
                "langcrux_crawl_gap_pages_total",
                GAP_PAGES,
                &labels,
                c.gap_pages as f64,
            );
            enc.counter_with(
                "langcrux_crawl_gap_regions_total",
                GAP_REGIONS,
                &labels,
                c.gap_regions as f64,
            );
        }
    }

    /// Serialize to JSON (written alongside the dataset).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Load from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<CrawlLedger> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(attempts: u32, virtual_ms: u64) -> VisitTrace {
        VisitTrace {
            attempts,
            virtual_ms,
            ..VisitTrace::default()
        }
    }

    #[test]
    fn taxonomy_buckets_every_error_kind() {
        let mut tax = ErrorTaxonomy::default();
        for e in [
            VisitError::Fetch(FetchError::Timeout),
            VisitError::Fetch(FetchError::ConnectionReset),
            VisitError::Fetch(FetchError::ServerError(503)),
            VisitError::Fetch(FetchError::GeoBlocked),
            VisitError::Fetch(FetchError::UnknownHost("x.bd".into())),
            VisitError::Restricted,
            VisitError::DeadlineExceeded,
            VisitError::CircuitOpen,
        ] {
            tax.record(&e);
        }
        assert_eq!(tax.total(), 8);
        assert_eq!(tax.timeouts, 1);
        assert_eq!(tax.server_errors, 1);
        assert_eq!(tax.circuit_open, 1);
    }

    #[test]
    fn record_probe_accumulates_and_counts_replacements() {
        let mut ledger = CountryLedger::new("bd");
        ledger.record_probe(&Err(Rejection::BelowThreshold), &trace(1, 50));
        ledger.record_probe(
            &Err(Rejection::Fetch(VisitError::Fetch(FetchError::Timeout))),
            &trace(3, 900),
        );
        ledger.note_replacement_run(2);
        assert_eq!(ledger.attempted, 2);
        assert_eq!(ledger.attempts, 4);
        assert_eq!(ledger.retries, 2);
        assert_eq!(ledger.replacements, 2);
        assert_eq!(ledger.max_replacement_run, 2);
        assert_eq!(ledger.rejected_threshold, 1);
        assert_eq!(ledger.errors.timeouts, 1);
        assert_eq!(ledger.virtual_ms, 950);
    }

    #[test]
    fn totals_absorb_all_countries() {
        let mut bd = CountryLedger::new("bd");
        bd.record_probe(
            &Err(Rejection::Fetch(VisitError::Restricted)),
            &trace(1, 10),
        );
        bd.poisoned_sites.push("sangbad-3.bd".into());
        let mut th = CountryLedger::new("th");
        th.record_probe(&Err(Rejection::BelowThreshold), &trace(2, 20));
        let ledger = CrawlLedger::new(9, FaultPlan::RELIABLE, vec![bd, th]);
        assert_eq!(ledger.totals.country_code, "total");
        assert_eq!(ledger.totals.attempted, 2);
        assert_eq!(ledger.totals.attempts, 3);
        assert_eq!(ledger.totals.errors.restricted, 1);
        assert_eq!(ledger.totals.poisoned_sites, vec!["sangbad-3.bd"]);
    }

    #[test]
    fn gap_counters_are_elided_when_zero_and_round_trip_when_set() {
        // Zero counters: no keys at all, so gap-free ledgers serialize
        // byte-identically to pre-gap-dimension ledgers …
        let clean = CountryLedger::new("bd");
        let v = clean.to_value();
        assert!(v.get("gap_pages").is_none());
        assert!(v.get("gap_regions").is_none());
        // … and old JSON (no keys) still loads, defaulting to 0.
        let back = CountryLedger::from_value(&v).unwrap();
        assert_eq!(back, clean);

        let mut gappy = CountryLedger::new("th");
        gappy.gap_pages = 4;
        gappy.gap_regions = 11;
        let v = gappy.to_value();
        assert!(v.get("gap_pages").is_some());
        let back = CountryLedger::from_value(&v).unwrap();
        assert_eq!(back, gappy);

        let mut totals = CountryLedger::new("total");
        totals.absorb(&clean);
        totals.absorb(&gappy);
        assert_eq!(totals.gap_pages, 4);
        assert_eq!(totals.gap_regions, 11);
    }

    #[test]
    fn degraded_units_elided_when_empty_and_round_trip_when_set() {
        // Empty: no key at all, so fully recovered (and single-process)
        // ledgers serialize byte-identically to pre-distributed ones …
        let clean = CrawlLedger::new(7, FaultPlan::RELIABLE, vec![CountryLedger::new("bd")]);
        let v = clean.to_value();
        assert!(v.get("degraded_units").is_none());
        // … and old JSON (no key) still loads, defaulting to empty.
        let back = CrawlLedger::from_value(&v).unwrap();
        assert_eq!(back, clean);

        let mut degraded = clean.clone();
        degraded.degraded_units.push(DegradedUnit {
            country_code: "bd".into(),
            start: 64,
            end: 128,
            attempts: 6,
        });
        let v = degraded.to_value();
        assert!(v.get("degraded_units").is_some());
        let back = CrawlLedger::from_value(&v).unwrap();
        assert_eq!(back, degraded);
        assert_eq!(back.degraded_units[0].end, 128);
    }

    #[test]
    fn record_probe_outcome_matches_sited_replay() {
        let mut by_site = CountryLedger::new("bd");
        by_site.record_probe(&Err(Rejection::BelowThreshold), &trace(2, 40));
        let mut by_wire = CountryLedger::new("bd");
        by_wire.record_probe_outcome(Err(&Rejection::BelowThreshold), &trace(2, 40));
        by_wire.record_probe_outcome(Ok(()), &trace(1, 10));
        by_site.record_probe_outcome(Ok(()), &trace(1, 10));
        assert_eq!(by_site, by_wire);
        assert_eq!(by_wire.selected, 1);
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let mut bd = CountryLedger::new("bd");
        bd.record_probe(
            &Err(Rejection::Fetch(VisitError::DeadlineExceeded)),
            &trace(4, 31_000),
        );
        let ledger = CrawlLedger::new(41, FaultPlan::HOSTILE, vec![bd]);
        let json = ledger.to_json().unwrap();
        let back = CrawlLedger::from_json(&json).unwrap();
        assert_eq!(back, ledger);
    }
}
