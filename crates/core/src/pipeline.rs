//! The end-to-end LangCrUX pipeline: corpus → selection → crawl → dataset.
//!
//! One call ([`build_dataset`]) reproduces the paper's Figure 1 flow:
//! country-by-country VPN-vantage crawls over CrUX-rank-ordered candidates,
//! the 50% native-content inclusion rule with next-candidate replacement,
//! accessibility-element extraction, filtering, label-language
//! classification, base audits and Kizuki rescoring.
//!
//! ## Parallelism model
//!
//! Work is sharded as `(country, chunk)` units over the shared
//! work-stealing pool in `langcrux-crawl` (one worker per core by default),
//! replacing the old one-thread-per-country scope that left most cores
//! idle whenever country counts and core counts disagreed. Two properties
//! make this safe:
//!
//! * **Probe purity** — a candidate's fetch outcome and composition verdict
//!   depend only on `(corpus seed, host, vantage)`, never on probe order,
//!   so candidate chunks can run on any worker in any order.
//! * **Verdict replay** — the paper's sequential rank-order replacement
//!   walk is replayed over the probed verdicts afterwards, so selection
//!   stats, the chosen sites, and the shortfall accounting are identical
//!   to the sequential walk at every thread count.
//!
//! Record order is deterministic (study order, then rank order), and
//! `Dataset::to_json` output is byte-identical across runs and thread
//! counts — a tested invariant.
//!
//! ## Graceful degradation
//!
//! Every per-site analysis unit is unwind-guarded: a panic while
//! processing one site poisons only that site — its host is listed in
//! the run's [`CrawlLedger`] and the remaining sites of the chunk (and
//! the pool) proceed untouched. [`build_dataset_with_ledger`] returns
//! the ledger alongside the dataset; both serialize byte-identically at
//! every worker count.

use crate::dataset::{
    CountryCrawlSummary, Dataset, ElementRecord, ExtremeExample, MismatchExample, SiteGaps,
    SiteRecord, TextState,
};
use crate::ledger::{CountryLedger, CrawlLedger};
use crate::selection::{
    probe_candidate_traced, tally_probe, Rejection, SelectedSite, SelectionStats,
};
use langcrux_audit::{audit_page, gap_report, GapKind};
use langcrux_crawl::pool::{default_threads, run_work_stealing, run_work_stealing_with};
use langcrux_crawl::{char_word_counts, Browser, BrowserConfig, VisitTrace};
use langcrux_filter::classify;
use langcrux_kizuki::{page_language, Kizuki, ScreenReader};
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Country;
use langcrux_langid::{classify_label, LabelLanguage};
use langcrux_net::vpn_vantage;
use langcrux_obs as obs;
use langcrux_webgen::Corpus;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pipeline options.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Sites per country to select (the paper: 10,000).
    pub quota: usize,
    pub browser: BrowserConfig,
    /// Cap on captured extreme examples (Table 4).
    pub max_extreme_examples: usize,
    /// Cap on captured mismatch examples (Table 5).
    pub max_mismatch_examples: usize,
    /// Worker threads for the shared pool; 0 means one per core.
    pub threads: usize,
    /// Chaos hook: panic inside the analysis of any site whose host this
    /// predicate matches. Exercises the unwind guard; `None` in
    /// production.
    pub chaos_panic_host: Option<fn(&str) -> bool>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            quota: 1_000,
            browser: BrowserConfig::default(),
            max_extreme_examples: 40,
            max_mismatch_examples: 24,
            threads: 0,
            chaos_panic_host: None,
        }
    }
}

struct CountryResult {
    country: Country,
    records: Vec<SiteRecord>,
    summary: CountryCrawlSummary,
    extremes: Vec<ExtremeExample>,
    mismatches: Vec<MismatchExample>,
}

/// Per-country progress of the wave-probed selection phase.
struct CountryProbe {
    country: Country,
    /// Probe outcomes (verdict + visit trace) for the candidate prefix
    /// `0..verdicts.len()`.
    verdicts: Vec<(Result<SelectedSite, Rejection>, VisitTrace)>,
    /// Qualifying candidates seen so far in the prefix.
    qualified: usize,
}

/// Candidate chunks the probe phase hands to the pool.
type ProbeTask = (usize, Range<usize>);

/// Build the dataset from a corpus.
pub fn build_dataset(corpus: &Corpus, options: PipelineOptions) -> Dataset {
    build_dataset_with_ledger(corpus, options).0
}

/// Build the dataset plus its degraded-run [`CrawlLedger`].
///
/// The ledger is folded from the same sequentially-replayed verdict
/// prefix that selects the sites, so its bytes — like the dataset's —
/// depend only on `(corpus seed, fault plan, quota)`, never on the
/// worker count.
pub fn build_dataset_with_ledger(
    corpus: &Corpus,
    options: PipelineOptions,
) -> (Dataset, CrawlLedger) {
    let threads = if options.threads == 0 {
        default_threads()
    } else {
        options.threads
    };
    let countries: Vec<Country> = corpus.countries().collect();
    // Root span for the whole build; pool tasks fence their own depth,
    // so worker-side spans record identically at every thread count.
    let _build_span = obs::trace::span("pipeline.build", corpus.config().seed);
    // Hoisted: one Kizuki engine for the whole run (it is stateless and
    // Sync); previously rebuilt per site record.
    let kizuki = Kizuki::standard();
    // Translation-gap detection runs only when the corpus was built with
    // gap scenarios enabled; the reference reader maps each flagged
    // region to what a screen reader would do with it.
    let gaps_enabled = corpus.config().gap_scenarios;
    let reader = ScreenReader::voiceover_like();

    // ---- Phase 1: probe candidates in waves of (country, chunk) units.
    let mut probes: Vec<CountryProbe> = countries
        .iter()
        .map(|&country| CountryProbe {
            country,
            verdicts: Vec::new(),
            qualified: 0,
        })
        .collect();

    let mut wave_ordinal = 0u64;
    loop {
        let tasks = probe_wave_tasks(corpus, &probes, options.quota, threads);
        if tasks.is_empty() {
            break;
        }
        // Wave count and ordinal are quota-driven, not thread-driven, so
        // the span structure is stable across worker counts.
        let _wave_span = obs::trace::span("pipeline.probe_wave", wave_ordinal);
        wave_ordinal += 1;
        // One browser per pool worker: its fetch buffer (and the render
        // arenas it exercises downstream) are recycled across every chunk
        // the worker probes, regardless of country.
        let wave = run_work_stealing_with(
            threads,
            &tasks,
            |_| Browser::new(corpus.internet(), options.browser),
            |browser, _, task: &ProbeTask| {
                let (ci, range) = task;
                let country = probes[*ci].country;
                let vantage = vpn_vantage(country)
                    .unwrap_or_else(|| panic!("no VPN endpoint for {country:?}"));
                let native = country.target_language();
                corpus.candidates(country)[range.clone()]
                    .iter()
                    .map(|plan| probe_candidate_traced(browser, plan, vantage, native))
                    .collect::<Vec<_>>()
            },
        );
        for ((ci, _), outcomes) in tasks.iter().zip(wave) {
            let probe = &mut probes[*ci];
            probe.qualified += outcomes.iter().filter(|(o, _)| o.is_ok()).count();
            probe.verdicts.extend(outcomes);
        }
    }

    // Replay the paper's sequential replacement walk over the verdicts,
    // folding the degraded-run ledger from the same consumed prefix.
    let mut country_ledgers: Vec<CountryLedger> = Vec::with_capacity(probes.len());
    let selections: Vec<(Country, Vec<SelectedSite>, SelectionStats)> = probes
        .into_iter()
        .map(|probe| {
            let mut replay_span = obs::trace::span(
                "pipeline.verdict_replay",
                obs::trace::key_str(probe.country.code()),
            );
            let mut selected = Vec::with_capacity(options.quota);
            let mut stats = SelectionStats::default();
            let mut ledger = CountryLedger::new(probe.country.code());
            let mut error_run = 0u64;
            for (outcome, trace) in probe.verdicts {
                if selected.len() >= options.quota {
                    break;
                }
                ledger.record_probe(&outcome, &trace);
                if outcome.is_ok() {
                    ledger.note_replacement_run(error_run);
                    error_run = 0;
                } else {
                    error_run += 1;
                }
                tally_probe(outcome, &mut selected, &mut stats);
            }
            ledger.note_replacement_run(error_run);
            stats.shortfall = (options.quota as u64).saturating_sub(stats.selected);
            replay_span.set_virtual_ms(ledger.virtual_ms);
            country_ledgers.push(ledger);
            (probe.country, selected, stats)
        })
        .collect();

    // ---- Phase 2: analyse selected sites as (country, chunk) units.
    let total_sites: usize = selections.iter().map(|(_, s, _)| s.len()).sum();
    let chunk = (total_sites / (threads * 4).max(1)).clamp(1, 32);
    let site_tasks: Vec<ProbeTask> = selections
        .iter()
        .enumerate()
        .flat_map(|(ci, (_, sites, _))| chunk_ranges(sites.len(), chunk).map(move |r| (ci, r)))
        .collect();

    struct ChunkOut {
        records: Vec<SiteRecord>,
        extremes: Vec<ExtremeExample>,
        mismatches: Vec<MismatchExample>,
        /// Hosts whose analysis panicked (contained by the unwind guard).
        poisoned: Vec<String>,
    }

    let kizuki_ref = &kizuki;
    let reader_ref = &reader;
    let selections_ref = &selections;
    let chunk_outputs = run_work_stealing(threads, &site_tasks, |_, task: &ProbeTask| {
        let (ci, range) = task;
        let (country, sites, _) = &selections_ref[*ci];
        let mut out = ChunkOut {
            records: Vec::with_capacity(range.len()),
            extremes: Vec::new(),
            mismatches: Vec::new(),
            poisoned: Vec::new(),
        };
        for site in &sites[range.clone()] {
            // Per-site span (not per-chunk: chunk sizes vary with thread
            // count, site counts don't). A panic unwinds through the
            // guard, so even poisoned sites record their span.
            let _site_span = obs::trace::span(
                "pipeline.analyze_site",
                obs::trace::key_str(&site.plan.host),
            );
            // Unwind guard: one site's panic poisons only that site.
            // Examples land in per-site scratch vecs so a partial capture
            // from a poisoned site can't leak into the output.
            let unit = catch_unwind(AssertUnwindSafe(|| {
                if let Some(chaos) = options.chaos_panic_host {
                    if chaos(&site.plan.host) {
                        panic!("chaos hook: injected analysis panic");
                    }
                }
                let mut extremes = Vec::new();
                let mut mismatches = Vec::new();
                let gap_reader = gaps_enabled.then_some(reader_ref);
                let record = process_site(
                    site,
                    *country,
                    kizuki_ref,
                    gap_reader,
                    &mut extremes,
                    &mut mismatches,
                );
                (record, extremes, mismatches)
            }));
            match unit {
                Ok((record, mut extremes, mut mismatches)) => {
                    out.records.push(record);
                    out.extremes.append(&mut extremes);
                    out.mismatches.append(&mut mismatches);
                }
                Err(_) => out.poisoned.push(site.plan.host.clone()),
            }
        }
        // Examples beyond the cap can never survive the ordered merge, so
        // don't carry them out of the chunk (first-N semantics preserved:
        // the merge takes examples in site order and truncates again).
        out.extremes.truncate(options.max_extreme_examples);
        out.mismatches.truncate(options.max_mismatch_examples);
        out
    });

    // Deterministic merge: chunks arrive in (country, site) order; fold
    // them into per-country results and apply the example caps exactly
    // where the sequential per-country loop applied them.
    let _fold_span = obs::trace::span("pipeline.ledger_fold", 0);
    let mut results: Vec<CountryResult> = selections
        .iter()
        .map(|(country, _, stats)| CountryResult {
            country: *country,
            records: Vec::new(),
            summary: to_summary(*country, stats),
            extremes: Vec::new(),
            mismatches: Vec::new(),
        })
        .collect();
    for ((ci, _), mut out) in site_tasks.iter().zip(chunk_outputs) {
        let ledger = &mut country_ledgers[*ci];
        ledger.poisoned_sites.append(&mut out.poisoned);
        // Gap counters fold from the records themselves during the
        // ordered merge, so — like every other ledger field — they are
        // independent of which worker analysed which chunk.
        for record in &out.records {
            if let Some(gaps) = &record.gaps {
                ledger.gap_pages += 1;
                ledger.gap_regions += u64::from(gaps.regions);
            }
        }
        let result = &mut results[*ci];
        result.records.append(&mut out.records);
        for e in out.extremes {
            if result.extremes.len() < options.max_extreme_examples {
                result.extremes.push(e);
            }
        }
        for m in out.mismatches {
            if result.mismatches.len() < options.max_mismatch_examples {
                result.mismatches.push(m);
            }
        }
    }

    // Deterministic order: study order, independent of scheduling.
    results.sort_by_key(|r| Country::STUDY.iter().position(|&c| c == r.country));
    country_ledgers.sort_by_key(|l| {
        Country::STUDY
            .iter()
            .position(|&c| c.code() == l.country_code)
    });

    let mut dataset = Dataset {
        seed: corpus.config().seed,
        quota: options.quota,
        ..Dataset::default()
    };
    for mut result in results {
        dataset.records.append(&mut result.records);
        dataset.crawl_summaries.push(result.summary);
        for e in result.extremes {
            if dataset.extreme_examples.len() < options.max_extreme_examples {
                dataset.extreme_examples.push(e);
            }
        }
        for m in result.mismatches {
            if dataset.mismatch_examples.len() < options.max_mismatch_examples {
                dataset.mismatch_examples.push(m);
            }
        }
    }
    let ledger = CrawlLedger::new(
        corpus.config().seed,
        *corpus.internet().fault_plan(),
        country_ledgers,
    );
    (dataset, ledger)
}

/// Plan the next wave of `(country, candidate-chunk)` probe units.
///
/// Each country still short of quota extends its probed prefix far enough
/// to plausibly fill the remainder (the paper's ~12% disqualification rate
/// plus slack); countries that already have enough qualifying verdicts —
/// or no candidates left — contribute nothing. An empty plan ends phase 1.
fn probe_wave_tasks(
    corpus: &Corpus,
    probes: &[CountryProbe],
    quota: usize,
    threads: usize,
) -> Vec<ProbeTask> {
    let mut tasks = Vec::new();
    let mut total = 0usize;
    let mut windows: Vec<(usize, Range<usize>)> = Vec::new();
    for (ci, probe) in probes.iter().enumerate() {
        if probe.qualified >= quota {
            continue;
        }
        let candidates = corpus.candidates(probe.country).len();
        let probed = probe.verdicts.len();
        if probed >= candidates {
            continue;
        }
        let need = quota - probe.qualified;
        let window = probe_window(need).min(candidates - probed);
        windows.push((ci, probed..probed + window));
        total += window;
    }
    // Chunk the windows so every worker gets several units to steal.
    let chunk = (total / (threads * 4).max(1)).clamp(4, 64);
    for (ci, window) in windows {
        for range in chunk_ranges(window.len(), chunk) {
            tasks.push((ci, window.start + range.start..window.start + range.end));
        }
    }
    tasks
}

/// The probe window a country still short of quota extends its probed
/// prefix by: the outstanding need inflated by the expected ~12%
/// disqualification rate, plus slack so small quotas converge in one
/// wave. Shared with the distributed coordinator so its wave planning
/// probes exactly the same candidate prefix as the in-process pipeline.
pub(crate) fn probe_window(need: usize) -> usize {
    need + need / 7 + 8
}

/// Split `0..len` into consecutive ranges of at most `chunk`.
pub(crate) fn chunk_ranges(len: usize, chunk: usize) -> impl Iterator<Item = Range<usize>> {
    let chunk = chunk.max(1);
    (0..len.div_ceil(chunk)).map(move |i| (i * chunk)..((i + 1) * chunk).min(len))
}

pub(crate) fn to_summary(country: Country, stats: &SelectionStats) -> CountryCrawlSummary {
    CountryCrawlSummary {
        country_code: country.code().to_string(),
        attempted: stats.attempted,
        selected: stats.selected,
        rejected_threshold: stats.rejected_threshold,
        failed_fetch: stats.failed_fetch,
        restricted: stats.restricted,
    }
}

/// Analyse one selected site: classify every accessibility element, audit,
/// and rescore. Example capture is uncapped here — chunks are merged in
/// site order and the caller truncates to the configured caps, which
/// reproduces the sequential "first N qualifying" capture exactly.
///
/// `gap_reader` is `Some` only on gap-enabled runs: the page's region
/// histograms are then classified into a translation-gap summary, with
/// the reader deciding which flagged regions a screen reader would
/// mispronounce versus skip.
///
/// `pub(crate)`: distributed workers ([`crate::dist`]) run it per
/// qualifying candidate to ship a finished [`SiteRecord`] (plus example
/// captures) back to the coordinator.
pub(crate) fn process_site(
    site: &SelectedSite,
    country: Country,
    kizuki: &Kizuki,
    gap_reader: Option<&ScreenReader>,
    extremes: &mut Vec<ExtremeExample>,
    mismatches: &mut Vec<MismatchExample>,
) -> SiteRecord {
    let native = country.target_language();
    let extract = &site.visit.extract;

    let mut elements = Vec::with_capacity(extract.elements.len());
    let mut mismatch_done = false;
    for element in &extract.elements {
        let state = if element.is_missing() {
            TextState::Missing
        } else if element.is_empty_text() {
            TextState::Empty
        } else {
            let text = element.content().expect("non-empty");
            let discard = classify(text);
            let label = classify_label(text, native);
            // Single fused pass; the old code walked the text once for
            // chars and again for words.
            let (chars, words) = char_word_counts(text);
            let (chars, words) = (chars as u32, words as u32);
            if chars > 1_000 {
                extremes.push(ExtremeExample {
                    host: site.plan.host.clone(),
                    country,
                    kind: element.kind,
                    chars,
                    words,
                    preview: text.chars().take(120).collect(),
                });
            }
            if !mismatch_done
                && element.kind == ElementKind::ImageAlt
                && discard.is_none()
                && label == LabelLanguage::English
                && site.visible_native_pct >= 90.0
            {
                mismatch_done = true;
                mismatches.push(MismatchExample {
                    host: site.plan.host.clone(),
                    country,
                    visible_native_pct: site.visible_native_pct,
                    alt_preview: text.chars().take(120).collect(),
                });
            }
            TextState::Present {
                chars,
                words,
                discard,
                label,
            }
        };
        elements.push(ElementRecord {
            kind: element.kind,
            state,
        });
    }

    let base = audit_page(extract);
    let kizuki_report = kizuki.evaluate(extract, &base);
    let gaps = gap_reader.and_then(|reader| {
        let report = gap_report(extract);
        if report.is_clean() {
            return None;
        }
        let speech = reader.gap_speech(&report, page_language(extract));
        let count = |kind: GapKind| report.regions.iter().filter(|g| g.kind == kind).count() as u32;
        Some(SiteGaps {
            regions: report.regions.len() as u32,
            chrome: count(GapKind::UntranslatedChrome),
            lang_attr: count(GapKind::LangAttrMismatch),
            fallback: count(GapKind::FallbackText),
            foreign_chars: report.foreign_chars as u64,
            mispronounced: speech.mispronounced,
            skipped: speech.skipped,
        })
    });
    SiteRecord {
        host: site.plan.host.clone(),
        country,
        rank: site.plan.rank,
        visible_native_pct: site.visible_native_pct,
        visible_english_pct: site.visible_english_pct,
        declared_lang: extract.declared_lang.clone(),
        elements,
        base_score: base.score,
        kizuki_score: kizuki_report.new_score,
        kizuki_eligible: Kizuki::figure6_eligible(&base),
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_webgen::CorpusConfig;

    fn tiny_dataset() -> Dataset {
        let corpus = Corpus::build(CorpusConfig::small(11, 25));
        build_dataset(
            &corpus,
            PipelineOptions {
                quota: 25,
                ..PipelineOptions::default()
            },
        )
    }

    #[test]
    fn dataset_covers_all_countries_at_quota() {
        let ds = tiny_dataset();
        assert_eq!(ds.countries().len(), 12);
        for country in Country::STUDY {
            let n = ds.in_country(country).count();
            assert_eq!(n, 25, "{country:?}");
        }
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.crawl_summaries.len(), 12);
    }

    #[test]
    fn records_have_scores_and_elements() {
        let ds = tiny_dataset();
        for record in &ds.records {
            assert!(
                (0.0..=100.0).contains(&record.base_score),
                "{}",
                record.host
            );
            assert!((0.0..=100.0).contains(&record.kizuki_score));
            assert!(record.kizuki_score <= record.base_score + 1e-9);
            assert!(record.visible_native_pct >= 50.0);
            assert!(!record.elements.is_empty());
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.host, rb.host);
            assert_eq!(ra.base_score, rb.base_score);
            assert_eq!(ra.kizuki_score, rb.kizuki_score);
            assert_eq!(ra.elements, rb.elements);
        }
    }

    #[test]
    fn pipeline_output_independent_of_thread_count() {
        let corpus = Corpus::build(CorpusConfig::small(17, 12));
        let run = |threads: usize| {
            build_dataset(
                &corpus,
                PipelineOptions {
                    quota: 12,
                    threads,
                    ..PipelineOptions::default()
                },
            )
            .to_json()
            .expect("serialize")
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(0)); // 0 = one worker per core
    }

    #[test]
    fn parallel_selection_matches_sequential_walk() {
        use crate::selection::select_websites;
        let corpus = Corpus::build(CorpusConfig::small(29, 18));
        let ds = build_dataset(
            &corpus,
            PipelineOptions {
                quota: 18,
                ..PipelineOptions::default()
            },
        );
        for country in Country::STUDY {
            let (sites, stats) = select_websites(&corpus, country, 18, BrowserConfig::default());
            let summary = ds
                .crawl_summaries
                .iter()
                .find(|s| s.country_code == country.code())
                .expect("summary");
            assert_eq!(summary.attempted, stats.attempted, "{country:?}");
            assert_eq!(summary.selected, stats.selected, "{country:?}");
            assert_eq!(
                summary.rejected_threshold, stats.rejected_threshold,
                "{country:?}"
            );
            let hosts: Vec<&str> = ds.in_country(country).map(|r| r.host.as_str()).collect();
            let expected: Vec<&str> = sites.iter().map(|s| s.plan.host.as_str()).collect();
            assert_eq!(hosts, expected, "{country:?}");
        }
    }

    #[test]
    fn mismatch_examples_are_native_sites_with_english_alts() {
        let ds = tiny_dataset();
        for m in &ds.mismatch_examples {
            assert!(m.visible_native_pct >= 90.0);
            assert!(!m.alt_preview.is_empty());
        }
    }

    #[test]
    fn json_round_trip_of_real_dataset() {
        let ds = tiny_dataset();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.records[0].elements, ds.records[0].elements);
    }
}
