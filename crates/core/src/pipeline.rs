//! The end-to-end LangCrUX pipeline: corpus → selection → crawl → dataset.
//!
//! One call ([`build_dataset`]) reproduces the paper's Figure 1 flow:
//! country-by-country VPN-vantage crawls over CrUX-rank-ordered candidates,
//! the 50% native-content inclusion rule with next-candidate replacement,
//! accessibility-element extraction, filtering, label-language
//! classification, base audits and Kizuki rescoring. Countries are
//! processed on a worker pool (one thread per country, CPU-bound work per
//! the workspace guides); record order is deterministic.

use crate::dataset::{
    CountryCrawlSummary, Dataset, ElementRecord, ExtremeExample, MismatchExample, SiteRecord,
    TextState,
};
use crate::selection::{select_websites, SelectedSite, SelectionStats};
use langcrux_audit::audit_page;
use langcrux_crawl::{char_len, word_count, BrowserConfig};
use langcrux_filter::classify;
use langcrux_kizuki::Kizuki;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Country;
use langcrux_langid::{classify_label, LabelLanguage};
use langcrux_webgen::Corpus;

/// Pipeline options.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Sites per country to select (the paper: 10,000).
    pub quota: usize,
    pub browser: BrowserConfig,
    /// Cap on captured extreme examples (Table 4).
    pub max_extreme_examples: usize,
    /// Cap on captured mismatch examples (Table 5).
    pub max_mismatch_examples: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            quota: 1_000,
            browser: BrowserConfig::default(),
            max_extreme_examples: 40,
            max_mismatch_examples: 24,
        }
    }
}

struct CountryResult {
    country: Country,
    records: Vec<SiteRecord>,
    summary: CountryCrawlSummary,
    extremes: Vec<ExtremeExample>,
    mismatches: Vec<MismatchExample>,
}

/// Build the dataset from a corpus.
pub fn build_dataset(corpus: &Corpus, options: PipelineOptions) -> Dataset {
    let countries: Vec<Country> = corpus.countries().collect();
    let mut results: Vec<CountryResult> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = countries
            .iter()
            .map(|&country| {
                scope.spawn(move |_| process_country(corpus, country, options))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("country worker panicked"))
            .collect()
    })
    .expect("pipeline scope");

    // Deterministic order: study order, independent of thread completion.
    results.sort_by_key(|r| Country::STUDY.iter().position(|&c| c == r.country));

    let mut dataset = Dataset {
        seed: corpus.config().seed,
        quota: options.quota,
        ..Dataset::default()
    };
    for mut result in results {
        dataset.records.append(&mut result.records);
        dataset.crawl_summaries.push(result.summary);
        for e in result.extremes {
            if dataset.extreme_examples.len() < options.max_extreme_examples {
                dataset.extreme_examples.push(e);
            }
        }
        for m in result.mismatches {
            if dataset.mismatch_examples.len() < options.max_mismatch_examples {
                dataset.mismatch_examples.push(m);
            }
        }
    }
    dataset
}

fn process_country(corpus: &Corpus, country: Country, options: PipelineOptions) -> CountryResult {
    let (sites, stats) = select_websites(corpus, country, options.quota, options.browser);
    let mut records = Vec::with_capacity(sites.len());
    let mut extremes = Vec::new();
    let mut mismatches = Vec::new();
    for site in &sites {
        records.push(process_site(
            site,
            country,
            &mut extremes,
            &mut mismatches,
            options,
        ));
    }
    CountryResult {
        country,
        records,
        summary: to_summary(country, &stats),
        extremes,
        mismatches,
    }
}

fn to_summary(country: Country, stats: &SelectionStats) -> CountryCrawlSummary {
    CountryCrawlSummary {
        country_code: country.code().to_string(),
        attempted: stats.attempted,
        selected: stats.selected,
        rejected_threshold: stats.rejected_threshold,
        failed_fetch: stats.failed_fetch,
        restricted: stats.restricted,
    }
}

fn process_site(
    site: &SelectedSite,
    country: Country,
    extremes: &mut Vec<ExtremeExample>,
    mismatches: &mut Vec<MismatchExample>,
    options: PipelineOptions,
) -> SiteRecord {
    let native = country.target_language();
    let extract = &site.visit.extract;

    let mut elements = Vec::with_capacity(extract.elements.len());
    let mut mismatch_done = false;
    for element in &extract.elements {
        let state = if element.is_missing() {
            TextState::Missing
        } else if element.is_empty_text() {
            TextState::Empty
        } else {
            let text = element.content().expect("non-empty");
            let discard = classify(text);
            let label = classify_label(text, native);
            let chars = char_len(text) as u32;
            let words = word_count(text) as u32;
            if chars > 1_000 && extremes.len() < options.max_extreme_examples {
                extremes.push(ExtremeExample {
                    host: site.plan.host.clone(),
                    country,
                    kind: element.kind,
                    chars,
                    words,
                    preview: text.chars().take(120).collect(),
                });
            }
            if !mismatch_done
                && element.kind == ElementKind::ImageAlt
                && discard.is_none()
                && label == LabelLanguage::English
                && site.visible_native_pct >= 90.0
                && mismatches.len() < options.max_mismatch_examples
            {
                mismatch_done = true;
                mismatches.push(MismatchExample {
                    host: site.plan.host.clone(),
                    country,
                    visible_native_pct: site.visible_native_pct,
                    alt_preview: text.chars().take(120).collect(),
                });
            }
            TextState::Present {
                chars,
                words,
                discard,
                label,
            }
        };
        elements.push(ElementRecord {
            kind: element.kind,
            state,
        });
    }

    let base = audit_page(extract);
    let kizuki = Kizuki::standard().evaluate(extract, &base);
    SiteRecord {
        host: site.plan.host.clone(),
        country,
        rank: site.plan.rank,
        visible_native_pct: site.visible_native_pct,
        visible_english_pct: site.visible_english_pct,
        declared_lang: extract.declared_lang.clone(),
        elements,
        base_score: base.score,
        kizuki_score: kizuki.new_score,
        kizuki_eligible: Kizuki::figure6_eligible(&base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_webgen::CorpusConfig;

    fn tiny_dataset() -> Dataset {
        let corpus = Corpus::build(CorpusConfig::small(11, 25));
        build_dataset(
            &corpus,
            PipelineOptions {
                quota: 25,
                ..PipelineOptions::default()
            },
        )
    }

    #[test]
    fn dataset_covers_all_countries_at_quota() {
        let ds = tiny_dataset();
        assert_eq!(ds.countries().len(), 12);
        for country in Country::STUDY {
            let n = ds.in_country(country).count();
            assert_eq!(n, 25, "{country:?}");
        }
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.crawl_summaries.len(), 12);
    }

    #[test]
    fn records_have_scores_and_elements() {
        let ds = tiny_dataset();
        for record in &ds.records {
            assert!((0.0..=100.0).contains(&record.base_score), "{}", record.host);
            assert!((0.0..=100.0).contains(&record.kizuki_score));
            assert!(record.kizuki_score <= record.base_score + 1e-9);
            assert!(record.visible_native_pct >= 50.0);
            assert!(!record.elements.is_empty());
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.host, rb.host);
            assert_eq!(ra.base_score, rb.base_score);
            assert_eq!(ra.kizuki_score, rb.kizuki_score);
            assert_eq!(ra.elements, rb.elements);
        }
    }

    #[test]
    fn mismatch_examples_are_native_sites_with_english_alts() {
        let ds = tiny_dataset();
        for m in &ds.mismatch_examples {
            assert!(m.visible_native_pct >= 90.0);
            assert!(!m.alt_preview.is_empty());
        }
    }

    #[test]
    fn json_round_trip_of_real_dataset() {
        let ds = tiny_dataset();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.records[0].elements, ds.records[0].elements);
    }
}
