//! Statistics utilities.
//!
//! Everything Table 2 and Figures 5–7 need: summary statistics
//! (median/mean/σ/min/max), empirical CDFs, histograms, and a 2-D
//! count grid for the rank heatmap. Implementations are deliberately
//! plain — sorting-based medians, two-pass variance — because the inputs
//! are at most a few hundred thousand points.

use serde::{Deserialize, Serialize};

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub median: f64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// An empty summary (all-zero) for empty samples.
    pub const EMPTY: Summary = Summary {
        count: 0,
        median: 0.0,
        mean: 0.0,
        std_dev: 0.0,
        min: 0.0,
        max: 0.0,
    };

    /// Compute over a sample (order irrelevant). Non-finite values are a
    /// caller bug and will poison the result; inputs come from counters.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::EMPTY;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let variance = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            median: median_of_sorted(&sorted),
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
        }
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Percentile (0–100) by linear interpolation on the sorted sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Pearson correlation coefficient of paired samples; `None` when either
/// side is constant or the samples are shorter than 2.
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = pairs.iter().map(|(x, _)| x).sum::<f64>() / nf;
    let mean_y = pairs.iter().map(|(_, y)| y).sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in pairs {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// An empirical CDF over a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    pub fn of(values: &[f64]) -> Cdf {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted }
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// P(X ≤ x), in [0, 1].
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evaluate at a grid of points (for plotting / report tables).
    pub fn series(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.at(x))).collect()
    }
}

/// A fixed-edge 1-D histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin edges, ascending; bin `i` covers `[edges[i], edges[i+1])`, and
    /// the last bin is closed on the right.
    pub edges: Vec<f64>,
    pub counts: Vec<u64>,
}

impl Histogram {
    pub fn new(edges: Vec<f64>) -> Histogram {
        assert!(edges.len() >= 2, "need at least one bin");
        let bins = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; bins],
        }
    }

    /// Uniform bins over [lo, hi].
    pub fn uniform(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo);
        let width = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + width * i as f64).collect();
        Histogram::new(edges)
    }

    /// Add one observation; out-of-range values clamp to the edge bins.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let idx = match self.edges.partition_point(|e| *e <= value) {
            0 => 0,
            i if i > bins => bins - 1,
            i => i - 1,
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Share of observations at or above `threshold` (bin-aligned).
    pub fn share_at_or_above(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if self.edges[i] >= threshold {
                acc += c;
            }
        }
        acc as f64 / total as f64
    }
}

/// A (row × column) count grid: Figure 7's rank-bucket × country heatmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountGrid {
    pub rows: Vec<String>,
    pub cols: Vec<String>,
    counts: Vec<u64>,
}

impl CountGrid {
    pub fn new(rows: Vec<String>, cols: Vec<String>) -> CountGrid {
        let counts = vec![0; rows.len() * cols.len()];
        CountGrid { rows, cols, counts }
    }

    fn index(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows.len() && col < self.cols.len());
        row * self.cols.len() + col
    }

    pub fn add(&mut self, row: usize, col: usize, n: u64) {
        let i = self.index(row, col);
        self.counts[i] += n;
    }

    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.counts[self.index(row, col)]
    }

    pub fn col_total(&self, col: usize) -> u64 {
        (0..self.rows.len()).map(|r| self.get(r, col)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.std_dev - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_even_count_median() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of(&[]), Summary::EMPTY);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn pearson_correlation() {
        // Perfect positive and negative correlation.
        let up: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((pearson(&up).unwrap() - 1.0).abs() < 1e-12);
        let down: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert!((pearson(&down).unwrap() + 1.0).abs() < 1e-12);
        // Constant side -> None.
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0)).collect();
        assert_eq!(pearson(&flat), None);
        assert_eq!(pearson(&[]), None);
        assert_eq!(pearson(&[(1.0, 2.0)]), None);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let cdf = Cdf::of(&[1.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(1.0), 0.25);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(100.0), 1.0);
        let series = cdf.series(&[0.0, 1.0, 2.0, 3.0, 5.0]);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::uniform(0.0, 100.0, 10);
        h.add(-5.0); // clamps into first bin
        h.add(0.0);
        h.add(9.99);
        h.add(95.0);
        h.add(100.0); // clamps into last bin
        h.add(1000.0); // clamps into last bin
        assert_eq!(h.counts[0], 3);
        assert_eq!(h.counts[9], 3);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_share_above() {
        let mut h = Histogram::uniform(0.0, 100.0, 10);
        for v in [95.0, 92.0, 50.0, 10.0] {
            h.add(v);
        }
        assert!((h.share_at_or_above(90.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn count_grid() {
        let mut g = CountGrid::new(
            vec!["1k".into(), "5k".into()],
            vec!["bd".into(), "in".into()],
        );
        g.add(0, 0, 3);
        g.add(1, 0, 2);
        g.add(0, 1, 7);
        assert_eq!(g.get(0, 0), 3);
        assert_eq!(g.col_total(0), 5);
        assert_eq!(g.col_total(1), 7);
    }

    #[test]
    #[should_panic]
    fn count_grid_bounds_checked() {
        let g = CountGrid::new(vec!["a".into()], vec!["b".into()]);
        g.get(1, 0);
    }
}
