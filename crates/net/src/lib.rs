//! # langcrux-net
//!
//! The simulated internet substrate: URL addressing, country vantage points
//! and commercial-VPN modelling, deterministic fault injection, and a
//! geo-aware host registry that serves localized vs. global page variants.
//!
//! This crate replaces the paper's live-web + VPN infrastructure with an
//! observable equivalent: sites serve their native-language experience only
//! to in-country egress (VPN or residential), exactly the property that
//! forced the paper to route crawls "through VPN servers physically hosted
//! in the corresponding country".
//!
//! * [`url`] — minimal absolute-URL parsing.
//! * [`geo`] — [`geo::Vantage`], VPN providers with partial coverage, and
//!   per-country provider selection.
//! * [`fault`] — smoltcp-style deterministic fault injection at the HTTP
//!   level (timeouts, resets, VPN detection, latency shaping).
//! * [`types`] — request/response/variant/error types.
//! * [`internet`] — the host registry and serving logic.

pub mod fault;
pub mod geo;
pub mod internet;
pub mod types;
pub mod url;

pub use fault::{ChaosKillPlan, FaultDice, FaultPlan};
pub use geo::{select_provider, vpn_vantage, Vantage, VpnProviderId};
pub use internet::{ContentServer, FetchMeta, HostResolver, Internet, NetMetrics, ResolvedHost};
pub use types::{ContentVariant, FetchError, Request, Response};
pub use url::Url;
