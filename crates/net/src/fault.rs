//! Deterministic fault injection.
//!
//! Real measurement crawls lose requests to timeouts, resets, geo-blocks
//! and VPN detection; the paper's methodology explicitly handles these by
//! replacing affected sites with "the next eligible candidate". The fault
//! plan makes those hazards reproducible: every roll is derived from
//! `(seed, host, attempt, purpose)`, so a crawl with the same seed loses
//! exactly the same requests — and the crawler's retry logic can be tested
//! against known outcomes.
//!
//! The shape follows the fault-injection options of smoltcp's examples
//! (drop chance, corruption chance, latency shaping) adapted to the HTTP
//! level.

use langcrux_lang::rng;
use rand::Rng;
use serde::Serialize;

/// Probabilities and latency model for the simulated network.
///
/// Fields beyond whole-request loss model *partial* damage — truncated and
/// garbled bodies, transient 5xx answers, persistently slow hosts — the
/// degradations a real measurement crawl sees far more often than clean
/// timeouts. Missing fields deserialize to their `Default` values (see the
/// hand-written `Deserialize` impl below), so a hand-written `--fault-plan`
/// JSON file only needs the knobs it changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Probability a request times out entirely.
    pub timeout_chance: f64,
    /// Probability the connection resets mid-transfer.
    pub reset_chance: f64,
    /// Probability a VPN-detecting site recognises the VPN *in addition to*
    /// the provider's own detectability factor.
    pub extra_vpn_detection: f64,
    /// Probability a request is answered with a transient 5xx instead of
    /// a body (retryable, like timeouts).
    pub server_error_chance: f64,
    /// Probability a served body is cut off mid-transfer (the response
    /// still arrives, but incomplete — the extractor sees partial HTML).
    pub truncate_chance: f64,
    /// Probability a served body has a span of characters garbled into
    /// U+FFFD replacement characters (mojibake after transport damage).
    pub garble_chance: f64,
    /// Fraction of hosts that are *persistently* slow — the property is
    /// derived from `(seed, host)` alone, so a slow host is slow on every
    /// attempt, from every vantage.
    pub slow_host_fraction: f64,
    /// Latency multiplier applied to slow hosts.
    pub slow_latency_multiplier: u32,
    /// Base round-trip latency in milliseconds.
    pub base_latency_ms: u32,
    /// Additional uniform jitter bound in milliseconds.
    pub jitter_ms: u32,
}

/// Field-by-field deserialization with `Default` fallbacks, so partial
/// plan files (`repro --fault-plan my-plan.json`) only name the knobs
/// they change.
impl serde::Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object", v))?;
        fn get<T: serde::Deserialize>(
            obj: &[(String, serde::Value)],
            name: &str,
            default: T,
        ) -> Result<T, serde::DeError> {
            match obj.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::from_value(v),
                None => Ok(default),
            }
        }
        let d = FaultPlan::default();
        Ok(FaultPlan {
            timeout_chance: get(obj, "timeout_chance", d.timeout_chance)?,
            reset_chance: get(obj, "reset_chance", d.reset_chance)?,
            extra_vpn_detection: get(obj, "extra_vpn_detection", d.extra_vpn_detection)?,
            server_error_chance: get(obj, "server_error_chance", d.server_error_chance)?,
            truncate_chance: get(obj, "truncate_chance", d.truncate_chance)?,
            garble_chance: get(obj, "garble_chance", d.garble_chance)?,
            slow_host_fraction: get(obj, "slow_host_fraction", d.slow_host_fraction)?,
            slow_latency_multiplier: get(
                obj,
                "slow_latency_multiplier",
                d.slow_latency_multiplier,
            )?,
            base_latency_ms: get(obj, "base_latency_ms", d.base_latency_ms)?,
            jitter_ms: get(obj, "jitter_ms", d.jitter_ms)?,
        })
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            timeout_chance: 0.01,
            reset_chance: 0.005,
            extra_vpn_detection: 0.0,
            server_error_chance: 0.004,
            truncate_chance: 0.004,
            garble_chance: 0.002,
            slow_host_fraction: 0.04,
            slow_latency_multiplier: 8,
            base_latency_ms: 80,
            jitter_ms: 120,
        }
    }
}

impl FaultPlan {
    /// A perfectly reliable network (unit tests that do not exercise
    /// failure paths).
    pub const RELIABLE: FaultPlan = FaultPlan {
        timeout_chance: 0.0,
        reset_chance: 0.0,
        extra_vpn_detection: 0.0,
        server_error_chance: 0.0,
        truncate_chance: 0.0,
        garble_chance: 0.0,
        slow_host_fraction: 0.0,
        slow_latency_multiplier: 1,
        base_latency_ms: 50,
        jitter_ms: 0,
    };

    /// A hostile network for failure-injection tests (≈15% whole-request
    /// loss, echoing the smoltcp examples' recommended starting point,
    /// plus heavy partial damage and a sizeable slow-host population).
    pub const HOSTILE: FaultPlan = FaultPlan {
        timeout_chance: 0.10,
        reset_chance: 0.05,
        extra_vpn_detection: 0.10,
        server_error_chance: 0.05,
        truncate_chance: 0.04,
        garble_chance: 0.02,
        slow_host_fraction: 0.15,
        slow_latency_multiplier: 12,
        base_latency_ms: 200,
        jitter_ms: 400,
    };
}

/// What kind of roll is being made — part of the derivation stream so that
/// independent decisions do not correlate.
#[derive(Debug, Clone, Copy)]
pub enum RollPurpose {
    Timeout,
    Reset,
    VpnDetection,
    Latency,
    GeoBlock,
    ServerError,
    Truncate,
    TruncatePoint,
    Garble,
    GarblePoint,
    SlowHost,
}

impl RollPurpose {
    fn stream(self) -> u64 {
        match self {
            RollPurpose::Timeout => 0x71,
            RollPurpose::Reset => 0x72,
            RollPurpose::VpnDetection => 0x73,
            RollPurpose::Latency => 0x74,
            RollPurpose::GeoBlock => 0x75,
            RollPurpose::ServerError => 0x76,
            RollPurpose::Truncate => 0x77,
            RollPurpose::TruncatePoint => 0x78,
            RollPurpose::Garble => 0x79,
            RollPurpose::GarblePoint => 0x7A,
            RollPurpose::SlowHost => 0x7B,
        }
    }
}

/// Deterministic roll source for one request.
#[derive(Debug, Clone, Copy)]
pub struct FaultDice {
    seed: u64,
    host_id: u64,
    attempt: u32,
}

impl FaultDice {
    pub fn new(seed: u64, host: &str, attempt: u32) -> Self {
        FaultDice {
            seed,
            host_id: rng::stream_id(host),
            attempt,
        }
    }

    /// Uniform `[0,1)` roll for a purpose.
    pub fn roll(&self, purpose: RollPurpose) -> f64 {
        let mut r = rng::rng_for(
            self.seed,
            &[self.host_id, u64::from(self.attempt), purpose.stream()],
        );
        r.gen()
    }

    /// Whether an event with probability `p` fires.
    pub fn fires(&self, purpose: RollPurpose, p: f64) -> bool {
        p > 0.0 && self.roll(purpose) < p
    }

    /// Whether this host belongs to the plan's persistently slow
    /// population. Derived from `(seed, host)` alone — deliberately *not*
    /// from the attempt — so the property is stable across retries and
    /// vantages (a congested or distant server, not a flaky link).
    pub fn host_is_slow(&self, plan: &FaultPlan) -> bool {
        if plan.slow_host_fraction <= 0.0 {
            return false;
        }
        let mut r = rng::rng_for(self.seed, &[self.host_id, RollPurpose::SlowHost.stream()]);
        r.gen::<f64>() < plan.slow_host_fraction
    }

    /// Latency sample for this request (slow hosts pay the multiplier).
    pub fn latency_ms(&self, plan: &FaultPlan) -> u32 {
        let sample = if plan.jitter_ms == 0 {
            plan.base_latency_ms
        } else {
            let mut r = rng::rng_for(
                self.seed,
                &[
                    self.host_id,
                    u64::from(self.attempt),
                    RollPurpose::Latency.stream(),
                ],
            );
            plan.base_latency_ms + r.gen_range(0..=plan.jitter_ms)
        };
        if self.host_is_slow(plan) {
            sample.saturating_mul(plan.slow_latency_multiplier.max(1))
        } else {
            sample
        }
    }

    /// Which 5xx a fired server-error roll answers with.
    pub fn server_error_code(&self) -> u16 {
        const CODES: [u16; 4] = [500, 502, 503, 504];
        let mut r = rng::rng_for(
            self.seed,
            &[
                self.host_id,
                u64::from(self.attempt),
                RollPurpose::ServerError.stream(),
                1,
            ],
        );
        CODES[(r.gen::<u64>() % CODES.len() as u64) as usize]
    }

    /// Byte offset at which a fired truncation cuts a body of `len` bytes
    /// (somewhere in the middle 15–85% — a header-only fragment or a
    /// nearly complete page are both less interesting to the extractor).
    /// Callers must still floor the offset to a char boundary.
    pub fn truncate_cut(&self, len: usize) -> usize {
        let mut r = rng::rng_for(
            self.seed,
            &[
                self.host_id,
                u64::from(self.attempt),
                RollPurpose::TruncatePoint.stream(),
            ],
        );
        let frac = 0.15 + 0.70 * r.gen::<f64>();
        (len as f64 * frac) as usize
    }

    /// `(start, span)` in bytes of a fired garble over a body of `len`
    /// bytes. Callers must floor both edges to char boundaries.
    pub fn garble_span(&self, len: usize) -> (usize, usize) {
        let mut r = rng::rng_for(
            self.seed,
            &[
                self.host_id,
                u64::from(self.attempt),
                RollPurpose::GarblePoint.stream(),
            ],
        );
        let start = (len as f64 * (0.9 * r.gen::<f64>())) as usize;
        let span = 16 + (r.gen::<u64>() % 49) as usize; // 16..=64 bytes
        (start, span)
    }
}

/// Derivation stream tag for worker-kill chaos (disjoint from the
/// request-level [`RollPurpose`] streams and from the crawl backoff
/// stream `0xB0FF`).
const KILL_STREAM: u64 = 0xD157;

/// The distributed build's worker-kill chaos plan (`repro
/// --chaos-kill-workers`).
///
/// Like every other hazard in this module, kills are *scheduled*, not
/// random at runtime: how many times the worker executing a given work
/// unit is SIGKILLed is a pure function of `(seed, unit key)`, so a
/// chaos run is exactly reproducible and — because the schedule never
/// exceeds the coordinator's reassignment budget — provably recoverable.
/// The unit key is the coordinator's stable `"<country>:<start>:<end>"`
/// string, which survives coordinator restarts and is independent of
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChaosKillPlan {
    /// Derivation seed (defaults to the corpus seed).
    pub seed: u64,
    /// Chance that a unit's schedule contains at least one kill.
    pub kill_chance: f64,
    /// Most kills any single unit's schedule may contain. Keep strictly
    /// below the coordinator's `max_reassignments` so every scheduled
    /// kill is eventually recovered and the output bytes stay identical
    /// to the no-failure run.
    pub max_kills_per_unit: u32,
}

impl ChaosKillPlan {
    /// The default chaos schedule: roughly half the units lose their
    /// worker at least once, some twice.
    pub fn standard(seed: u64) -> Self {
        ChaosKillPlan {
            seed,
            kill_chance: 0.5,
            max_kills_per_unit: 2,
        }
    }

    /// How many times the worker executing `unit_key` is killed before
    /// the unit is allowed to complete. Pure in `(seed, unit_key)`.
    pub fn kills_for_unit(&self, unit_key: &str) -> u32 {
        if self.kill_chance <= 0.0 || self.max_kills_per_unit == 0 {
            return 0;
        }
        let mut r = rng::rng_for(self.seed, &[rng::stream_id(unit_key), KILL_STREAM]);
        if r.gen::<f64>() >= self.kill_chance {
            return 0;
        }
        1 + (r.gen::<u64>() % u64::from(self.max_kills_per_unit)) as u32
    }

    /// Whether dispatch attempt `attempt` (0-based) of `unit_key` should
    /// be killed mid-unit. The first `kills_for_unit` attempts die; every
    /// later attempt runs to completion.
    pub fn should_kill(&self, unit_key: &str, attempt: u32) -> bool {
        attempt < self.kills_for_unit(unit_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let a = FaultDice::new(1, "example.bd", 0);
        let b = FaultDice::new(1, "example.bd", 0);
        assert_eq!(a.roll(RollPurpose::Timeout), b.roll(RollPurpose::Timeout));
    }

    #[test]
    fn attempts_decorrelate() {
        let a = FaultDice::new(1, "example.bd", 0);
        let b = FaultDice::new(1, "example.bd", 1);
        assert_ne!(a.roll(RollPurpose::Timeout), b.roll(RollPurpose::Timeout));
    }

    #[test]
    fn purposes_decorrelate() {
        let d = FaultDice::new(1, "example.bd", 0);
        assert_ne!(d.roll(RollPurpose::Timeout), d.roll(RollPurpose::Reset));
    }

    #[test]
    fn zero_probability_never_fires() {
        for i in 0..100 {
            let d = FaultDice::new(9, "host", i);
            assert!(!d.fires(RollPurpose::Timeout, 0.0));
        }
    }

    #[test]
    fn one_probability_always_fires() {
        for i in 0..100 {
            let d = FaultDice::new(9, "host", i);
            assert!(d.fires(RollPurpose::Reset, 1.0));
        }
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let mut hits = 0;
        let n = 5000;
        for i in 0..n {
            let d = FaultDice::new(42, &format!("h{i}"), 0);
            if d.fires(RollPurpose::Timeout, 0.10) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((0.07..0.13).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn latency_within_bounds() {
        // Zero slow-host fraction isolates the jitter window.
        let plan = FaultPlan {
            slow_host_fraction: 0.0,
            ..FaultPlan::default()
        };
        for i in 0..200 {
            let d = FaultDice::new(3, "x", i);
            let l = d.latency_ms(&plan);
            assert!(l >= plan.base_latency_ms);
            assert!(l <= plan.base_latency_ms + plan.jitter_ms);
        }
        let d = FaultDice::new(3, "x", 0);
        assert_eq!(d.latency_ms(&FaultPlan::RELIABLE), 50);
    }

    #[test]
    fn slow_hosts_are_a_stable_per_host_property() {
        let plan = FaultPlan::HOSTILE;
        let mut slow = 0;
        for i in 0..2000 {
            let host = format!("s{i}.bd");
            let first = FaultDice::new(77, &host, 0).host_is_slow(&plan);
            // Stable across attempts — the roll must not consume attempt.
            for attempt in 1..4 {
                assert_eq!(
                    first,
                    FaultDice::new(77, &host, attempt).host_is_slow(&plan)
                );
            }
            if first {
                slow += 1;
            }
        }
        let rate = f64::from(slow) / 2000.0;
        assert!((0.10..0.20).contains(&rate), "slow rate = {rate}");
        // And the multiplier actually shows up in the latency sample.
        let slow_host = (0..200)
            .map(|i| format!("s{i}.bd"))
            .find(|h| FaultDice::new(77, h, 0).host_is_slow(&plan))
            .expect("a slow host in 200 draws");
        let d = FaultDice::new(77, &slow_host, 0);
        assert!(d.latency_ms(&plan) >= plan.base_latency_ms * plan.slow_latency_multiplier);
    }

    #[test]
    fn server_error_codes_are_5xx() {
        for i in 0..100 {
            let code = FaultDice::new(13, &format!("e{i}"), 0).server_error_code();
            assert!((500..=504).contains(&code), "{code}");
        }
    }

    #[test]
    fn truncate_cut_stays_in_the_middle() {
        for i in 0..100 {
            let cut = FaultDice::new(13, &format!("t{i}"), 0).truncate_cut(10_000);
            assert!((1_500..8_500).contains(&cut), "{cut}");
        }
    }

    #[test]
    fn garble_span_is_bounded() {
        for i in 0..100 {
            let (start, span) = FaultDice::new(13, &format!("g{i}"), 0).garble_span(10_000);
            assert!(start < 9_000, "{start}");
            assert!((16..=64).contains(&span), "{span}");
        }
    }

    #[test]
    fn kill_schedule_is_pure_and_bounded() {
        let plan = ChaosKillPlan::standard(41);
        let mut killed_units = 0u32;
        for i in 0..400 {
            let key = format!("bd:{}:{}", i * 64, (i + 1) * 64);
            let kills = plan.kills_for_unit(&key);
            assert_eq!(kills, plan.kills_for_unit(&key), "schedule must be pure");
            assert!(kills <= plan.max_kills_per_unit);
            if kills > 0 {
                killed_units += 1;
            }
            // The first `kills` attempts die, then the unit completes.
            for attempt in 0..kills {
                assert!(plan.should_kill(&key, attempt));
            }
            assert!(!plan.should_kill(&key, kills));
        }
        // Roughly kill_chance of units are scheduled to die at least once.
        let rate = f64::from(killed_units) / 400.0;
        assert!((0.35..0.65).contains(&rate), "kill rate = {rate}");
        // Chaos off: no unit ever dies.
        let off = ChaosKillPlan {
            kill_chance: 0.0,
            ..plan
        };
        assert_eq!(off.kills_for_unit("bd:0:64"), 0);
    }

    #[test]
    fn partial_plan_json_deserializes_with_defaults() {
        let plan: FaultPlan =
            serde_json::from_str(r#"{"timeout_chance":0.5,"garble_chance":0.25}"#).unwrap();
        assert_eq!(plan.timeout_chance, 0.5);
        assert_eq!(plan.garble_chance, 0.25);
        assert_eq!(plan.base_latency_ms, FaultPlan::default().base_latency_ms);
        let round: FaultPlan =
            serde_json::from_str(&serde_json::to_string(&FaultPlan::HOSTILE).unwrap()).unwrap();
        assert_eq!(round, FaultPlan::HOSTILE);
    }
}
