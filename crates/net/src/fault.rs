//! Deterministic fault injection.
//!
//! Real measurement crawls lose requests to timeouts, resets, geo-blocks
//! and VPN detection; the paper's methodology explicitly handles these by
//! replacing affected sites with "the next eligible candidate". The fault
//! plan makes those hazards reproducible: every roll is derived from
//! `(seed, host, attempt, purpose)`, so a crawl with the same seed loses
//! exactly the same requests — and the crawler's retry logic can be tested
//! against known outcomes.
//!
//! The shape follows the fault-injection options of smoltcp's examples
//! (drop chance, corruption chance, latency shaping) adapted to the HTTP
//! level.

use langcrux_lang::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probabilities and latency model for the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a request times out entirely.
    pub timeout_chance: f64,
    /// Probability the connection resets mid-transfer.
    pub reset_chance: f64,
    /// Probability a VPN-detecting site recognises the VPN *in addition to*
    /// the provider's own detectability factor.
    pub extra_vpn_detection: f64,
    /// Base round-trip latency in milliseconds.
    pub base_latency_ms: u32,
    /// Additional uniform jitter bound in milliseconds.
    pub jitter_ms: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            timeout_chance: 0.01,
            reset_chance: 0.005,
            extra_vpn_detection: 0.0,
            base_latency_ms: 80,
            jitter_ms: 120,
        }
    }
}

impl FaultPlan {
    /// A perfectly reliable network (unit tests that do not exercise
    /// failure paths).
    pub const RELIABLE: FaultPlan = FaultPlan {
        timeout_chance: 0.0,
        reset_chance: 0.0,
        extra_vpn_detection: 0.0,
        base_latency_ms: 50,
        jitter_ms: 0,
    };

    /// A hostile network for failure-injection tests (≈15% loss, echoing
    /// the smoltcp examples' recommended starting point).
    pub const HOSTILE: FaultPlan = FaultPlan {
        timeout_chance: 0.10,
        reset_chance: 0.05,
        extra_vpn_detection: 0.10,
        base_latency_ms: 200,
        jitter_ms: 400,
    };
}

/// What kind of roll is being made — part of the derivation stream so that
/// independent decisions do not correlate.
#[derive(Debug, Clone, Copy)]
pub enum RollPurpose {
    Timeout,
    Reset,
    VpnDetection,
    Latency,
    GeoBlock,
}

impl RollPurpose {
    fn stream(self) -> u64 {
        match self {
            RollPurpose::Timeout => 0x71,
            RollPurpose::Reset => 0x72,
            RollPurpose::VpnDetection => 0x73,
            RollPurpose::Latency => 0x74,
            RollPurpose::GeoBlock => 0x75,
        }
    }
}

/// Deterministic roll source for one request.
#[derive(Debug, Clone, Copy)]
pub struct FaultDice {
    seed: u64,
    host_id: u64,
    attempt: u32,
}

impl FaultDice {
    pub fn new(seed: u64, host: &str, attempt: u32) -> Self {
        FaultDice {
            seed,
            host_id: rng::stream_id(host),
            attempt,
        }
    }

    /// Uniform `[0,1)` roll for a purpose.
    pub fn roll(&self, purpose: RollPurpose) -> f64 {
        let mut r = rng::rng_for(
            self.seed,
            &[self.host_id, u64::from(self.attempt), purpose.stream()],
        );
        r.gen()
    }

    /// Whether an event with probability `p` fires.
    pub fn fires(&self, purpose: RollPurpose, p: f64) -> bool {
        p > 0.0 && self.roll(purpose) < p
    }

    /// Latency sample for this request.
    pub fn latency_ms(&self, plan: &FaultPlan) -> u32 {
        if plan.jitter_ms == 0 {
            return plan.base_latency_ms;
        }
        let mut r = rng::rng_for(
            self.seed,
            &[
                self.host_id,
                u64::from(self.attempt),
                RollPurpose::Latency.stream(),
            ],
        );
        plan.base_latency_ms + r.gen_range(0..=plan.jitter_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let a = FaultDice::new(1, "example.bd", 0);
        let b = FaultDice::new(1, "example.bd", 0);
        assert_eq!(a.roll(RollPurpose::Timeout), b.roll(RollPurpose::Timeout));
    }

    #[test]
    fn attempts_decorrelate() {
        let a = FaultDice::new(1, "example.bd", 0);
        let b = FaultDice::new(1, "example.bd", 1);
        assert_ne!(a.roll(RollPurpose::Timeout), b.roll(RollPurpose::Timeout));
    }

    #[test]
    fn purposes_decorrelate() {
        let d = FaultDice::new(1, "example.bd", 0);
        assert_ne!(d.roll(RollPurpose::Timeout), d.roll(RollPurpose::Reset));
    }

    #[test]
    fn zero_probability_never_fires() {
        for i in 0..100 {
            let d = FaultDice::new(9, "host", i);
            assert!(!d.fires(RollPurpose::Timeout, 0.0));
        }
    }

    #[test]
    fn one_probability_always_fires() {
        for i in 0..100 {
            let d = FaultDice::new(9, "host", i);
            assert!(d.fires(RollPurpose::Reset, 1.0));
        }
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let mut hits = 0;
        let n = 5000;
        for i in 0..n {
            let d = FaultDice::new(42, &format!("h{i}"), 0);
            if d.fires(RollPurpose::Timeout, 0.10) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((0.07..0.13).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn latency_within_bounds() {
        let plan = FaultPlan::default();
        for i in 0..200 {
            let d = FaultDice::new(3, "x", i);
            let l = d.latency_ms(&plan);
            assert!(l >= plan.base_latency_ms);
            assert!(l <= plan.base_latency_ms + plan.jitter_ms);
        }
        let d = FaultDice::new(3, "x", 0);
        assert_eq!(d.latency_ms(&FaultPlan::RELIABLE), 50);
    }
}
