//! Vantage points and VPN providers.
//!
//! The paper routes all crawler traffic "through VPN servers physically
//! hosted in the corresponding country", choosing the provider per country
//! because "not all VPN providers have servers in every target country"
//! (§2, Data Collection). This module models that decision: vantage points
//! with an egress country, commercial-VPN-like providers with partial
//! coverage and a detectability factor, and the per-country provider
//! selection rule.

use langcrux_lang::Country;
use serde::{Deserialize, Serialize};

/// Where a request appears to originate from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vantage {
    /// A generic cloud datacenter IP with no national egress (the baseline
    /// the paper warns against: it receives global/English variants).
    Cloud,
    /// A VPN egress inside `country`, via the provider with the given
    /// detectability (scaled 0–100; commercial VPN ranges are detectable by
    /// some sites).
    Vpn {
        country: Country,
        provider: VpnProviderId,
    },
    /// A native residential connection in `country` (ground-truth vantage,
    /// used in tests to validate the VPN path).
    Residential(Country),
}

impl Vantage {
    /// The national egress of this vantage, if any.
    pub fn egress_country(&self) -> Option<Country> {
        match self {
            Vantage::Cloud => None,
            Vantage::Vpn { country, .. } => Some(*country),
            Vantage::Residential(c) => Some(*c),
        }
    }

    /// Whether the egress is a VPN (and thus potentially detectable).
    pub fn is_vpn(&self) -> bool {
        matches!(self, Vantage::Vpn { .. })
    }
}

/// Identifier of a modelled VPN provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VpnProviderId {
    /// Modeled after ProtonVPN: wide coverage, lower detectability.
    Aurora,
    /// Modeled after Hotspot Shield: complementary coverage, slightly more
    /// detectable address space.
    Meridian,
}

/// Static description of a provider's footprint.
#[derive(Debug, Clone)]
pub struct VpnProvider {
    pub id: VpnProviderId,
    pub name: &'static str,
    /// Countries with physical servers.
    pub endpoints: &'static [Country],
    /// Probability (0.0–1.0) that a VPN-detecting site recognises this
    /// provider's address space.
    pub detectability: f64,
}

/// The two modelled commercial providers. Coverage is chosen so that
/// *neither* provider covers all 12 study countries — forcing the
/// per-country selection logic the paper describes.
pub const PROVIDERS: &[VpnProvider] = &[
    VpnProvider {
        id: VpnProviderId::Aurora,
        name: "Aurora VPN",
        endpoints: &[
            Country::Bangladesh,
            Country::China,
            Country::Egypt,
            Country::Greece,
            Country::HongKong,
            Country::Israel,
            Country::India,
            Country::Japan,
            Country::SouthKorea,
            Country::Russia,
            Country::Thailand,
        ],
        detectability: 0.05,
    },
    VpnProvider {
        id: VpnProviderId::Meridian,
        name: "Meridian Shield",
        endpoints: &[
            Country::Algeria,
            Country::Egypt,
            Country::Greece,
            Country::India,
            Country::Japan,
            Country::Russia,
            Country::Thailand,
            Country::SriLanka,
            Country::Georgia,
            Country::Pakistan,
        ],
        detectability: 0.08,
    },
];

/// Select a provider for a country: the least detectable one with an
/// endpoint there (the paper's per-country choice for "reliable and
/// consistent access").
pub fn select_provider(country: Country) -> Option<&'static VpnProvider> {
    PROVIDERS
        .iter()
        .filter(|p| p.endpoints.contains(&country))
        .min_by(|a, b| a.detectability.total_cmp(&b.detectability))
}

/// Build the standard crawl vantage for a country, if any provider reaches
/// it.
pub fn vpn_vantage(country: Country) -> Option<Vantage> {
    select_provider(country).map(|p| Vantage::Vpn {
        country,
        provider: p.id,
    })
}

/// Provider lookup by id.
pub fn provider(id: VpnProviderId) -> &'static VpnProvider {
    PROVIDERS
        .iter()
        .find(|p| p.id == id)
        .expect("all provider ids are in PROVIDERS")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_study_country_is_reachable() {
        for c in Country::STUDY {
            assert!(
                select_provider(c).is_some(),
                "no VPN endpoint covers {:?}",
                c
            );
        }
    }

    #[test]
    fn no_single_provider_covers_everything() {
        for p in PROVIDERS {
            let covered = Country::STUDY
                .iter()
                .filter(|c| p.endpoints.contains(c))
                .count();
            assert!(covered < 12, "{} covers all study countries", p.name);
        }
    }

    #[test]
    fn selection_prefers_lower_detectability() {
        // Egypt is covered by both providers; Aurora is less detectable.
        let p = select_provider(Country::Egypt).unwrap();
        assert_eq!(p.id, VpnProviderId::Aurora);
        // Algeria is Meridian-only.
        let p = select_provider(Country::Algeria).unwrap();
        assert_eq!(p.id, VpnProviderId::Meridian);
    }

    #[test]
    fn vantage_properties() {
        let v = vpn_vantage(Country::Thailand).unwrap();
        assert_eq!(v.egress_country(), Some(Country::Thailand));
        assert!(v.is_vpn());
        assert_eq!(Vantage::Cloud.egress_country(), None);
        assert!(!Vantage::Residential(Country::Japan).is_vpn());
    }
}
