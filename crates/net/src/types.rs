//! Request/response types of the simulated HTTP layer.

use crate::geo::Vantage;
use crate::url::Url;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which variant of a site's content a response carries.
///
/// Geo-aware sites serve [`ContentVariant::Localized`] to national egress
/// and [`ContentVariant::Global`] (typically English-dominant) to everyone
/// else — the behaviour that makes the paper's VPN methodology necessary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentVariant {
    /// The in-country experience in the native language.
    Localized,
    /// The international/English-dominant variant.
    Global,
    /// A stripped "access restricted" page (geo-block or bot wall).
    Restricted,
}

/// A simulated HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    pub url: Url,
    pub vantage: Vantage,
    /// Retry ordinal, 0 for the first attempt. Participates in fault
    /// derivation so retries see fresh rolls.
    pub attempt: u32,
}

impl Request {
    pub fn new(url: Url, vantage: Vantage) -> Self {
        Request {
            url,
            vantage,
            attempt: 0,
        }
    }

    /// The same request with the next attempt ordinal.
    pub fn retry(&self) -> Request {
        Request {
            url: self.url.clone(),
            vantage: self.vantage,
            attempt: self.attempt + 1,
        }
    }
}

/// A successful response.
#[derive(Debug, Clone)]
pub struct Response {
    pub url: Url,
    pub status: u16,
    pub body: Bytes,
    pub variant: ContentVariant,
    pub latency_ms: u32,
}

impl Response {
    /// Body as UTF-8 (the simulated web always serves UTF-8).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("simulated bodies are UTF-8")
    }
}

/// Why a fetch failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchError {
    /// Hostname not in the simulated DNS.
    UnknownHost(String),
    /// The request timed out.
    Timeout,
    /// Connection reset mid-transfer.
    ConnectionReset,
    /// The origin answered with a transient 5xx (overload, bad gateway).
    ServerError(u16),
    /// The site refused this vantage outright (geo-block wall).
    GeoBlocked,
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::UnknownHost(h) => write!(f, "unknown host: {h}"),
            FetchError::Timeout => f.write_str("request timed out"),
            FetchError::ConnectionReset => f.write_str("connection reset"),
            FetchError::ServerError(code) => write!(f, "server error: {code}"),
            FetchError::GeoBlocked => f.write_str("geo-blocked"),
        }
    }
}

impl std::error::Error for FetchError {}

impl FetchError {
    /// Whether a retry at the same vantage can plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FetchError::Timeout | FetchError::ConnectionReset | FetchError::ServerError(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_increments_attempt() {
        let r = Request::new(Url::from_host("a.bd"), Vantage::Cloud);
        assert_eq!(r.attempt, 0);
        assert_eq!(r.retry().attempt, 1);
        assert_eq!(r.retry().retry().attempt, 2);
    }

    #[test]
    fn retryability() {
        assert!(FetchError::Timeout.is_retryable());
        assert!(FetchError::ConnectionReset.is_retryable());
        assert!(FetchError::ServerError(503).is_retryable());
        assert!(!FetchError::GeoBlocked.is_retryable());
        assert!(!FetchError::UnknownHost("x".into()).is_retryable());
    }

    #[test]
    fn response_text() {
        let r = Response {
            url: Url::from_host("a.bd"),
            status: 200,
            body: Bytes::from("<html>হ্যালো</html>"),
            variant: ContentVariant::Localized,
            latency_ms: 80,
        };
        assert!(r.text().contains("হ্যালো"));
    }

    #[test]
    fn error_display() {
        assert_eq!(FetchError::Timeout.to_string(), "request timed out");
        assert!(FetchError::UnknownHost("x.y".into())
            .to_string()
            .contains("x.y"));
    }
}
