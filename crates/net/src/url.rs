//! Minimal URL type.
//!
//! The corpus only needs `scheme://host/path` URLs; query strings are kept
//! verbatim inside `path`. Parsing is strict enough to reject the junk that
//! shows up in accessibility attributes (the filter crate has its own,
//! looser URL *detector* — this type is for addressing real requests).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    pub scheme: String,
    pub host: String,
    /// Always begins with `/`.
    pub path: String,
}

/// Why a URL failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UrlError {
    MissingScheme,
    UnsupportedScheme,
    EmptyHost,
    InvalidHost,
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            UrlError::MissingScheme => "missing '://' scheme separator",
            UrlError::UnsupportedScheme => "only http and https are supported",
            UrlError::EmptyHost => "empty host",
            UrlError::InvalidHost => "invalid character in host",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for UrlError {}

impl Url {
    /// Parse an absolute http(s) URL.
    pub fn parse(input: &str) -> Result<Url, UrlError> {
        let input = input.trim();
        let (scheme, rest) = input.split_once("://").ok_or(UrlError::MissingScheme)?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(UrlError::UnsupportedScheme);
        }
        let (host, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        if host.is_empty() {
            return Err(UrlError::EmptyHost);
        }
        if !host
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-'))
        {
            return Err(UrlError::InvalidHost);
        }
        Ok(Url {
            scheme,
            host: host.to_ascii_lowercase(),
            path: path.to_string(),
        })
    }

    /// Build a `https://host/` URL for a bare hostname.
    pub fn from_host(host: &str) -> Url {
        Url {
            scheme: "https".to_string(),
            host: host.to_ascii_lowercase(),
            path: "/".to_string(),
        }
    }

    /// The registrable domain heuristic: last two labels (three when the
    /// penultimate label is a common second-level registry like `gov`/`co`).
    pub fn registrable_domain(&self) -> String {
        let labels: Vec<&str> = self.host.split('.').collect();
        if labels.len() <= 2 {
            return self.host.clone();
        }
        let second_level = labels[labels.len() - 2];
        let take = if matches!(
            second_level,
            "gov" | "co" | "ac" | "or" | "com" | "edu" | "net"
        ) && labels[labels.len() - 1].len() == 2
        {
            3
        } else {
            2
        };
        labels[labels.len() - take.min(labels.len())..].join(".")
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_urls() {
        let u = Url::parse("https://news.example.bd/politics/article-1").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "news.example.bd");
        assert_eq!(u.path, "/politics/article-1");
        assert_eq!(u.to_string(), "https://news.example.bd/politics/article-1");
    }

    #[test]
    fn host_only_gets_root_path() {
        let u = Url::parse("http://example.th").unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn case_normalisation() {
        let u = Url::parse("HTTPS://Example.COM/Path").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "example.com");
        assert_eq!(u.path, "/Path");
    }

    #[test]
    fn rejects_bad_urls() {
        assert_eq!(Url::parse("example.com"), Err(UrlError::MissingScheme));
        assert_eq!(Url::parse("ftp://x.com"), Err(UrlError::UnsupportedScheme));
        assert_eq!(Url::parse("https:///path"), Err(UrlError::EmptyHost));
        assert_eq!(Url::parse("https://bad host/"), Err(UrlError::InvalidHost));
    }

    #[test]
    fn registrable_domain() {
        assert_eq!(
            Url::parse("https://www.news.example.bd/")
                .unwrap()
                .registrable_domain(),
            "example.bd"
        );
        assert_eq!(
            Url::parse("https://portal.gov.bd/x")
                .unwrap()
                .registrable_domain(),
            "portal.gov.bd"
        );
        assert_eq!(
            Url::parse("https://example.com/")
                .unwrap()
                .registrable_domain(),
            "example.com"
        );
    }

    #[test]
    fn from_host() {
        assert_eq!(Url::from_host("A.B.C").to_string(), "https://a.b.c/");
    }
}
