//! The simulated internet.
//!
//! [`Internet`] is a host registry plus the geo-serving and fault logic
//! that stands in for the live web:
//!
//! * **Localization** — a site hosted in country C serves its
//!   [`ContentVariant::Localized`] variant only when the request's egress
//!   country is C; other vantages get [`ContentVariant::Global`]. This is
//!   the observable behaviour that motivates the paper's VPN methodology.
//! * **VPN detection** — a fraction of sites inspect the client address
//!   space; when they recognise a VPN range they fall back to the global
//!   variant (the paper: "some websites may detect VPN use and return
//!   generic or restricted versions").
//! * **Faults** — timeouts / resets / geo-blocks per the deterministic
//!   [`FaultPlan`].
//!
//! `Internet` is `Send + Sync`; the crawler queries it from a worker pool.

use crate::fault::{FaultDice, FaultPlan, RollPurpose};
use crate::geo::{provider, Vantage};
use crate::types::{ContentVariant, FetchError, Request, Response};
use bytes::Bytes;
use langcrux_lang::Country;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A site's content provider: renders the page body for a variant.
///
/// Implemented by `langcrux-webgen`'s site generators; test code often uses
/// the blanket impl for closures.
pub trait ContentServer: Send + Sync {
    fn serve(&self, variant: ContentVariant, path: &str) -> String;

    /// Append the page body to a caller-owned buffer instead of
    /// allocating. Content servers on a hot path (webgen's corpus
    /// resolver) override this; the default delegates to [`serve`]
    /// (correct, but pays the allocation).
    ///
    /// [`serve`]: ContentServer::serve
    fn serve_into(&self, variant: ContentVariant, path: &str, out: &mut String) {
        out.push_str(&self.serve(variant, path));
    }
}

impl<F> ContentServer for F
where
    F: Fn(ContentVariant, &str) -> String + Send + Sync,
{
    fn serve(&self, variant: ContentVariant, path: &str) -> String {
        self(variant, path)
    }
}

/// Serving metadata for a lazily resolved host.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedHost {
    pub country: Country,
    /// Probability (0–1) that this site actively detects VPN ranges.
    pub vpn_detecting: f64,
    /// Probability that this site hard-blocks foreign vantages.
    pub geo_block: f64,
}

/// A lazy host registry: resolves hostnames (and serves their pages) on
/// demand instead of requiring every host to be materialised up front via
/// [`Internet::register`].
///
/// This is what lets `langcrux-webgen` shard its corpora: the resolver
/// derives a host's country from the name, builds (or revives) the
/// country shard, and renders pages from plans that may since have been
/// evicted from memory. Explicitly registered hosts always win over the
/// resolver, so tests can overlay fixtures on a lazy corpus.
pub trait HostResolver: Send + Sync {
    /// Serving metadata for `host`, or `None` if the name does not exist.
    fn resolve(&self, host: &str) -> Option<ResolvedHost>;

    /// Append the page body for a previously resolved host. Called only
    /// with hostnames `resolve` accepted (possibly much later — the
    /// backing state must be rebuildable).
    fn serve_into(&self, host: &str, variant: ContentVariant, path: &str, out: &mut String);

    /// Number of hosts this resolver can resolve (for capacity-style
    /// telemetry; needs no materialisation).
    fn host_count(&self) -> usize;
}

/// Per-host registration data.
struct HostEntry {
    country: Country,
    /// Probability (0–1) that this site actively detects VPN ranges.
    vpn_detecting: f64,
    /// Probability that this site hard-blocks foreign (non-national,
    /// non-VPN-accepted) vantages instead of serving the global variant.
    geo_block: f64,
    server: Box<dyn ContentServer>,
}

/// Counters describing what the network served. All counts are
/// monotonically increasing; snapshot with [`Internet::metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetMetrics {
    pub requests: u64,
    pub localized_responses: u64,
    pub global_responses: u64,
    pub restricted_responses: u64,
    pub timeouts: u64,
    pub resets: u64,
    pub server_errors: u64,
    pub geo_blocks: u64,
    pub unknown_hosts: u64,
    pub vpn_detections: u64,
    /// Bodies cut off mid-transfer (the truncated length is what counts
    /// toward `bytes_served`).
    pub truncated_bodies: u64,
    /// Bodies with a garbled (U+FFFD-replaced) span.
    pub garbled_bodies: u64,
    /// Successful responses from the plan's persistently slow hosts.
    pub slow_responses: u64,
    pub bytes_served: u64,
}

impl NetMetrics {
    /// Register the fault counters into the unified metrics registry
    /// (`langcrux_net_*` family — see `docs/observability.md`).
    pub fn encode_metrics(&self, enc: &mut langcrux_obs::Encoder) {
        enc.counter(
            "langcrux_net_requests_total",
            "Simulated fetches issued, including retries.",
            self.requests as f64,
        );
        const RESPONSES: &str = "Responses served, by content variant.";
        enc.counter_with(
            "langcrux_net_responses_total",
            RESPONSES,
            &[("variant", "localized")],
            self.localized_responses as f64,
        );
        enc.counter_with(
            "langcrux_net_responses_total",
            RESPONSES,
            &[("variant", "global")],
            self.global_responses as f64,
        );
        enc.counter_with(
            "langcrux_net_responses_total",
            RESPONSES,
            &[("variant", "restricted")],
            self.restricted_responses as f64,
        );
        const FAULTS: &str = "Injected faults, by kind.";
        for (kind, count) in [
            ("timeout", self.timeouts),
            ("reset", self.resets),
            ("server_error", self.server_errors),
            ("geo_block", self.geo_blocks),
            ("unknown_host", self.unknown_hosts),
            ("vpn_detection", self.vpn_detections),
        ] {
            enc.counter_with(
                "langcrux_net_faults_total",
                FAULTS,
                &[("kind", kind)],
                count as f64,
            );
        }
        const DAMAGE: &str = "Successful responses with damaged bodies, by kind.";
        enc.counter_with(
            "langcrux_net_damaged_bodies_total",
            DAMAGE,
            &[("kind", "truncated")],
            self.truncated_bodies as f64,
        );
        enc.counter_with(
            "langcrux_net_damaged_bodies_total",
            DAMAGE,
            &[("kind", "garbled")],
            self.garbled_bodies as f64,
        );
        enc.counter(
            "langcrux_net_slow_responses_total",
            "Successful responses from persistently slow hosts.",
            self.slow_responses as f64,
        );
        enc.counter(
            "langcrux_net_bytes_served_total",
            "Body bytes served across all responses.",
            self.bytes_served as f64,
        );
    }
}

/// The simulated internet.
pub struct Internet {
    seed: u64,
    plan: FaultPlan,
    hosts: HashMap<String, HostEntry>,
    /// Lazy registry consulted when `hosts` misses.
    resolver: Option<Box<dyn HostResolver>>,
    metrics: Arc<Mutex<NetMetrics>>,
}

impl Internet {
    /// An empty internet with the given workspace seed and fault plan.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        Internet {
            seed,
            plan,
            hosts: HashMap::new(),
            resolver: None,
            metrics: Arc::new(Mutex::new(NetMetrics::default())),
        }
    }

    /// Install the lazy host registry. Explicitly registered hosts take
    /// precedence on lookup.
    pub fn set_resolver(&mut self, resolver: Box<dyn HostResolver>) {
        self.resolver = Some(resolver);
    }

    /// Register a host. `vpn_detecting` and `geo_block` are per-site
    /// probabilities in `[0, 1]`.
    pub fn register(
        &mut self,
        host: &str,
        country: Country,
        vpn_detecting: f64,
        geo_block: f64,
        server: Box<dyn ContentServer>,
    ) {
        self.hosts.insert(
            host.to_ascii_lowercase(),
            HostEntry {
                country,
                vpn_detecting,
                geo_block,
                server,
            },
        );
    }

    /// Convenience registration with no VPN detection or geo-blocking.
    pub fn register_simple(
        &mut self,
        host: &str,
        country: Country,
        server: Box<dyn ContentServer>,
    ) {
        self.register(host, country, 0.0, 0.0, server);
    }

    /// Number of resolvable hosts (registered + lazy registry).
    pub fn host_count(&self) -> usize {
        match &self.resolver {
            None => self.hosts.len(),
            Some(resolver) => {
                // A host registered *over* a resolver entry (test fixtures
                // overlaying a lazy corpus) counts once.
                let overlap = self
                    .hosts
                    .keys()
                    .filter(|host| resolver.resolve(host).is_some())
                    .count();
                self.hosts.len() + resolver.host_count() - overlap
            }
        }
    }

    /// Whether a hostname resolves.
    pub fn knows(&self, host: &str) -> bool {
        let host = host.to_ascii_lowercase();
        self.hosts.contains_key(&host)
            || self
                .resolver
                .as_ref()
                .is_some_and(|r| r.resolve(&host).is_some())
    }

    /// *Registered* hosts for a country (unordered; lazily resolvable
    /// hosts are not enumerable by design — ask the corpus instead).
    pub fn hosts_in(&self, country: Country) -> Vec<&str> {
        self.hosts
            .iter()
            .filter(|(_, e)| e.country == country)
            .map(|(h, _)| h.as_str())
            .collect()
    }

    /// Snapshot of the traffic counters.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics.lock().clone()
    }

    /// The workspace seed the fault rolls derive from. Exposed so the
    /// crawl layer can derive its *own* deterministic decisions (backoff
    /// jitter) from the same root without holding a second seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault plan in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Virtual milliseconds one attempt against `host` costs — the same
    /// latency sample `fetch_into` reports on success, so the crawl
    /// layer's virtual clock can charge failed attempts identically
    /// (a timed-out request still burns its round-trip budget).
    pub fn attempt_cost_ms(&self, host: &str, attempt: u32) -> u32 {
        FaultDice::new(self.seed, host, attempt).latency_ms(&self.plan)
    }

    /// Execute one request, allocating a fresh response body.
    ///
    /// Convenience wrapper over [`fetch_into`](Internet::fetch_into);
    /// crawl hot loops reuse a body buffer there instead.
    pub fn fetch(&self, req: &Request) -> Result<Response, FetchError> {
        let mut body = String::new();
        let meta = self.fetch_into(req, &mut body)?;
        Ok(Response {
            url: req.url.clone(),
            status: meta.status,
            body: Bytes::from(body),
            variant: meta.variant,
            latency_ms: meta.latency_ms,
        })
    }

    /// Execute one request, appending the body to a caller-owned buffer
    /// (cleared first). The crawl path's zero-copy fetch: a browser reuses
    /// one buffer across every visit, and content servers with a
    /// `serve_into` override render straight into it.
    pub fn fetch_into(&self, req: &Request, body: &mut String) -> Result<FetchMeta, FetchError> {
        // Clear up front so an error return cannot leave a previous
        // visit's page in the caller's reused buffer.
        body.clear();
        let mut m = self.metrics.lock();
        m.requests += 1;
        drop(m);

        // Registered hosts win; the lazy resolver covers the rest.
        let (meta, entry) = match self.hosts.get(&req.url.host) {
            Some(entry) => (
                ResolvedHost {
                    country: entry.country,
                    vpn_detecting: entry.vpn_detecting,
                    geo_block: entry.geo_block,
                },
                Some(entry),
            ),
            None => {
                let resolved = self
                    .resolver
                    .as_ref()
                    .and_then(|r| r.resolve(&req.url.host));
                match resolved {
                    Some(meta) => (meta, None),
                    None => {
                        self.metrics.lock().unknown_hosts += 1;
                        return Err(FetchError::UnknownHost(req.url.host.clone()));
                    }
                }
            }
        };

        let dice = FaultDice::new(self.seed, &req.url.host, req.attempt);

        if dice.fires(RollPurpose::Timeout, self.plan.timeout_chance) {
            self.metrics.lock().timeouts += 1;
            return Err(FetchError::Timeout);
        }
        if dice.fires(RollPurpose::Reset, self.plan.reset_chance) {
            self.metrics.lock().resets += 1;
            return Err(FetchError::ConnectionReset);
        }
        if dice.fires(RollPurpose::ServerError, self.plan.server_error_chance) {
            self.metrics.lock().server_errors += 1;
            return Err(FetchError::ServerError(dice.server_error_code()));
        }

        let variant = self.variant_for(&meta, req, &dice)?;
        match entry {
            Some(entry) => entry.server.serve_into(variant, &req.url.path, body),
            None => self
                .resolver
                .as_ref()
                .expect("resolved host without resolver")
                .serve_into(&req.url.host, variant, &req.url.path, body),
        }

        // Partial damage: the response arrives, but not intact. Both modes
        // rewrite the rendered body in place so the streaming extractor is
        // exercised on genuinely broken HTML, and both keep the buffer
        // valid UTF-8 (the simulated web's invariant).
        let truncated =
            !body.is_empty() && dice.fires(RollPurpose::Truncate, self.plan.truncate_chance);
        if truncated {
            let cut = floor_char_boundary(body, dice.truncate_cut(body.len()));
            body.truncate(cut);
        }
        let garbled = !body.is_empty() && dice.fires(RollPurpose::Garble, self.plan.garble_chance);
        if garbled {
            let (start, span) = dice.garble_span(body.len());
            let start = floor_char_boundary(body, start);
            let end = floor_char_boundary(body, (start + span).min(body.len()));
            if end > start {
                let replacement: String = body[start..end].chars().map(|_| '\u{FFFD}').collect();
                body.replace_range(start..end, &replacement);
            }
        }

        let latency = dice.latency_ms(&self.plan);

        let mut m = self.metrics.lock();
        match variant {
            ContentVariant::Localized => m.localized_responses += 1,
            ContentVariant::Global => m.global_responses += 1,
            ContentVariant::Restricted => m.restricted_responses += 1,
        }
        if truncated {
            m.truncated_bodies += 1;
        }
        if garbled {
            m.garbled_bodies += 1;
        }
        if dice.host_is_slow(&self.plan) {
            m.slow_responses += 1;
        }
        m.bytes_served += body.len() as u64;
        drop(m);

        Ok(FetchMeta {
            status: if variant == ContentVariant::Restricted {
                451
            } else {
                200
            },
            variant,
            latency_ms: latency,
            truncated,
            garbled,
        })
    }

    /// Decide which variant the site serves to this vantage. The decision
    /// is deterministic per (seed, host, attempt).
    fn variant_for(
        &self,
        host: &ResolvedHost,
        req: &Request,
        dice: &FaultDice,
    ) -> Result<ContentVariant, FetchError> {
        match req.vantage.egress_country() {
            Some(egress) if egress == host.country => {
                if req.vantage.is_vpn() {
                    // Combined chance: the site must be a detecting site AND
                    // recognise this provider's ranges.
                    let p_detect = host.vpn_detecting
                        * (provider_detectability(&req.vantage) + self.plan.extra_vpn_detection);
                    if dice.fires(RollPurpose::VpnDetection, p_detect.min(1.0)) {
                        self.metrics.lock().vpn_detections += 1;
                        return Ok(ContentVariant::Restricted);
                    }
                }
                Ok(ContentVariant::Localized)
            }
            _ => {
                // Foreign vantage: occasionally geo-blocked, usually global.
                if dice.fires(RollPurpose::GeoBlock, host.geo_block) {
                    self.metrics.lock().geo_blocks += 1;
                    return Err(FetchError::GeoBlocked);
                }
                Ok(ContentVariant::Global)
            }
        }
    }
}

/// Response metadata from [`Internet::fetch_into`] — everything a
/// [`Response`] carries except the body, which lives in the caller's
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchMeta {
    pub status: u16,
    pub variant: ContentVariant,
    pub latency_ms: u32,
    /// The body was cut off mid-transfer (partial HTML in the buffer).
    pub truncated: bool,
    /// A span of the body was garbled into U+FFFD replacement chars.
    pub garbled: bool,
}

/// Largest char-boundary offset `<= idx` (stable-Rust stand-in for
/// `str::floor_char_boundary`).
fn floor_char_boundary(s: &str, mut idx: usize) -> usize {
    if idx >= s.len() {
        return s.len();
    }
    while !s.is_char_boundary(idx) {
        idx -= 1;
    }
    idx
}

fn provider_detectability(vantage: &Vantage) -> f64 {
    match vantage {
        Vantage::Vpn { provider: id, .. } => provider(*id).detectability,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::vpn_vantage;
    use crate::url::Url;

    fn test_server(tag: &'static str) -> Box<dyn ContentServer> {
        Box::new(move |variant: ContentVariant, path: &str| {
            format!("<html><body>{tag}:{variant:?}:{path}</body></html>")
        })
    }

    fn internet() -> Internet {
        let mut net = Internet::new(7, FaultPlan::RELIABLE);
        net.register_simple("news.bd", Country::Bangladesh, test_server("bd"));
        net.register("wall.th", Country::Thailand, 0.0, 1.0, test_server("th"));
        net.register(
            "paranoid.bd",
            Country::Bangladesh,
            1.0,
            0.0,
            test_server("pbd"),
        );
        net
    }

    #[test]
    fn national_vantage_gets_localized() {
        let net = internet();
        let req = Request::new(
            Url::from_host("news.bd"),
            Vantage::Residential(Country::Bangladesh),
        );
        let resp = net.fetch(&req).unwrap();
        assert_eq!(resp.variant, ContentVariant::Localized);
        assert_eq!(resp.status, 200);
        assert!(resp.text().contains("Localized"));
    }

    #[test]
    fn cloud_vantage_gets_global() {
        let net = internet();
        let req = Request::new(Url::from_host("news.bd"), Vantage::Cloud);
        let resp = net.fetch(&req).unwrap();
        assert_eq!(resp.variant, ContentVariant::Global);
    }

    #[test]
    fn foreign_country_gets_global() {
        let net = internet();
        let req = Request::new(
            Url::from_host("news.bd"),
            Vantage::Residential(Country::Thailand),
        );
        assert_eq!(net.fetch(&req).unwrap().variant, ContentVariant::Global);
    }

    #[test]
    fn vpn_vantage_gets_localized() {
        let net = internet();
        let req = Request::new(
            Url::from_host("news.bd"),
            vpn_vantage(Country::Bangladesh).unwrap(),
        );
        assert_eq!(net.fetch(&req).unwrap().variant, ContentVariant::Localized);
    }

    #[test]
    fn unknown_host_errors() {
        let net = internet();
        let req = Request::new(Url::from_host("nosuch.xx"), Vantage::Cloud);
        assert_eq!(
            net.fetch(&req).unwrap_err(),
            FetchError::UnknownHost("nosuch.xx".into())
        );
        assert_eq!(net.metrics().unknown_hosts, 1);
    }

    #[test]
    fn geo_block_wall_blocks_foreigners_only() {
        let net = internet();
        let foreign = Request::new(Url::from_host("wall.th"), Vantage::Cloud);
        assert_eq!(net.fetch(&foreign).unwrap_err(), FetchError::GeoBlocked);
        let national = Request::new(
            Url::from_host("wall.th"),
            Vantage::Residential(Country::Thailand),
        );
        assert_eq!(
            net.fetch(&national).unwrap().variant,
            ContentVariant::Localized
        );
    }

    #[test]
    fn residential_never_vpn_detected() {
        let net = internet();
        let req = Request::new(
            Url::from_host("paranoid.bd"),
            Vantage::Residential(Country::Bangladesh),
        );
        // paranoid.bd detects 100% of VPNs but this is not a VPN.
        assert_eq!(net.fetch(&req).unwrap().variant, ContentVariant::Localized);
    }

    #[test]
    fn vpn_detection_rate_tracks_provider_detectability() {
        // With vpn_detecting = 1.0 and extra_vpn_detection = 1.0 the
        // combined probability saturates to 1.0 → always restricted.
        let mut plan = FaultPlan::RELIABLE;
        plan.extra_vpn_detection = 1.0;
        let mut net = Internet::new(11, plan);
        net.register("p.bd", Country::Bangladesh, 1.0, 0.0, test_server("p"));
        let req = Request::new(
            Url::from_host("p.bd"),
            vpn_vantage(Country::Bangladesh).unwrap(),
        );
        let resp = net.fetch(&req).unwrap();
        assert_eq!(resp.variant, ContentVariant::Restricted);
        assert_eq!(resp.status, 451);
        assert_eq!(net.metrics().vpn_detections, 1);
    }

    #[test]
    fn faults_are_deterministic_across_instances() {
        let build = || {
            let mut net = Internet::new(99, FaultPlan::HOSTILE);
            for i in 0..50 {
                net.register_simple(&format!("h{i}.bd"), Country::Bangladesh, test_server("x"));
            }
            net
        };
        let run = |net: &Internet| -> Vec<bool> {
            (0..50)
                .map(|i| {
                    let req = Request::new(Url::from_host(&format!("h{i}.bd")), Vantage::Cloud);
                    net.fetch(&req).is_ok()
                })
                .collect()
        };
        let a = build();
        let b = build();
        assert_eq!(run(&a), run(&b));
        // And a hostile plan must actually produce some failures + successes.
        let outcomes = run(&a);
        assert!(outcomes.iter().any(|&ok| ok));
        assert!(outcomes.iter().any(|&ok| !ok));
    }

    #[test]
    fn retry_can_clear_transient_faults() {
        let mut net = Internet::new(5, FaultPlan::HOSTILE);
        for i in 0..100 {
            net.register_simple(&format!("r{i}.bd"), Country::Bangladesh, test_server("x"));
        }
        let mut recovered = 0;
        for i in 0..100 {
            let req = Request::new(Url::from_host(&format!("r{i}.bd")), Vantage::Cloud);
            if let Err(e) = net.fetch(&req) {
                if e.is_retryable() && net.fetch(&req.retry()).is_ok() {
                    recovered += 1;
                }
            }
        }
        assert!(recovered > 0, "no transient fault recovered on retry");
    }

    #[test]
    fn metrics_accumulate() {
        let net = internet();
        let req = Request::new(
            Url::from_host("news.bd"),
            Vantage::Residential(Country::Bangladesh),
        );
        net.fetch(&req).unwrap();
        net.fetch(&req).unwrap();
        let m = net.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.localized_responses, 2);
        assert!(m.bytes_served > 0);
    }

    #[test]
    fn truncation_damages_bodies_deterministically() {
        let plan = FaultPlan {
            truncate_chance: 1.0,
            ..FaultPlan::RELIABLE
        };
        let mut net = Internet::new(7, plan);
        net.register_simple("cut.bd", Country::Bangladesh, test_server("cut"));
        let req = Request::new(Url::from_host("cut.bd"), Vantage::Cloud);
        let mut body_a = String::new();
        let meta = net.fetch_into(&req, &mut body_a).unwrap();
        assert!(meta.truncated);
        assert!(!meta.garbled);
        let full = test_server("cut").serve(ContentVariant::Global, "/");
        assert!(body_a.len() < full.len());
        assert!(full.starts_with(&body_a), "truncation must be a prefix");
        // Same request ⇒ same cut.
        let mut body_b = String::new();
        net.fetch_into(&req, &mut body_b).unwrap();
        assert_eq!(body_a, body_b);
        assert_eq!(net.metrics().truncated_bodies, 2);
    }

    #[test]
    fn garbling_keeps_utf8_and_length_of_char_count() {
        let plan = FaultPlan {
            garble_chance: 1.0,
            ..FaultPlan::RELIABLE
        };
        let mut net = Internet::new(7, plan);
        // Multibyte body: the bengali page exercises char-boundary flooring.
        net.register_simple(
            "mojibake.bd",
            Country::Bangladesh,
            Box::new(|_v: ContentVariant, _p: &str| {
                "<html><body><p>বাংলা সংবাদ এবং আরো বাংলা লেখা এখানে আছে</p></body></html>".repeat(4)
            }),
        );
        let req = Request::new(Url::from_host("mojibake.bd"), Vantage::Cloud);
        let mut body = String::new();
        let meta = net.fetch_into(&req, &mut body).unwrap();
        assert!(meta.garbled);
        assert!(body.contains('\u{FFFD}'), "garble must leave U+FFFD marks");
        // String ops guarantee UTF-8; also confirm the page is still mostly intact.
        let damaged = body.chars().filter(|&c| c == '\u{FFFD}').count();
        assert!(damaged > 0 && damaged < body.chars().count() / 2);
        assert_eq!(net.metrics().garbled_bodies, 1);
    }

    #[test]
    fn server_errors_fire_and_are_retryable() {
        let plan = FaultPlan {
            server_error_chance: 1.0,
            ..FaultPlan::RELIABLE
        };
        let mut net = Internet::new(7, plan);
        net.register_simple("flaky.bd", Country::Bangladesh, test_server("f"));
        let req = Request::new(Url::from_host("flaky.bd"), Vantage::Cloud);
        let err = net.fetch(&req).unwrap_err();
        match err {
            FetchError::ServerError(code) => assert!((500..=504).contains(&code)),
            other => panic!("expected 5xx, got {other:?}"),
        }
        assert!(err.is_retryable());
        assert_eq!(net.metrics().server_errors, 1);
    }

    #[test]
    fn attempt_cost_matches_served_latency() {
        let net = internet();
        let req = Request::new(
            Url::from_host("news.bd"),
            Vantage::Residential(Country::Bangladesh),
        );
        let resp = net.fetch(&req).unwrap();
        assert_eq!(resp.latency_ms, net.attempt_cost_ms("news.bd", 0));
        assert_eq!(net.seed(), 7);
        assert_eq!(net.fault_plan(), &FaultPlan::RELIABLE);
    }

    #[test]
    fn reliable_plan_serves_undamaged_bodies() {
        let net = internet();
        let req = Request::new(Url::from_host("news.bd"), Vantage::Cloud);
        let mut body = String::new();
        let meta = net.fetch_into(&req, &mut body).unwrap();
        assert!(!meta.truncated && !meta.garbled);
        assert_eq!(body, test_server("bd").serve(ContentVariant::Global, "/"));
        let m = net.metrics();
        assert_eq!(m.truncated_bodies + m.garbled_bodies + m.server_errors, 0);
        assert_eq!(m.slow_responses, 0);
    }

    #[test]
    fn hosts_in_filters_by_country() {
        let net = internet();
        let mut bd = net.hosts_in(Country::Bangladesh);
        bd.sort_unstable();
        assert_eq!(bd, vec!["news.bd", "paranoid.bd"]);
        assert_eq!(net.hosts_in(Country::Japan).len(), 0);
    }
}
