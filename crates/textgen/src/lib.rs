//! # langcrux-textgen
//!
//! Deterministic synthetic text generation for every language in the
//! LangCrUX candidate pool.
//!
//! The corpus that stands in for the paper's 120,000 crawled websites needs
//! visible text, headlines, labels, and alt texts in 26 languages across 20
//! scripts. This crate provides:
//!
//! * [`pools`] — curated per-script character pools (common letters only).
//! * [`english`] — an embedded English lexicon (the study's contrast
//!   language needs real words for the dictionary-driven filter rules).
//! * [`gen::TextGenerator`] — words/phrases/sentences/paragraphs/headlines/
//!   alt texts in one language, honouring each script's whitespace rules.
//! * [`mixed::MixedGenerator`] — code-switched native+English text at a
//!   controlled ratio (the paper's "mixed" label category).
//!
//! All output is derived from a seed via `langcrux_lang::rng`; equal seeds
//! give byte-equal text.

pub mod english;
pub mod gen;
pub mod mixed;
pub mod pools;

pub use gen::TextGenerator;
pub use mixed::MixedGenerator;
