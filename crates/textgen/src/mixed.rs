//! Code-switching (mixed-language) text.
//!
//! §3 of the paper highlights *mixed-language accessibility hints*, "where a
//! single `alt` attribute contains both the native language and English"
//! (35% of informative labels in Greece, 34% in Thailand, 30% in Hong
//! Kong). [`MixedGenerator`] produces such strings with a controllable
//! native/English balance so the generator can plant them at calibrated
//! rates and the language classifier can be validated against known ratios.

use crate::gen::TextGenerator;
use langcrux_lang::rng;
use langcrux_lang::Language;
use rand::rngs::StdRng;
use rand::Rng;

/// Generates text that interleaves a native language with English.
#[derive(Debug)]
pub struct MixedGenerator {
    native: TextGenerator,
    english: TextGenerator,
    /// Probability that the next token is native (0.0–1.0).
    native_ratio: f64,
    rng: StdRng,
}

impl MixedGenerator {
    /// `native_ratio` is clamped to `[0.05, 0.95]` so that "mixed" text
    /// always genuinely contains both languages.
    pub fn new(native: Language, seed: u64, native_ratio: f64) -> Self {
        MixedGenerator {
            native: TextGenerator::new(native, seed),
            english: TextGenerator::new(Language::English, seed ^ 0xEEEE),
            native_ratio: native_ratio.clamp(0.05, 0.95),
            rng: rng::rng_for(seed, &[0x3A1D, native as u64]),
        }
    }

    /// A mixed phrase of `min..=max` tokens. Tokens are space-separated even
    /// for scriptio-continua languages because switching scripts introduces
    /// natural boundaries (as real mixed labels do: "ดาวน์โหลด app now").
    pub fn phrase(&mut self, min: usize, max: usize) -> String {
        let n = if min >= max {
            min.max(2)
        } else {
            self.rng.gen_range(min.max(2)..=max.max(2))
        };
        let mut tokens: Vec<String> = Vec::with_capacity(n);
        // Guarantee at least one token of each language.
        tokens.push(self.native.word());
        tokens.push(self.english.word());
        for _ in 2..n {
            if self.rng.gen_bool(self.native_ratio) {
                tokens.push(self.native.word());
            } else {
                tokens.push(self.english.word());
            }
        }
        // Deterministic shuffle so the guaranteed tokens are not always
        // in front.
        for i in (1..tokens.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            tokens.swap(i, j);
        }
        tokens.join(" ")
    }

    /// A mixed sentence (for visible body text on bilingual pages).
    pub fn sentence(&mut self) -> String {
        let mut s = self.phrase(6, 14);
        s.push('.');
        s
    }

    /// A paragraph of mixed sentences.
    pub fn paragraph(&mut self, sentences: usize) -> String {
        let mut parts = Vec::with_capacity(sentences);
        for _ in 0..sentences {
            parts.push(self.sentence());
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::script::{Script, ScriptHistogram};

    #[test]
    fn mixed_phrase_contains_both_scripts() {
        let mut g = MixedGenerator::new(Language::Thai, 5, 0.5);
        for _ in 0..20 {
            let p = g.phrase(3, 6);
            let hist = ScriptHistogram::of(&p);
            assert!(hist.count(Script::Thai) > 0, "{p:?}");
            assert!(hist.count(Script::Latin) > 0, "{p:?}");
        }
    }

    #[test]
    fn ratio_controls_balance() {
        let sample = |ratio: f64| -> f64 {
            let mut g = MixedGenerator::new(Language::Russian, 42, ratio);
            let text = g.paragraph(30);
            let hist = ScriptHistogram::of(&text);
            let native = hist.count(Script::Cyrillic) as f64;
            let latin = hist.count(Script::Latin) as f64;
            native / (native + latin)
        };
        let lo = sample(0.2);
        let hi = sample(0.8);
        assert!(hi > lo + 0.2, "lo={lo}, hi={hi}");
    }

    #[test]
    fn deterministic() {
        let mut a = MixedGenerator::new(Language::Greek, 9, 0.5);
        let mut b = MixedGenerator::new(Language::Greek, 9, 0.5);
        assert_eq!(a.paragraph(3), b.paragraph(3));
    }

    #[test]
    fn extreme_ratios_are_clamped() {
        let mut g = MixedGenerator::new(Language::Korean, 1, 1.5);
        let p = g.phrase(10, 10);
        let hist = ScriptHistogram::of(&p);
        // Even at ratio 1.0-clamped-to-0.95, the guaranteed English token
        // must appear.
        assert!(hist.count(Script::Latin) > 0, "{p:?}");
    }
}
