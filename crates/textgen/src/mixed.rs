//! Code-switching (mixed-language) text.
//!
//! §3 of the paper highlights *mixed-language accessibility hints*, "where a
//! single `alt` attribute contains both the native language and English"
//! (35% of informative labels in Greece, 34% in Thailand, 30% in Hong
//! Kong). [`MixedGenerator`] produces such strings with a controllable
//! native/English balance so the generator can plant them at calibrated
//! rates and the language classifier can be validated against known ratios.

use crate::gen::TextGenerator;
use langcrux_lang::rng;
use langcrux_lang::Language;
use rand::rngs::StdRng;
use rand::Rng;

/// Generates text that interleaves a native language with English.
///
/// The generator carries a reusable token arena (`tok_buf` + `ranges`): a
/// phrase's tokens are written once into the arena, shuffled by range, and
/// copied out — so a pooled `MixedGenerator` produces phrases without any
/// per-token `String` allocation while drawing the RNG exactly like the
/// historical `Vec<String>`-and-`join` implementation.
#[derive(Debug)]
pub struct MixedGenerator {
    native: TextGenerator,
    english: TextGenerator,
    /// Probability that the next token is native (0.0–1.0).
    native_ratio: f64,
    rng: StdRng,
    /// Token arena reused across phrases.
    tok_buf: String,
    /// `(start, end)` byte ranges of tokens inside `tok_buf`.
    ranges: Vec<(u32, u32)>,
}

impl MixedGenerator {
    /// `native_ratio` is clamped to `[0.05, 0.95]` so that "mixed" text
    /// always genuinely contains both languages.
    pub fn new(native: Language, seed: u64, native_ratio: f64) -> Self {
        MixedGenerator {
            native: TextGenerator::new(native, seed),
            english: TextGenerator::new(Language::English, seed ^ 0xEEEE),
            native_ratio: native_ratio.clamp(0.05, 0.95),
            rng: rng::rng_for(seed, &[0x3A1D, native as u64]),
            tok_buf: String::new(),
            ranges: Vec::new(),
        }
    }

    /// Re-point a pooled generator at a new `(native, seed, ratio)` stream
    /// in place — state-identical to [`MixedGenerator::new`] while keeping
    /// the token arena's capacity.
    pub fn reseed(&mut self, native: Language, seed: u64, native_ratio: f64) {
        self.native.reseed(native, seed);
        self.english.reseed(Language::English, seed ^ 0xEEEE);
        self.native_ratio = native_ratio.clamp(0.05, 0.95);
        self.rng = rng::rng_for(seed, &[0x3A1D, native as u64]);
    }

    /// A mixed phrase of `min..=max` tokens. Tokens are space-separated even
    /// for scriptio-continua languages because switching scripts introduces
    /// natural boundaries (as real mixed labels do: "ดาวน์โหลด app now").
    pub fn phrase(&mut self, min: usize, max: usize) -> String {
        let mut out = String::new();
        self.append_phrase(min, max, &mut out);
        out
    }

    /// [`phrase`](Self::phrase) into a caller-owned buffer. Bytes and RNG
    /// draws are identical to `phrase`.
    pub fn append_phrase(&mut self, min: usize, max: usize, out: &mut String) {
        let n = if min >= max {
            min.max(2)
        } else {
            self.rng.gen_range(min.max(2)..=max.max(2))
        };
        self.tok_buf.clear();
        self.ranges.clear();
        // Guarantee at least one token of each language.
        self.arena_token(true);
        self.arena_token(false);
        for _ in 2..n {
            let native = self.rng.gen_bool(self.native_ratio);
            self.arena_token(native);
        }
        // Deterministic shuffle so the guaranteed tokens are not always
        // in front (same draws as the historical token-vector swap).
        for i in (1..self.ranges.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.ranges.swap(i, j);
        }
        for (i, &(start, end)) in self.ranges.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&self.tok_buf[start as usize..end as usize]);
        }
    }

    /// Append one token to the arena, recording its range.
    fn arena_token(&mut self, native: bool) {
        let start = self.tok_buf.len() as u32;
        if native {
            self.native.append_word(&mut self.tok_buf);
        } else {
            self.english.append_word(&mut self.tok_buf);
        }
        self.ranges.push((start, self.tok_buf.len() as u32));
    }

    /// A mixed sentence (for visible body text on bilingual pages).
    pub fn sentence(&mut self) -> String {
        let mut s = String::new();
        self.append_sentence(&mut s);
        s
    }

    /// [`sentence`](Self::sentence) into a caller-owned buffer.
    pub fn append_sentence(&mut self, out: &mut String) {
        self.append_phrase(6, 14, out);
        out.push('.');
    }

    /// A paragraph of mixed sentences.
    pub fn paragraph(&mut self, sentences: usize) -> String {
        let mut out = String::new();
        self.append_paragraph(sentences, &mut out);
        out
    }

    /// [`paragraph`](Self::paragraph) into a caller-owned buffer.
    pub fn append_paragraph(&mut self, sentences: usize, out: &mut String) {
        for i in 0..sentences {
            if i > 0 {
                out.push(' ');
            }
            self.append_sentence(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::script::{Script, ScriptHistogram};

    #[test]
    fn mixed_phrase_contains_both_scripts() {
        let mut g = MixedGenerator::new(Language::Thai, 5, 0.5);
        for _ in 0..20 {
            let p = g.phrase(3, 6);
            let hist = ScriptHistogram::of(&p);
            assert!(hist.count(Script::Thai) > 0, "{p:?}");
            assert!(hist.count(Script::Latin) > 0, "{p:?}");
        }
    }

    #[test]
    fn ratio_controls_balance() {
        let sample = |ratio: f64| -> f64 {
            let mut g = MixedGenerator::new(Language::Russian, 42, ratio);
            let text = g.paragraph(30);
            let hist = ScriptHistogram::of(&text);
            let native = hist.count(Script::Cyrillic) as f64;
            let latin = hist.count(Script::Latin) as f64;
            native / (native + latin)
        };
        let lo = sample(0.2);
        let hi = sample(0.8);
        assert!(hi > lo + 0.2, "lo={lo}, hi={hi}");
    }

    #[test]
    fn deterministic() {
        let mut a = MixedGenerator::new(Language::Greek, 9, 0.5);
        let mut b = MixedGenerator::new(Language::Greek, 9, 0.5);
        assert_eq!(a.paragraph(3), b.paragraph(3));
    }

    #[test]
    fn append_variants_match_returning_variants() {
        for lang in [
            Language::Thai,
            Language::Japanese,
            Language::Russian,
            Language::Hebrew,
            Language::Bangla,
        ] {
            let mut returning = MixedGenerator::new(lang, 77, 0.5);
            let mut appending = MixedGenerator::new(lang, 77, 0.5);
            let mut scratch = String::new();
            for round in 0..6 {
                let expect = format!(
                    "{}|{}|{}",
                    returning.phrase(3, 7),
                    returning.sentence(),
                    returning.paragraph(2)
                );
                scratch.clear();
                appending.append_phrase(3, 7, &mut scratch);
                scratch.push('|');
                appending.append_sentence(&mut scratch);
                scratch.push('|');
                appending.append_paragraph(2, &mut scratch);
                assert_eq!(scratch, expect, "{lang:?} round {round}");
                // Draw-count identity: the next phrase must still agree.
                assert_eq!(returning.phrase(2, 4), appending.phrase(2, 4), "{lang:?}");
            }
        }
    }

    #[test]
    fn reseed_matches_fresh_generator() {
        let mut fresh = MixedGenerator::new(Language::Korean, 123, 0.4);
        let mut pooled = MixedGenerator::new(Language::Thai, 9, 0.9);
        let _ = pooled.paragraph(2); // pollute arena + rng state
        pooled.reseed(Language::Korean, 123, 0.4);
        assert_eq!(fresh.paragraph(3), pooled.paragraph(3));
    }

    #[test]
    fn extreme_ratios_are_clamped() {
        let mut g = MixedGenerator::new(Language::Korean, 1, 1.5);
        let p = g.phrase(10, 10);
        let hist = ScriptHistogram::of(&p);
        // Even at ratio 1.0-clamped-to-0.95, the guaranteed English token
        // must appear.
        assert!(hist.count(Script::Latin) > 0, "{p:?}");
    }
}
