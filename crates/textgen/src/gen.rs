//! The text generator.
//!
//! [`TextGenerator`] produces deterministic pseudo-text in any candidate
//! language: words, phrases, sentences, paragraphs, headlines, and
//! descriptive alt texts. Output is *synthetic* — it is not meaningful prose
//! — but it is script-faithful: the language-identification heuristics of
//! `langcrux-langid` classify it exactly like real text of that language,
//! which is all the measurement pipeline observes.
//!
//! Whitespace conventions follow the real orthographies: Chinese, Japanese
//! and Thai sentences carry no inter-word spaces; everything else is
//! space-separated. (Word-count metrics in the analysis layer count
//! whitespace-delimited tokens, as the paper's Table 2 does.)

use crate::english;
use crate::pools::{self, AlphaPool};
use langcrux_lang::rng;
use langcrux_lang::Language;
use rand::rngs::StdRng;
use rand::Rng;

/// Deterministic text generator for one language.
#[derive(Debug)]
pub struct TextGenerator {
    language: Language,
    rng: StdRng,
}

impl TextGenerator {
    /// Create a generator for `language` from a base seed and stream ids.
    pub fn new(language: Language, seed: u64) -> Self {
        TextGenerator {
            language,
            rng: rng::rng_for(seed, &[language as u64 + 1]),
        }
    }

    /// Create a generator that consumes an existing RNG (used when a caller
    /// interleaves several generators deterministically).
    pub fn from_rng(language: Language, rng: StdRng) -> Self {
        TextGenerator { language, rng }
    }

    /// The language this generator produces.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Re-point a pooled generator at a new `(language, seed)` stream in
    /// place — state-identical to [`TextGenerator::new`], but without
    /// constructing a new value. This is what lets a render arena keep one
    /// generator per role and recycle it across pages.
    pub fn reseed(&mut self, language: Language, seed: u64) {
        self.language = language;
        self.rng = rng::rng_for(seed, &[language as u64 + 1]);
    }

    fn pick<T: Copy>(&mut self, slice: &[T]) -> T {
        slice[self.rng.gen_range(0..slice.len())]
    }

    /// Generate one word.
    pub fn word(&mut self) -> String {
        let mut out = String::new();
        self.append_word(&mut out);
        out
    }

    /// [`word`](Self::word) written into a caller-owned buffer. Bytes and
    /// RNG draws are identical to `word` — this is the innermost step of
    /// the allocation diet (the old path allocated one `String` per word).
    pub fn append_word(&mut self, out: &mut String) {
        match self.language {
            Language::English => self.append_english_word(out),
            Language::MandarinChinese => self.append_han_word(pools::HAN_SIMPLIFIED, out),
            Language::Cantonese => self.append_han_word(pools::HAN_TRADITIONAL, out),
            Language::Japanese => self.append_japanese_word(out),
            Language::Korean => self.append_korean_word(out),
            Language::Amharic => self.append_ethiopic_word(out),
            Language::Thai => self.append_thai_word(out),
            lang => self.append_alpha_word(alpha_pool_for(lang), out),
        }
    }

    fn append_english_word(&mut self, out: &mut String) {
        let roll: f64 = self.rng.gen();
        let word = if roll < 0.25 {
            self.pick(english::FUNCTION_WORDS)
        } else if roll < 0.65 {
            self.pick(english::NOUNS)
        } else if roll < 0.85 {
            self.pick(english::ADJECTIVES)
        } else {
            self.pick(english::VERBS)
        };
        out.push_str(word);
    }

    /// Alphabetic / abugida word: 1–4 syllables of base(+sign|vowel).
    fn append_alpha_word(&mut self, pool: AlphaPool, out: &mut String) {
        let syllables = self.rng.gen_range(1..=4);
        // Occasionally start with an independent vowel.
        if !pool.vowels.is_empty() && self.rng.gen_bool(0.2) {
            let c = self.pick(pool.vowels);
            out.push(c);
        }
        for _ in 0..syllables {
            let c = self.pick(pool.base);
            out.push(c);
            if !pool.signs.is_empty() && self.rng.gen_bool(0.65) {
                let c = self.pick(pool.signs);
                out.push(c);
            } else if !pool.vowels.is_empty() && pool.signs.is_empty() && self.rng.gen_bool(0.75) {
                let c = self.pick(pool.vowels);
                out.push(c);
            }
        }
        if !pool.finals.is_empty() && self.rng.gen_bool(0.25) {
            let c = self.pick(pool.finals);
            out.push(c);
        }
    }

    fn append_han_word(&mut self, pool: &[char], out: &mut String) {
        let len = self.pick(&[1usize, 2, 2, 2, 3]);
        for _ in 0..len {
            let c = self.pick(pool);
            out.push(c);
        }
    }

    fn append_japanese_word(&mut self, out: &mut String) {
        let roll: f64 = self.rng.gen();
        if roll < 0.55 {
            // Kanji stem, optionally with hiragana okurigana.
            let kanji = self.rng.gen_range(1..=2);
            for _ in 0..kanji {
                let c = self.pick(pools::KANJI);
                out.push(c);
            }
            if self.rng.gen_bool(0.5) {
                let c = self.pick(pools::HIRAGANA);
                out.push(c);
            }
        } else if roll < 0.85 {
            let len = self.rng.gen_range(2..=4);
            for _ in 0..len {
                let c = self.pick(pools::HIRAGANA);
                out.push(c);
            }
        } else {
            // Katakana loan word, often with a long-vowel mark.
            let len = self.rng.gen_range(2..=5);
            for _ in 0..len {
                let c = self.pick(pools::KATAKANA);
                out.push(c);
            }
            if self.rng.gen_bool(0.35) {
                out.push('ー');
            }
        }
    }

    fn append_korean_word(&mut self, out: &mut String) {
        let len = self.rng.gen_range(1..=4);
        for _ in 0..len {
            let c = self.hangul_syllable();
            out.push(c);
        }
    }

    /// Compose a Hangul syllable block from jamo indices:
    /// `0xAC00 + (initial*21 + vowel)*28 + final`.
    fn hangul_syllable(&mut self) -> char {
        let initial = self.rng.gen_range(0..19u32);
        let vowel = self.rng.gen_range(0..21u32);
        // Bias toward open syllables (no final consonant), as in real text.
        let final_c = if self.rng.gen_bool(0.6) {
            0
        } else {
            self.rng.gen_range(1..28u32)
        };
        char::from_u32(0xAC00 + (initial * 21 + vowel) * 28 + final_c).expect("valid Hangul")
    }

    fn append_ethiopic_word(&mut self, out: &mut String) {
        let len = self.rng.gen_range(2..=4);
        for _ in 0..len {
            let base = self.pick(pools::ETHIOPIC_ROW_BASES);
            let order = self.rng.gen_range(0..7u32);
            out.push(char::from_u32(base + order).expect("valid Ethiopic"));
        }
    }

    fn append_thai_word(&mut self, out: &mut String) {
        let syllables = self.rng.gen_range(1..=3);
        for _ in 0..syllables {
            if self.rng.gen_bool(0.25) {
                let c = self.pick(pools::THAI_PREFIX_VOWELS);
                out.push(c);
            }
            let c = self.pick(pools::THAI.base);
            out.push(c);
            if self.rng.gen_bool(0.6) {
                let roll: f64 = self.rng.gen();
                let c = if roll < 0.5 {
                    self.pick(pools::THAI.signs)
                } else {
                    self.pick(pools::THAI.vowels)
                };
                out.push(c);
            }
        }
    }

    /// Whether this language writes without inter-word spaces.
    pub fn scriptio_continua(&self) -> bool {
        matches!(
            self.language,
            Language::MandarinChinese | Language::Cantonese | Language::Japanese | Language::Thai
        )
    }

    /// `n` words joined by the language's separator (space, or nothing for
    /// scriptio-continua languages).
    pub fn words(&mut self, n: usize) -> String {
        let mut out = String::new();
        self.append_words(n, &mut out);
        out
    }

    /// [`words`](Self::words) written into a caller-owned buffer — the
    /// allocation-diet path: the per-word `Vec<String>` + `join` pair is
    /// replaced by direct pushes, and the caller reuses `out` across
    /// calls. Bytes and RNG draws are identical to `words`.
    pub fn append_words(&mut self, n: usize, out: &mut String) {
        let sep = if self.scriptio_continua() { "" } else { " " };
        for i in 0..n {
            if i > 0 {
                out.push_str(sep);
            }
            self.append_word(out);
        }
    }

    /// A phrase of between `min` and `max` words (inclusive), separated per
    /// the language's convention. Suitable for labels and alt texts.
    pub fn phrase(&mut self, min: usize, max: usize) -> String {
        let mut out = String::new();
        self.append_phrase(min, max, &mut out);
        out
    }

    /// [`phrase`](Self::phrase) into a caller-owned buffer.
    pub fn append_phrase(&mut self, min: usize, max: usize, out: &mut String) {
        let n = if min >= max {
            min
        } else {
            self.rng.gen_range(min..=max)
        };
        if self.language == Language::Japanese && n > 1 {
            // Insert particles between content words.
            for i in 0..n {
                if i > 0 && self.rng.gen_bool(0.6) {
                    out.push_str(
                        pools::JA_PARTICLES[self.rng.gen_range(0..pools::JA_PARTICLES.len())],
                    );
                }
                self.append_word(out);
            }
            return;
        }
        self.append_words(n, out);
    }

    /// A full sentence with terminal punctuation appropriate to the script.
    pub fn sentence(&mut self) -> String {
        let mut out = String::new();
        self.append_sentence(&mut out);
        out
    }

    /// [`sentence`](Self::sentence) into a caller-owned buffer.
    pub fn append_sentence(&mut self, out: &mut String) {
        let n = self.rng.gen_range(5..=14);
        self.append_phrase(n, n, out);
        let terminal = match self.language {
            Language::MandarinChinese | Language::Cantonese | Language::Japanese => "。",
            Language::Hindi | Language::Marathi | Language::Nepali => "।",
            Language::ModernStandardArabic
            | Language::EgyptianArabic
            | Language::Urdu
            | Language::Persian => "؟",
            Language::Greek => ".",
            Language::Thai => "",
            _ => ".",
        };
        // Arabic question mark only sometimes; default full stop.
        if terminal == "؟" {
            out.push_str(if self.rng.gen_bool(0.1) { "؟" } else { "." });
        } else {
            out.push_str(terminal);
        }
    }

    /// A paragraph of `sentences` sentences.
    pub fn paragraph(&mut self, sentences: usize) -> String {
        let mut out = String::new();
        self.append_paragraph(sentences, &mut out);
        out
    }

    /// [`paragraph`](Self::paragraph) into a caller-owned buffer.
    pub fn append_paragraph(&mut self, sentences: usize, out: &mut String) {
        for i in 0..sentences {
            if i > 0 {
                out.push(' ');
            }
            self.append_sentence(out);
        }
    }

    /// A short headline (2–7 words, no terminal punctuation).
    pub fn headline(&mut self) -> String {
        let mut out = String::new();
        self.append_headline(&mut out);
        out
    }

    /// [`headline`](Self::headline) into a caller-owned buffer.
    pub fn append_headline(&mut self, out: &mut String) {
        if self.language == Language::English {
            // Headline grammar: [adj] noun verb [adj] noun. The words are
            // `&'static str`, so staging them in a fixed array keeps the
            // zero-alloc property while preserving the draw order.
            let with_adj1 = self.rng.gen_bool(0.6);
            let with_adj2 = self.rng.gen_bool(0.5);
            let mut words: [&str; 5] = [""; 5];
            let mut n = 0;
            if with_adj1 {
                words[n] = self.pick(english::ADJECTIVES);
                n += 1;
            }
            words[n] = self.pick(english::NOUNS);
            n += 1;
            words[n] = self.pick(english::VERBS);
            n += 1;
            if with_adj2 {
                words[n] = self.pick(english::ADJECTIVES);
                n += 1;
            }
            words[n] = self.pick(english::NOUNS);
            n += 1;
            for (i, word) in words[..n].iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(word);
            }
            return;
        }
        self.append_phrase(2, 7, out);
    }

    /// A descriptive alt text: what a photo depicts, in this language.
    /// English alt texts use the concrete subject bank for realism.
    pub fn alt_text(&mut self) -> String {
        let mut out = String::new();
        self.append_alt_text(&mut out);
        out
    }

    /// [`alt_text`](Self::alt_text) into a caller-owned buffer.
    pub fn append_alt_text(&mut self, out: &mut String) {
        if self.language == Language::English {
            let subject = self.pick(english::IMAGE_SUBJECTS);
            out.push_str(subject);
            return;
        }
        self.append_phrase(3, 8, out);
    }

    /// An informative section/navigation label (1–3 words; English uses the
    /// curated multi-word section names so the single-word filter keeps it).
    pub fn section_label(&mut self) -> String {
        let mut out = String::new();
        self.append_section_label(&mut out);
        out
    }

    /// [`section_label`](Self::section_label) into a caller-owned buffer.
    pub fn append_section_label(&mut self, out: &mut String) {
        if self.language == Language::English {
            let section = self.pick(english::UI_SECTIONS);
            out.push_str(section);
            return;
        }
        self.append_phrase(1, 3, out);
    }

    /// Expose the inner RNG for callers that need correlated decisions.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn alpha_pool_for(lang: Language) -> AlphaPool {
    match lang {
        Language::English => pools::LATIN,
        Language::Russian => pools::CYRILLIC,
        Language::Greek => pools::GREEK,
        Language::Hebrew => pools::HEBREW,
        Language::ModernStandardArabic | Language::EgyptianArabic => pools::ARABIC,
        Language::Urdu => pools::URDU,
        Language::Persian => pools::PERSIAN,
        Language::Hindi | Language::Nepali => pools::DEVANAGARI,
        Language::Marathi => pools::MARATHI,
        Language::Bangla => pools::BENGALI,
        Language::Punjabi => pools::GURMUKHI,
        Language::Gujarati => pools::GUJARATI,
        Language::Tamil => pools::TAMIL,
        Language::Telugu => pools::TELUGU,
        Language::Kannada => pools::KANNADA,
        Language::Malayalam => pools::MALAYALAM,
        Language::Sinhala => pools::SINHALA,
        Language::Thai => pools::THAI,
        Language::Burmese => pools::MYANMAR,
        Language::Georgian => pools::GEORGIAN,
        // Han/kana/hangul/ethiopic languages never reach here.
        Language::MandarinChinese
        | Language::Cantonese
        | Language::Japanese
        | Language::Korean
        | Language::Amharic => unreachable!("non-alphabetic language {lang:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::script::ScriptHistogram;

    const ALL_LANGS: &[Language] = &[
        Language::English,
        Language::MandarinChinese,
        Language::Cantonese,
        Language::Japanese,
        Language::Korean,
        Language::Thai,
        Language::Hindi,
        Language::Bangla,
        Language::Russian,
        Language::Greek,
        Language::Hebrew,
        Language::ModernStandardArabic,
        Language::EgyptianArabic,
        Language::Urdu,
        Language::Tamil,
        Language::Telugu,
        Language::Marathi,
        Language::Amharic,
        Language::Burmese,
        Language::Sinhala,
        Language::Georgian,
        Language::Punjabi,
        Language::Gujarati,
        Language::Kannada,
        Language::Malayalam,
        Language::Persian,
        Language::Nepali,
    ];

    #[test]
    fn words_are_nonempty_for_all_languages() {
        for &lang in ALL_LANGS {
            let mut g = TextGenerator::new(lang, 1);
            for _ in 0..50 {
                assert!(!g.word().is_empty(), "{lang:?}");
            }
        }
    }

    #[test]
    fn append_variants_match_returning_variants() {
        // The allocation-diet path must be byte- and RNG-draw-identical.
        for &lang in ALL_LANGS {
            let mut returning = TextGenerator::new(lang, 321);
            let mut appending = TextGenerator::new(lang, 321);
            let mut scratch = String::new();
            for round in 0..5 {
                let expect = format!(
                    "{}|{}|{}|{}",
                    returning.words(3),
                    returning.phrase(2, 6),
                    returning.sentence(),
                    returning.paragraph(2)
                );
                scratch.clear();
                appending.append_words(3, &mut scratch);
                scratch.push('|');
                appending.append_phrase(2, 6, &mut scratch);
                scratch.push('|');
                appending.append_sentence(&mut scratch);
                scratch.push('|');
                appending.append_paragraph(2, &mut scratch);
                assert_eq!(scratch, expect, "{lang:?} round {round}");
            }
        }
    }

    #[test]
    fn append_word_headline_alt_label_match_returning_variants() {
        // Every converted API must be byte- AND RNG-draw-identical: the
        // trailing word() comparison fails if any append variant consumed
        // a different number of draws.
        for &lang in ALL_LANGS {
            let mut returning = TextGenerator::new(lang, 8181);
            let mut appending = TextGenerator::new(lang, 8181);
            let mut scratch = String::new();
            for round in 0..8 {
                let expect = format!(
                    "{}|{}|{}|{}",
                    returning.word(),
                    returning.headline(),
                    returning.alt_text(),
                    returning.section_label()
                );
                scratch.clear();
                appending.append_word(&mut scratch);
                scratch.push('|');
                appending.append_headline(&mut scratch);
                scratch.push('|');
                appending.append_alt_text(&mut scratch);
                scratch.push('|');
                appending.append_section_label(&mut scratch);
                assert_eq!(scratch, expect, "{lang:?} round {round}");
                assert_eq!(
                    returning.word(),
                    appending.word(),
                    "{lang:?} draws diverged"
                );
            }
        }
    }

    #[test]
    fn reseed_matches_fresh_generator() {
        for &lang in ALL_LANGS {
            let mut fresh = TextGenerator::new(lang, 4242);
            // A polluted generator reseeded in place must be
            // indistinguishable from a newly constructed one.
            let mut pooled = TextGenerator::new(Language::English, 1);
            let _ = pooled.paragraph(2);
            pooled.reseed(lang, 4242);
            assert_eq!(pooled.language(), lang);
            assert_eq!(fresh.paragraph(3), pooled.paragraph(3), "{lang:?}");
        }
    }

    #[test]
    fn append_into_nonempty_buffer_only_appends() {
        let mut a = TextGenerator::new(Language::Greek, 5);
        let mut b = TextGenerator::new(Language::Greek, 5);
        let mut buf = String::from("prefix|");
        a.append_headline(&mut buf);
        let expect = format!("prefix|{}", b.headline());
        assert_eq!(buf, expect);
    }

    #[test]
    fn generation_is_deterministic() {
        for &lang in ALL_LANGS {
            let mut a = TextGenerator::new(lang, 99);
            let mut b = TextGenerator::new(lang, 99);
            assert_eq!(a.paragraph(3), b.paragraph(3), "{lang:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TextGenerator::new(Language::Russian, 1);
        let mut b = TextGenerator::new(Language::Russian, 2);
        assert_ne!(a.paragraph(3), b.paragraph(3));
    }

    #[test]
    fn words_carry_evidence_script() {
        for &lang in ALL_LANGS {
            let mut g = TextGenerator::new(lang, 7);
            let text = g.words(40);
            let hist = ScriptHistogram::of(&text);
            let evidence: usize = lang.evidence_scripts().iter().map(|&s| hist.count(s)).sum();
            let total = hist.distinguishing_total();
            assert!(
                evidence as f64 >= total as f64 * 0.95,
                "{lang:?}: evidence {evidence}/{total} in {text:?}"
            );
        }
    }

    #[test]
    fn scriptio_continua_has_no_spaces() {
        for lang in [
            Language::MandarinChinese,
            Language::Japanese,
            Language::Thai,
            Language::Cantonese,
        ] {
            let mut g = TextGenerator::new(lang, 3);
            let s = g.words(8);
            assert!(!s.contains(' '), "{lang:?}: {s:?}");
        }
    }

    #[test]
    fn spaced_languages_have_spaces() {
        for lang in [Language::English, Language::Russian, Language::Hindi] {
            let mut g = TextGenerator::new(lang, 3);
            let s = g.words(8);
            assert_eq!(s.split_whitespace().count(), 8, "{lang:?}");
        }
    }

    #[test]
    fn sentences_have_terminal_punctuation() {
        let mut g = TextGenerator::new(Language::Russian, 5);
        assert!(g.sentence().ends_with('.'));
        let mut g = TextGenerator::new(Language::MandarinChinese, 5);
        assert!(g.sentence().ends_with('。'));
        let mut g = TextGenerator::new(Language::Hindi, 5);
        assert!(g.sentence().ends_with('।'));
    }

    #[test]
    fn phrase_respects_bounds() {
        let mut g = TextGenerator::new(Language::Greek, 11);
        for _ in 0..30 {
            let p = g.phrase(2, 4);
            let n = p.split_whitespace().count();
            assert!((2..=4).contains(&n), "{p:?}");
        }
    }

    #[test]
    fn korean_syllables_are_valid_hangul() {
        let mut g = TextGenerator::new(Language::Korean, 13);
        for _ in 0..100 {
            for c in g.word().chars() {
                let cp = c as u32;
                assert!((0xAC00..=0xD7A3).contains(&cp), "{c}");
            }
        }
    }

    #[test]
    fn english_headline_looks_like_words() {
        let mut g = TextGenerator::new(Language::English, 17);
        for _ in 0..20 {
            let h = g.headline();
            assert!(h.split_whitespace().count() >= 3);
            assert!(h.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn alt_text_is_multiword_descriptive() {
        let mut g = TextGenerator::new(Language::English, 19);
        let alt = g.alt_text();
        assert!(alt.split_whitespace().count() >= 4);
    }
}
