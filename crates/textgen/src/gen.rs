//! The text generator.
//!
//! [`TextGenerator`] produces deterministic pseudo-text in any candidate
//! language: words, phrases, sentences, paragraphs, headlines, and
//! descriptive alt texts. Output is *synthetic* — it is not meaningful prose
//! — but it is script-faithful: the language-identification heuristics of
//! `langcrux-langid` classify it exactly like real text of that language,
//! which is all the measurement pipeline observes.
//!
//! Whitespace conventions follow the real orthographies: Chinese, Japanese
//! and Thai sentences carry no inter-word spaces; everything else is
//! space-separated. (Word-count metrics in the analysis layer count
//! whitespace-delimited tokens, as the paper's Table 2 does.)

use crate::english;
use crate::pools::{self, AlphaPool};
use langcrux_lang::rng;
use langcrux_lang::Language;
use rand::rngs::StdRng;
use rand::Rng;

/// Deterministic text generator for one language.
#[derive(Debug)]
pub struct TextGenerator {
    language: Language,
    rng: StdRng,
}

impl TextGenerator {
    /// Create a generator for `language` from a base seed and stream ids.
    pub fn new(language: Language, seed: u64) -> Self {
        TextGenerator {
            language,
            rng: rng::rng_for(seed, &[language as u64 + 1]),
        }
    }

    /// Create a generator that consumes an existing RNG (used when a caller
    /// interleaves several generators deterministically).
    pub fn from_rng(language: Language, rng: StdRng) -> Self {
        TextGenerator { language, rng }
    }

    /// The language this generator produces.
    pub fn language(&self) -> Language {
        self.language
    }

    fn pick<T: Copy>(&mut self, slice: &[T]) -> T {
        slice[self.rng.gen_range(0..slice.len())]
    }

    /// Generate one word.
    pub fn word(&mut self) -> String {
        match self.language {
            Language::English => self.english_word(),
            Language::MandarinChinese => self.han_word(pools::HAN_SIMPLIFIED),
            Language::Cantonese => self.han_word(pools::HAN_TRADITIONAL),
            Language::Japanese => self.japanese_word(),
            Language::Korean => self.korean_word(),
            Language::Amharic => self.ethiopic_word(),
            Language::Thai => self.thai_word(),
            lang => self.alpha_word(alpha_pool_for(lang)),
        }
    }

    fn english_word(&mut self) -> String {
        let roll: f64 = self.rng.gen();
        if roll < 0.25 {
            self.pick(english::FUNCTION_WORDS).to_string()
        } else if roll < 0.65 {
            self.pick(english::NOUNS).to_string()
        } else if roll < 0.85 {
            self.pick(english::ADJECTIVES).to_string()
        } else {
            self.pick(english::VERBS).to_string()
        }
    }

    /// Alphabetic / abugida word: 1–4 syllables of base(+sign|vowel).
    fn alpha_word(&mut self, pool: AlphaPool) -> String {
        let syllables = self.rng.gen_range(1..=4);
        let mut out = String::new();
        // Occasionally start with an independent vowel.
        if !pool.vowels.is_empty() && self.rng.gen_bool(0.2) {
            out.push(self.pick(pool.vowels));
        }
        for _ in 0..syllables {
            out.push(self.pick(pool.base));
            if !pool.signs.is_empty() && self.rng.gen_bool(0.65) {
                out.push(self.pick(pool.signs));
            } else if !pool.vowels.is_empty() && pool.signs.is_empty() && self.rng.gen_bool(0.75) {
                out.push(self.pick(pool.vowels));
            }
        }
        if !pool.finals.is_empty() && self.rng.gen_bool(0.25) {
            out.push(self.pick(pool.finals));
        }
        out
    }

    fn han_word(&mut self, pool: &[char]) -> String {
        let len = self.pick(&[1usize, 2, 2, 2, 3]);
        (0..len).map(|_| self.pick(pool)).collect()
    }

    fn japanese_word(&mut self) -> String {
        let roll: f64 = self.rng.gen();
        if roll < 0.55 {
            // Kanji stem, optionally with hiragana okurigana.
            let kanji = self.rng.gen_range(1..=2);
            let mut w: String = (0..kanji).map(|_| self.pick(pools::KANJI)).collect();
            if self.rng.gen_bool(0.5) {
                w.push(self.pick(pools::HIRAGANA));
            }
            w
        } else if roll < 0.85 {
            let len = self.rng.gen_range(2..=4);
            (0..len).map(|_| self.pick(pools::HIRAGANA)).collect()
        } else {
            // Katakana loan word, often with a long-vowel mark.
            let len = self.rng.gen_range(2..=5);
            let mut w: String = (0..len).map(|_| self.pick(pools::KATAKANA)).collect();
            if self.rng.gen_bool(0.35) {
                w.push('ー');
            }
            w
        }
    }

    fn korean_word(&mut self) -> String {
        let len = self.rng.gen_range(1..=4);
        (0..len).map(|_| self.hangul_syllable()).collect()
    }

    /// Compose a Hangul syllable block from jamo indices:
    /// `0xAC00 + (initial*21 + vowel)*28 + final`.
    fn hangul_syllable(&mut self) -> char {
        let initial = self.rng.gen_range(0..19u32);
        let vowel = self.rng.gen_range(0..21u32);
        // Bias toward open syllables (no final consonant), as in real text.
        let final_c = if self.rng.gen_bool(0.6) {
            0
        } else {
            self.rng.gen_range(1..28u32)
        };
        char::from_u32(0xAC00 + (initial * 21 + vowel) * 28 + final_c).expect("valid Hangul")
    }

    fn ethiopic_word(&mut self) -> String {
        let len = self.rng.gen_range(2..=4);
        (0..len)
            .map(|_| {
                let base = self.pick(pools::ETHIOPIC_ROW_BASES);
                let order = self.rng.gen_range(0..7u32);
                char::from_u32(base + order).expect("valid Ethiopic")
            })
            .collect()
    }

    fn thai_word(&mut self) -> String {
        let syllables = self.rng.gen_range(1..=3);
        let mut out = String::new();
        for _ in 0..syllables {
            if self.rng.gen_bool(0.25) {
                out.push(self.pick(pools::THAI_PREFIX_VOWELS));
            }
            out.push(self.pick(pools::THAI.base));
            if self.rng.gen_bool(0.6) {
                let roll: f64 = self.rng.gen();
                if roll < 0.5 {
                    out.push(self.pick(pools::THAI.signs));
                } else {
                    out.push(self.pick(pools::THAI.vowels));
                }
            }
        }
        out
    }

    /// Whether this language writes without inter-word spaces.
    pub fn scriptio_continua(&self) -> bool {
        matches!(
            self.language,
            Language::MandarinChinese | Language::Cantonese | Language::Japanese | Language::Thai
        )
    }

    /// `n` words joined by the language's separator (space, or nothing for
    /// scriptio-continua languages).
    pub fn words(&mut self, n: usize) -> String {
        let mut out = String::new();
        self.append_words(n, &mut out);
        out
    }

    /// [`words`](Self::words) written into a caller-owned buffer — the
    /// allocation-diet path: the per-word `Vec<String>` + `join` pair is
    /// replaced by direct pushes, and the caller reuses `out` across
    /// calls. Bytes and RNG draws are identical to `words`.
    pub fn append_words(&mut self, n: usize, out: &mut String) {
        let sep = if self.scriptio_continua() { "" } else { " " };
        for i in 0..n {
            if i > 0 {
                out.push_str(sep);
            }
            let word = self.word();
            out.push_str(&word);
        }
    }

    /// A phrase of between `min` and `max` words (inclusive), separated per
    /// the language's convention. Suitable for labels and alt texts.
    pub fn phrase(&mut self, min: usize, max: usize) -> String {
        let mut out = String::new();
        self.append_phrase(min, max, &mut out);
        out
    }

    /// [`phrase`](Self::phrase) into a caller-owned buffer.
    pub fn append_phrase(&mut self, min: usize, max: usize, out: &mut String) {
        let n = if min >= max {
            min
        } else {
            self.rng.gen_range(min..=max)
        };
        if self.language == Language::Japanese && n > 1 {
            // Insert particles between content words.
            for i in 0..n {
                if i > 0 && self.rng.gen_bool(0.6) {
                    out.push_str(
                        pools::JA_PARTICLES[self.rng.gen_range(0..pools::JA_PARTICLES.len())],
                    );
                }
                let word = self.word();
                out.push_str(&word);
            }
            return;
        }
        self.append_words(n, out);
    }

    /// A full sentence with terminal punctuation appropriate to the script.
    pub fn sentence(&mut self) -> String {
        let mut out = String::new();
        self.append_sentence(&mut out);
        out
    }

    /// [`sentence`](Self::sentence) into a caller-owned buffer.
    pub fn append_sentence(&mut self, out: &mut String) {
        let n = self.rng.gen_range(5..=14);
        self.append_phrase(n, n, out);
        let terminal = match self.language {
            Language::MandarinChinese | Language::Cantonese | Language::Japanese => "。",
            Language::Hindi | Language::Marathi | Language::Nepali => "।",
            Language::ModernStandardArabic
            | Language::EgyptianArabic
            | Language::Urdu
            | Language::Persian => "؟",
            Language::Greek => ".",
            Language::Thai => "",
            _ => ".",
        };
        // Arabic question mark only sometimes; default full stop.
        if terminal == "؟" {
            out.push_str(if self.rng.gen_bool(0.1) { "؟" } else { "." });
        } else {
            out.push_str(terminal);
        }
    }

    /// A paragraph of `sentences` sentences.
    pub fn paragraph(&mut self, sentences: usize) -> String {
        let mut out = String::new();
        self.append_paragraph(sentences, &mut out);
        out
    }

    /// [`paragraph`](Self::paragraph) into a caller-owned buffer.
    pub fn append_paragraph(&mut self, sentences: usize, out: &mut String) {
        for i in 0..sentences {
            if i > 0 {
                out.push(' ');
            }
            self.append_sentence(out);
        }
    }

    /// A short headline (2–7 words, no terminal punctuation).
    pub fn headline(&mut self) -> String {
        if self.language == Language::English {
            // Headline grammar: [adj] noun verb [adj] noun
            let with_adj1 = self.rng.gen_bool(0.6);
            let with_adj2 = self.rng.gen_bool(0.5);
            let mut parts: Vec<&str> = Vec::new();
            if with_adj1 {
                parts.push(self.pick(english::ADJECTIVES));
            }
            parts.push(self.pick(english::NOUNS));
            parts.push(self.pick(english::VERBS));
            if with_adj2 {
                parts.push(self.pick(english::ADJECTIVES));
            }
            parts.push(self.pick(english::NOUNS));
            return parts.join(" ");
        }
        self.phrase(2, 7)
    }

    /// A descriptive alt text: what a photo depicts, in this language.
    /// English alt texts use the concrete subject bank for realism.
    pub fn alt_text(&mut self) -> String {
        if self.language == Language::English {
            return self.pick(english::IMAGE_SUBJECTS).to_string();
        }
        self.phrase(3, 8)
    }

    /// An informative section/navigation label (1–3 words; English uses the
    /// curated multi-word section names so the single-word filter keeps it).
    pub fn section_label(&mut self) -> String {
        if self.language == Language::English {
            return self.pick(english::UI_SECTIONS).to_string();
        }
        self.phrase(1, 3)
    }

    /// Expose the inner RNG for callers that need correlated decisions.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn alpha_pool_for(lang: Language) -> AlphaPool {
    match lang {
        Language::English => pools::LATIN,
        Language::Russian => pools::CYRILLIC,
        Language::Greek => pools::GREEK,
        Language::Hebrew => pools::HEBREW,
        Language::ModernStandardArabic | Language::EgyptianArabic => pools::ARABIC,
        Language::Urdu => pools::URDU,
        Language::Persian => pools::PERSIAN,
        Language::Hindi | Language::Nepali => pools::DEVANAGARI,
        Language::Marathi => pools::MARATHI,
        Language::Bangla => pools::BENGALI,
        Language::Punjabi => pools::GURMUKHI,
        Language::Gujarati => pools::GUJARATI,
        Language::Tamil => pools::TAMIL,
        Language::Telugu => pools::TELUGU,
        Language::Kannada => pools::KANNADA,
        Language::Malayalam => pools::MALAYALAM,
        Language::Sinhala => pools::SINHALA,
        Language::Thai => pools::THAI,
        Language::Burmese => pools::MYANMAR,
        Language::Georgian => pools::GEORGIAN,
        // Han/kana/hangul/ethiopic languages never reach here.
        Language::MandarinChinese
        | Language::Cantonese
        | Language::Japanese
        | Language::Korean
        | Language::Amharic => unreachable!("non-alphabetic language {lang:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::script::ScriptHistogram;

    const ALL_LANGS: &[Language] = &[
        Language::English,
        Language::MandarinChinese,
        Language::Cantonese,
        Language::Japanese,
        Language::Korean,
        Language::Thai,
        Language::Hindi,
        Language::Bangla,
        Language::Russian,
        Language::Greek,
        Language::Hebrew,
        Language::ModernStandardArabic,
        Language::EgyptianArabic,
        Language::Urdu,
        Language::Tamil,
        Language::Telugu,
        Language::Marathi,
        Language::Amharic,
        Language::Burmese,
        Language::Sinhala,
        Language::Georgian,
        Language::Punjabi,
        Language::Gujarati,
        Language::Kannada,
        Language::Malayalam,
        Language::Persian,
        Language::Nepali,
    ];

    #[test]
    fn words_are_nonempty_for_all_languages() {
        for &lang in ALL_LANGS {
            let mut g = TextGenerator::new(lang, 1);
            for _ in 0..50 {
                assert!(!g.word().is_empty(), "{lang:?}");
            }
        }
    }

    #[test]
    fn append_variants_match_returning_variants() {
        // The allocation-diet path must be byte- and RNG-draw-identical.
        for &lang in ALL_LANGS {
            let mut returning = TextGenerator::new(lang, 321);
            let mut appending = TextGenerator::new(lang, 321);
            let mut scratch = String::new();
            for round in 0..5 {
                let expect = format!(
                    "{}|{}|{}|{}",
                    returning.words(3),
                    returning.phrase(2, 6),
                    returning.sentence(),
                    returning.paragraph(2)
                );
                scratch.clear();
                appending.append_words(3, &mut scratch);
                scratch.push('|');
                appending.append_phrase(2, 6, &mut scratch);
                scratch.push('|');
                appending.append_sentence(&mut scratch);
                scratch.push('|');
                appending.append_paragraph(2, &mut scratch);
                assert_eq!(scratch, expect, "{lang:?} round {round}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for &lang in ALL_LANGS {
            let mut a = TextGenerator::new(lang, 99);
            let mut b = TextGenerator::new(lang, 99);
            assert_eq!(a.paragraph(3), b.paragraph(3), "{lang:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TextGenerator::new(Language::Russian, 1);
        let mut b = TextGenerator::new(Language::Russian, 2);
        assert_ne!(a.paragraph(3), b.paragraph(3));
    }

    #[test]
    fn words_carry_evidence_script() {
        for &lang in ALL_LANGS {
            let mut g = TextGenerator::new(lang, 7);
            let text = g.words(40);
            let hist = ScriptHistogram::of(&text);
            let evidence: usize = lang.evidence_scripts().iter().map(|&s| hist.count(s)).sum();
            let total = hist.distinguishing_total();
            assert!(
                evidence as f64 >= total as f64 * 0.95,
                "{lang:?}: evidence {evidence}/{total} in {text:?}"
            );
        }
    }

    #[test]
    fn scriptio_continua_has_no_spaces() {
        for lang in [
            Language::MandarinChinese,
            Language::Japanese,
            Language::Thai,
            Language::Cantonese,
        ] {
            let mut g = TextGenerator::new(lang, 3);
            let s = g.words(8);
            assert!(!s.contains(' '), "{lang:?}: {s:?}");
        }
    }

    #[test]
    fn spaced_languages_have_spaces() {
        for lang in [Language::English, Language::Russian, Language::Hindi] {
            let mut g = TextGenerator::new(lang, 3);
            let s = g.words(8);
            assert_eq!(s.split_whitespace().count(), 8, "{lang:?}");
        }
    }

    #[test]
    fn sentences_have_terminal_punctuation() {
        let mut g = TextGenerator::new(Language::Russian, 5);
        assert!(g.sentence().ends_with('.'));
        let mut g = TextGenerator::new(Language::MandarinChinese, 5);
        assert!(g.sentence().ends_with('。'));
        let mut g = TextGenerator::new(Language::Hindi, 5);
        assert!(g.sentence().ends_with('।'));
    }

    #[test]
    fn phrase_respects_bounds() {
        let mut g = TextGenerator::new(Language::Greek, 11);
        for _ in 0..30 {
            let p = g.phrase(2, 4);
            let n = p.split_whitespace().count();
            assert!((2..=4).contains(&n), "{p:?}");
        }
    }

    #[test]
    fn korean_syllables_are_valid_hangul() {
        let mut g = TextGenerator::new(Language::Korean, 13);
        for _ in 0..100 {
            for c in g.word().chars() {
                let cp = c as u32;
                assert!((0xAC00..=0xD7A3).contains(&cp), "{c}");
            }
        }
    }

    #[test]
    fn english_headline_looks_like_words() {
        let mut g = TextGenerator::new(Language::English, 17);
        for _ in 0..20 {
            let h = g.headline();
            assert!(h.split_whitespace().count() >= 3);
            assert!(h.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn alt_text_is_multiword_descriptive() {
        let mut g = TextGenerator::new(Language::English, 19);
        let alt = g.alt_text();
        assert!(alt.split_whitespace().count() >= 4);
    }
}
