//! Character pools per writing system.
//!
//! Synthetic words are assembled from hand-curated pools of *common* letters
//! of each script — not from the full Unicode block, which would include
//! rare signs, combining marks in illegal positions, and historic letters
//! that real pages essentially never contain. The goal is text that the
//! script-detection heuristic (and a human skimming the corpus) accepts as
//! the target language.

/// Consonant-like and vowel-like pools for alphabetic / abugida scripts.
#[derive(Debug, Clone, Copy)]
pub struct AlphaPool {
    /// Word-forming base letters (consonants for abugidas).
    pub base: &'static [char],
    /// Independent vowels (may start a word). Empty for pure abjads.
    pub vowels: &'static [char],
    /// Dependent signs appended after a base letter (matras, tone marks,
    /// niqqud-free scripts leave this empty).
    pub signs: &'static [char],
    /// Word-final-only variants (Hebrew finals, Greek final sigma).
    pub finals: &'static [char],
}

pub const LATIN: AlphaPool = AlphaPool {
    base: &[
        'b', 'c', 'd', 'f', 'g', 'h', 'j', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'w',
    ],
    vowels: &['a', 'e', 'i', 'o', 'u'],
    signs: &[],
    finals: &[],
};

pub const CYRILLIC: AlphaPool = AlphaPool {
    base: &[
        'б', 'в', 'г', 'д', 'ж', 'з', 'к', 'л', 'м', 'н', 'п', 'р', 'с', 'т', 'ф', 'х', 'ц', 'ч',
        'ш', 'щ',
    ],
    vowels: &['а', 'е', 'и', 'о', 'у', 'ы', 'э', 'ю', 'я'],
    signs: &[],
    finals: &['й', 'ь'],
};

pub const GREEK: AlphaPool = AlphaPool {
    base: &[
        'β', 'γ', 'δ', 'ζ', 'θ', 'κ', 'λ', 'μ', 'ν', 'ξ', 'π', 'ρ', 'σ', 'τ', 'φ', 'χ', 'ψ',
    ],
    vowels: &['α', 'ε', 'η', 'ι', 'ο', 'υ', 'ω'],
    signs: &[],
    finals: &['ς'],
};

pub const HEBREW: AlphaPool = AlphaPool {
    base: &[
        'א', 'ב', 'ג', 'ד', 'ה', 'ו', 'ז', 'ח', 'ט', 'י', 'כ', 'ל', 'מ', 'נ', 'ס', 'ע', 'פ', 'צ',
        'ק', 'ר', 'ש', 'ת',
    ],
    vowels: &[],
    signs: &[],
    finals: &['ך', 'ם', 'ן', 'ף', 'ץ'],
};

pub const ARABIC: AlphaPool = AlphaPool {
    base: &[
        'ا', 'ب', 'ت', 'ث', 'ج', 'ح', 'خ', 'د', 'ذ', 'ر', 'ز', 'س', 'ش', 'ص', 'ض', 'ط', 'ظ', 'ع',
        'غ', 'ف', 'ق', 'ك', 'ل', 'م', 'ن', 'ه', 'و', 'ي',
    ],
    vowels: &[],
    signs: &[],
    finals: &['ة', 'ى'],
};

/// Urdu adds retroflex/aspirate letters; including them at generation time is
/// what lets the langid disambiguation tests distinguish Urdu from MSA.
pub const URDU: AlphaPool = AlphaPool {
    base: &[
        'ا', 'ب', 'پ', 'ت', 'ٹ', 'ج', 'چ', 'ح', 'خ', 'د', 'ڈ', 'ر', 'ڑ', 'ز', 'ژ', 'س', 'ش', 'ع',
        'غ', 'ف', 'ق', 'ک', 'گ', 'ل', 'م', 'ن', 'ں', 'و', 'ہ', 'ھ', 'ی',
    ],
    vowels: &[],
    signs: &[],
    finals: &['ے'],
};

pub const PERSIAN: AlphaPool = AlphaPool {
    base: &[
        'ا', 'ب', 'پ', 'ت', 'ج', 'چ', 'ح', 'خ', 'د', 'ر', 'ز', 'ژ', 'س', 'ش', 'ع', 'غ', 'ف', 'ق',
        'ک', 'گ', 'ل', 'م', 'ن', 'و', 'ه', 'ی',
    ],
    vowels: &[],
    signs: &[],
    finals: &[],
};

pub const DEVANAGARI: AlphaPool = AlphaPool {
    base: &[
        'क', 'ख', 'ग', 'घ', 'च', 'छ', 'ज', 'झ', 'ट', 'ठ', 'ड', 'ढ', 'ण', 'त', 'थ', 'द', 'ध', 'न',
        'प', 'फ', 'ब', 'भ', 'म', 'य', 'र', 'ल', 'व', 'श', 'ष', 'स', 'ह',
    ],
    vowels: &['अ', 'आ', 'इ', 'ई', 'उ', 'ऊ', 'ए', 'ऐ', 'ओ', 'औ'],
    signs: &['ा', 'ि', 'ी', 'ु', 'ू', 'े', 'ै', 'ो', 'ौ', 'ं', '्'],
    finals: &[],
};

/// Marathi shares Devanagari but uses `ळ`; its pool differs only there.
pub const MARATHI: AlphaPool = AlphaPool {
    base: &[
        'क', 'ख', 'ग', 'घ', 'च', 'छ', 'ज', 'झ', 'ट', 'ठ', 'ड', 'ढ', 'ण', 'त', 'थ', 'द', 'ध', 'न',
        'प', 'फ', 'ब', 'भ', 'म', 'य', 'र', 'ल', 'ळ', 'व', 'श', 'ष', 'स', 'ह',
    ],
    vowels: &['अ', 'आ', 'इ', 'ई', 'उ', 'ऊ', 'ए', 'ऐ', 'ओ', 'औ'],
    signs: &['ा', 'ि', 'ी', 'ु', 'ू', 'े', 'ै', 'ो', 'ौ', 'ं', '्'],
    finals: &[],
};

pub const BENGALI: AlphaPool = AlphaPool {
    base: &[
        'ক', 'খ', 'গ', 'ঘ', 'চ', 'ছ', 'জ', 'ঝ', 'ট', 'ঠ', 'ড', 'ঢ', 'ণ', 'ত', 'থ', 'দ', 'ধ', 'ন',
        'প', 'ফ', 'ব', 'ভ', 'ম', 'য', 'র', 'ল', 'শ', 'ষ', 'স', 'হ',
    ],
    vowels: &['অ', 'আ', 'ই', 'ঈ', 'উ', 'ঊ', 'এ', 'ঐ', 'ও', 'ঔ'],
    signs: &['া', 'ি', 'ী', 'ু', 'ূ', 'ে', 'ৈ', 'ো', 'ৌ', 'ং', '্'],
    finals: &[],
};

pub const GURMUKHI: AlphaPool = AlphaPool {
    base: &[
        'ਕ', 'ਖ', 'ਗ', 'ਘ', 'ਚ', 'ਛ', 'ਜ', 'ਝ', 'ਟ', 'ਠ', 'ਡ', 'ਢ', 'ਣ', 'ਤ', 'ਥ', 'ਦ', 'ਧ', 'ਨ',
        'ਪ', 'ਫ', 'ਬ', 'ਭ', 'ਮ', 'ਯ', 'ਰ', 'ਲ', 'ਵ', 'ਸ', 'ਹ',
    ],
    vowels: &['ਅ', 'ਆ', 'ਇ', 'ਈ', 'ਉ', 'ਊ', 'ਏ', 'ਐ', 'ਓ', 'ਔ'],
    signs: &['ਾ', 'ਿ', 'ੀ', 'ੁ', 'ੂ', 'ੇ', 'ੈ', 'ੋ', 'ੌ', 'ੰ'],
    finals: &[],
};

pub const GUJARATI: AlphaPool = AlphaPool {
    base: &[
        'ક', 'ખ', 'ગ', 'ઘ', 'ચ', 'છ', 'જ', 'ઝ', 'ટ', 'ઠ', 'ડ', 'ઢ', 'ણ', 'ત', 'થ', 'દ', 'ધ', 'ન',
        'પ', 'ફ', 'બ', 'ભ', 'મ', 'ય', 'ર', 'લ', 'વ', 'શ', 'ષ', 'સ', 'હ',
    ],
    vowels: &['અ', 'આ', 'ઇ', 'ઈ', 'ઉ', 'ઊ', 'એ', 'ઐ', 'ઓ', 'ઔ'],
    signs: &['ા', 'િ', 'ી', 'ુ', 'ૂ', 'ે', 'ૈ', 'ો', 'ૌ', 'ં'],
    finals: &[],
};

pub const TAMIL: AlphaPool = AlphaPool {
    base: &[
        'க', 'ங', 'ச', 'ஞ', 'ட', 'ண', 'த', 'ந', 'ப', 'ம', 'ய', 'ர', 'ல', 'வ', 'ழ', 'ள', 'ற', 'ன',
    ],
    vowels: &['அ', 'ஆ', 'இ', 'ஈ', 'உ', 'ஊ', 'எ', 'ஏ', 'ஐ', 'ஒ', 'ஓ'],
    signs: &['ா', 'ி', 'ீ', 'ு', 'ூ', 'ெ', 'ே', 'ை', 'ொ', 'ோ'],
    finals: &[],
};

pub const TELUGU: AlphaPool = AlphaPool {
    base: &[
        'క', 'ఖ', 'గ', 'ఘ', 'చ', 'ఛ', 'జ', 'ఝ', 'ట', 'ఠ', 'డ', 'ఢ', 'ణ', 'త', 'థ', 'ద', 'ధ', 'న',
        'ప', 'ఫ', 'బ', 'భ', 'మ', 'య', 'ర', 'ల', 'వ', 'శ', 'ష', 'స', 'హ',
    ],
    vowels: &['అ', 'ఆ', 'ఇ', 'ఈ', 'ఉ', 'ఊ', 'ఎ', 'ఏ', 'ఐ', 'ఒ', 'ఓ'],
    signs: &['ా', 'ి', 'ీ', 'ు', 'ూ', 'ె', 'ే', 'ై', 'ొ', 'ో'],
    finals: &[],
};

pub const KANNADA: AlphaPool = AlphaPool {
    base: &[
        'ಕ', 'ಖ', 'ಗ', 'ಘ', 'ಚ', 'ಛ', 'ಜ', 'ಝ', 'ಟ', 'ಠ', 'ಡ', 'ಢ', 'ಣ', 'ತ', 'ಥ', 'ದ', 'ಧ', 'ನ',
        'ಪ', 'ಫ', 'ಬ', 'ಭ', 'ಮ', 'ಯ', 'ರ', 'ಲ', 'ವ', 'ಶ', 'ಷ', 'ಸ', 'ಹ',
    ],
    vowels: &['ಅ', 'ಆ', 'ಇ', 'ಈ', 'ಉ', 'ಊ', 'ಎ', 'ಏ', 'ಐ', 'ಒ', 'ಓ'],
    signs: &['ಾ', 'ಿ', 'ೀ', 'ು', 'ೂ', 'ೆ', 'ೇ', 'ೈ', 'ೊ', 'ೋ'],
    finals: &[],
};

pub const MALAYALAM: AlphaPool = AlphaPool {
    base: &[
        'ക', 'ഖ', 'ഗ', 'ഘ', 'ച', 'ഛ', 'ജ', 'ഝ', 'ട', 'ഠ', 'ഡ', 'ഢ', 'ണ', 'ത', 'ഥ', 'ദ', 'ധ', 'ന',
        'പ', 'ഫ', 'ബ', 'ഭ', 'മ', 'യ', 'ര', 'ല', 'വ', 'ശ', 'ഷ', 'സ', 'ഹ',
    ],
    vowels: &['അ', 'ആ', 'ഇ', 'ഈ', 'ഉ', 'ഊ', 'എ', 'ഏ', 'ഐ', 'ഒ', 'ഓ'],
    signs: &['ാ', 'ി', 'ീ', 'ു', 'ൂ', 'െ', 'േ', 'ൈ', 'ൊ', 'ോ'],
    finals: &[],
};

pub const SINHALA: AlphaPool = AlphaPool {
    base: &[
        'ක', 'ඛ', 'ග', 'ඝ', 'ච', 'ඡ', 'ජ', 'ඣ', 'ට', 'ඨ', 'ඩ', 'ඪ', 'ණ', 'ත', 'ථ', 'ද', 'ධ', 'න',
        'ප', 'ඵ', 'බ', 'භ', 'ම', 'ය', 'ර', 'ල', 'ව', 'ශ', 'ෂ', 'ස', 'හ',
    ],
    vowels: &['අ', 'ආ', 'ඇ', 'ඉ', 'ඊ', 'උ', 'ඌ', 'එ', 'ඒ', 'ඔ', 'ඕ'],
    signs: &['ා', 'ි', 'ී', 'ු', 'ූ', 'ෙ', 'ේ', 'ො', 'ෝ', 'ං'],
    finals: &[],
};

pub const THAI: AlphaPool = AlphaPool {
    base: &[
        'ก', 'ข', 'ค', 'ง', 'จ', 'ฉ', 'ช', 'ซ', 'ญ', 'ด', 'ต', 'ถ', 'ท', 'ธ', 'น', 'บ', 'ป', 'ผ',
        'ฝ', 'พ', 'ฟ', 'ภ', 'ม', 'ย', 'ร', 'ล', 'ว', 'ศ', 'ษ', 'ส', 'ห', 'อ', 'ฮ',
    ],
    vowels: &['ะ', 'า', 'ำ'],
    signs: &['ิ', 'ี', 'ึ', 'ื', 'ุ', 'ู', '่', '้', '็'],
    finals: &[],
};

/// Thai prefix vowels placed *before* the consonant they modify.
pub const THAI_PREFIX_VOWELS: &[char] = &['เ', 'แ', 'โ', 'ใ', 'ไ'];

pub const MYANMAR: AlphaPool = AlphaPool {
    base: &[
        'က', 'ခ', 'ဂ', 'ဃ', 'င', 'စ', 'ဆ', 'ဇ', 'ည', 'တ', 'ထ', 'ဒ', 'ဓ', 'န', 'ပ', 'ဖ', 'ဗ', 'ဘ',
        'မ', 'ယ', 'ရ', 'လ', 'ဝ', 'သ', 'ဟ', 'အ',
    ],
    vowels: &[],
    signs: &['ာ', 'ိ', 'ီ', 'ု', 'ူ', 'ေ', 'ဲ', 'ံ', '့', 'း'],
    finals: &[],
};

pub const GEORGIAN: AlphaPool = AlphaPool {
    base: &[
        'ბ', 'გ', 'დ', 'ვ', 'ზ', 'თ', 'კ', 'ლ', 'მ', 'ნ', 'პ', 'ჟ', 'რ', 'ს', 'ტ', 'ფ', 'ქ', 'ღ',
        'ყ', 'შ', 'ჩ', 'ც', 'ძ', 'წ', 'ჭ', 'ხ', 'ჯ', 'ჰ',
    ],
    vowels: &['ა', 'ე', 'ი', 'ო', 'უ'],
    signs: &[],
    finals: &[],
};

/// Ethiopic is a syllabary: each consonant row spans 8 consecutive
/// codepoints (7 vowel orders + a rare 8th). We store row bases and derive
/// syllables as `base + order`.
pub const ETHIOPIC_ROW_BASES: &[u32] = &[
    0x1200, // ሀ
    0x1208, // ለ
    0x1210, // ሐ
    0x1218, // መ
    0x1228, // ረ
    0x1230, // ሰ
    0x1240, // ቀ
    0x1260, // በ
    0x1270, // ተ
    0x1290, // ነ
    0x12A0, // አ
    0x12A8, // ከ
    0x12C8, // ወ
    0x12D8, // ዘ
    0x12E8, // የ
    0x12F0, // ደ
    0x1308, // ገ
    0x1320, // ጠ
    0x1340, // ፀ(ጸ row) -- actually ፀ at 1340 is Tsa row
    0x1348, // ፈ
];

/// Common simplified-Chinese ideographs (frequency-ordered head of the
/// standard list, deduplicated).
pub const HAN_SIMPLIFIED: &[char] = &[
    '的', '一', '是', '不', '了', '人', '我', '在', '有', '他', '这', '中', '大', '来', '上', '国',
    '个', '到', '说', '们', '为', '子', '和', '你', '地', '出', '道', '也', '时', '年', '得', '就',
    '那', '要', '下', '以', '生', '会', '自', '着', '去', '之', '过', '家', '学', '对', '可', '她',
    '里', '后', '小', '么', '心', '多', '天', '而', '能', '好', '都', '然', '没', '日', '于', '起',
    '还', '发', '成', '事', '只', '作', '当', '想', '看', '文', '无', '开', '手', '十', '用', '主',
    '行', '方', '又', '如', '前', '所', '本', '见', '经', '头', '面', '公', '同', '三', '已', '老',
    '从', '动', '两', '长', '知', '民', '样', '现', '分', '将', '外', '但', '身', '些', '与', '高',
    '意', '进', '把', '法', '此', '实', '回', '二', '理', '美', '点', '月', '明', '其', '种', '声',
    '全', '工', '己', '话', '儿', '者', '向', '情', '部', '正', '名', '定', '女', '问', '力', '机',
    '给', '等', '几', '很', '业', '最', '间', '新', '什', '打', '便', '位', '因', '重', '被', '走',
    '电', '四', '第', '门', '相', '次', '东', '政', '海', '口', '使', '教', '西', '再', '平', '真',
    '听', '世', '气', '信', '北', '少', '关', '并', '内', '加', '化', '由', '却', '代', '军', '产',
    '入', '先',
];

/// Common traditional-Chinese ideographs plus Cantonese-specific characters
/// (佢 哋 嘅 咗 嚟 …) that distinguish Hong Kong pages.
pub const HAN_TRADITIONAL: &[char] = &[
    '的', '一', '是', '不', '了', '人', '我', '在', '有', '佢', '呢', '中', '大', '嚟', '上', '國',
    '個', '到', '講', '哋', '為', '同', '你', '地', '出', '道', '也', '時', '年', '得', '就', '嗰',
    '要', '下', '以', '生', '會', '自', '去', '之', '過', '家', '學', '對', '可', '裡', '後', '小',
    '乜', '心', '多', '天', '而', '能', '好', '都', '然', '冇', '日', '於', '起', '仲', '發', '成',
    '事', '只', '作', '當', '想', '睇', '文', '無', '開', '手', '十', '用', '主', '行', '方', '又',
    '如', '前', '所', '本', '見', '經', '頭', '面', '公', '三', '已', '老', '從', '動', '兩', '長',
    '知', '民', '樣', '現', '分', '將', '外', '但', '身', '啲', '與', '高', '意', '進', '把', '法',
    '此', '實', '回', '二', '理', '美', '點', '月', '明', '其', '種', '聲', '全', '工', '己', '話',
    '兒', '者', '向', '情', '部', '正', '名', '定', '女', '問', '力', '機', '畀', '等', '幾', '嘅',
    '咗', '噉', '咁', '唔',
];

/// Common kanji for Japanese word stems.
pub const KANJI: &[char] = &[
    '日', '本', '人', '年', '大', '出', '中', '学', '生', '国', '会', '事', '自', '社', '発', '者',
    '地', '業', '方', '新', '場', '員', '立', '開', '手', '力', '問', '代', '明', '動', '京', '目',
    '通', '言', '理', '体', '田', '主', '題', '意', '不', '作', '用', '度', '強', '公', '持', '野',
    '以', '思', '家', '世', '多', '正', '安', '院', '心', '界', '教', '文', '元', '重', '近', '考',
    '画', '海', '売', '知', '道', '集', '別', '物', '使', '品', '計', '特', '私', '始', '朝', '運',
    '終', '台', '広', '住', '真', '有', '口', '少', '町', '料', '工', '建', '空', '急', '止', '送',
    '切', '転', '研', '足', '究', '楽', '起', '着', '店', '病', '質', '待', '試', '族', '銀', '早',
    '映', '親', '験', '英', '医', '仕', '去', '味', '写', '字', '答', '夜', '音', '注', '帰', '古',
    '時', '間', '週', '先', '長', '話', '山', '高', '水', '車', '何', '南', '北', '東', '西', '名',
    '前', '午', '後', '食', '飲', '読', '書', '見', '買', '聞',
];

/// Hiragana pool for particles and native-word syllables.
pub const HIRAGANA: &[char] = &[
    'あ', 'い', 'う', 'え', 'お', 'か', 'き', 'く', 'け', 'こ', 'さ', 'し', 'す', 'せ', 'そ', 'た',
    'ち', 'つ', 'て', 'と', 'な', 'に', 'ぬ', 'ね', 'の', 'は', 'ひ', 'ふ', 'へ', 'ほ', 'ま', 'み',
    'む', 'め', 'も', 'や', 'ゆ', 'よ', 'ら', 'り', 'る', 'れ', 'ろ', 'わ', 'を', 'ん', 'が', 'ぎ',
    'ぐ', 'げ', 'ご', 'ざ', 'じ', 'ず', 'ぜ', 'ぞ', 'だ', 'で', 'ど', 'ば', 'び', 'ぶ', 'べ', 'ぼ',
];

/// Japanese grammatical particles (hiragana) inserted between words.
pub const JA_PARTICLES: &[&str] = &["は", "が", "を", "に", "で", "と", "の", "も", "へ"];

/// Katakana pool for loan words.
pub const KATAKANA: &[char] = &[
    'ア', 'イ', 'ウ', 'エ', 'オ', 'カ', 'キ', 'ク', 'ケ', 'コ', 'サ', 'シ', 'ス', 'セ', 'ソ', 'タ',
    'チ', 'ツ', 'テ', 'ト', 'ナ', 'ニ', 'ヌ', 'ネ', 'ノ', 'ハ', 'ヒ', 'フ', 'ヘ', 'ホ', 'マ', 'ミ',
    'ム', 'メ', 'モ', 'ヤ', 'ユ', 'ヨ', 'ラ', 'リ', 'ル', 'レ', 'ロ', 'ワ', 'ン', 'ガ', 'ギ', 'グ',
    'ゲ', 'ゴ', 'ジ', 'ズ', 'ダ', 'デ', 'ド', 'バ', 'ビ', 'ブ', 'ベ', 'ボ', 'パ', 'ピ', 'プ', 'ペ',
    'ポ',
];

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::script::{script_of, Script};

    fn assert_pool_in(pool: &AlphaPool, script: Script) {
        for &c in pool
            .base
            .iter()
            .chain(pool.vowels.iter())
            .chain(pool.finals.iter())
        {
            assert_eq!(script_of(c), script, "char {c:?} ({:#x})", c as u32);
        }
        // Signs are combining marks; they must at least live in the block.
        for &c in pool.signs {
            assert_eq!(script_of(c), script, "sign {c:?} ({:#x})", c as u32);
        }
    }

    #[test]
    fn pools_live_in_their_scripts() {
        assert_pool_in(&LATIN, Script::Latin);
        assert_pool_in(&CYRILLIC, Script::Cyrillic);
        assert_pool_in(&GREEK, Script::Greek);
        assert_pool_in(&HEBREW, Script::Hebrew);
        assert_pool_in(&ARABIC, Script::Arabic);
        assert_pool_in(&URDU, Script::Arabic);
        assert_pool_in(&PERSIAN, Script::Arabic);
        assert_pool_in(&DEVANAGARI, Script::Devanagari);
        assert_pool_in(&MARATHI, Script::Devanagari);
        assert_pool_in(&BENGALI, Script::Bengali);
        assert_pool_in(&GURMUKHI, Script::Gurmukhi);
        assert_pool_in(&GUJARATI, Script::Gujarati);
        assert_pool_in(&TAMIL, Script::Tamil);
        assert_pool_in(&TELUGU, Script::Telugu);
        assert_pool_in(&KANNADA, Script::Kannada);
        assert_pool_in(&MALAYALAM, Script::Malayalam);
        assert_pool_in(&SINHALA, Script::Sinhala);
        assert_pool_in(&THAI, Script::Thai);
        assert_pool_in(&MYANMAR, Script::Myanmar);
        assert_pool_in(&GEORGIAN, Script::Georgian);
    }

    #[test]
    fn han_pools_are_han() {
        for &c in HAN_SIMPLIFIED
            .iter()
            .chain(HAN_TRADITIONAL.iter())
            .chain(KANJI.iter())
        {
            assert_eq!(script_of(c), Script::Han, "{c}");
        }
    }

    #[test]
    fn kana_pools() {
        for &c in HIRAGANA {
            assert_eq!(script_of(c), Script::Hiragana, "{c}");
        }
        for &c in KATAKANA {
            assert_eq!(script_of(c), Script::Katakana, "{c}");
        }
    }

    #[test]
    fn ethiopic_rows_expand_to_ethiopic() {
        for &base in ETHIOPIC_ROW_BASES {
            for order in 0..7 {
                let c = char::from_u32(base + order).unwrap();
                assert_eq!(script_of(c), Script::Ethiopic, "{c}");
            }
        }
    }

    #[test]
    fn thai_prefix_vowels_are_thai() {
        for &c in THAI_PREFIX_VOWELS {
            assert_eq!(script_of(c), Script::Thai);
        }
    }

    #[test]
    fn urdu_pool_contains_disambiguators() {
        use langcrux_lang::Language;
        for c in Language::Urdu.disambiguation_chars() {
            assert!(
                URDU.base.contains(c) || URDU.finals.contains(c),
                "urdu pool missing {c}"
            );
        }
    }
}
