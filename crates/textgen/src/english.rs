//! Embedded English lexicon.
//!
//! English is the contrast language of the whole study: accessibility texts
//! default to it, visible text mixes it in, and the filter must distinguish
//! informative English ("finance minister presents annual budget") from
//! uninformative English ("button"). Real words — rather than synthetic
//! syllables — matter here because several filter rules are
//! dictionary-driven.

/// Function words used to glue sentences together.
pub const FUNCTION_WORDS: &[&str] = &[
    "the", "a", "an", "of", "in", "on", "at", "for", "with", "from", "to", "and", "or", "by", "as",
    "is", "are", "was", "were", "has", "have", "will", "new", "more", "about", "after", "over",
    "under", "between", "during", "their", "its", "this", "that", "these",
];

/// Content nouns spanning the site archetypes (news, government, commerce,
/// education, health, sport, technology, travel).
pub const NOUNS: &[&str] = &[
    "minister",
    "government",
    "election",
    "economy",
    "market",
    "budget",
    "parliament",
    "policy",
    "report",
    "committee",
    "agreement",
    "investment",
    "project",
    "development",
    "community",
    "region",
    "country",
    "city",
    "village",
    "festival",
    "ceremony",
    "student",
    "school",
    "university",
    "teacher",
    "education",
    "hospital",
    "doctor",
    "health",
    "vaccine",
    "medicine",
    "patient",
    "weather",
    "storm",
    "flood",
    "temperature",
    "season",
    "harvest",
    "farmer",
    "agriculture",
    "price",
    "product",
    "store",
    "delivery",
    "customer",
    "order",
    "discount",
    "payment",
    "account",
    "service",
    "company",
    "business",
    "industry",
    "factory",
    "worker",
    "union",
    "technology",
    "internet",
    "software",
    "network",
    "research",
    "science",
    "energy",
    "water",
    "electricity",
    "transport",
    "railway",
    "airport",
    "road",
    "bridge",
    "team",
    "match",
    "tournament",
    "championship",
    "player",
    "coach",
    "stadium",
    "goal",
    "victory",
    "museum",
    "heritage",
    "culture",
    "language",
    "history",
    "tradition",
    "artist",
    "music",
    "film",
    "theatre",
    "book",
    "author",
    "photograph",
    "exhibition",
    "conference",
    "summit",
    "meeting",
    "announcement",
    "statement",
    "interview",
    "campaign",
    "volunteer",
    "charity",
    "foundation",
    "award",
    "prize",
    "anniversary",
    "celebration",
    "tourism",
    "visitor",
    "hotel",
    "restaurant",
    "recipe",
    "kitchen",
    "garden",
    "family",
    "children",
    "youth",
    "women",
    "citizens",
    "residents",
    "neighborhood",
    "district",
    "province",
    "court",
    "justice",
    "police",
    "security",
    "border",
    "trade",
    "export",
    "import",
    "currency",
    "bank",
    "loan",
    "tax",
    "salary",
    "pension",
    "insurance",
];

/// Verbs (past/present forms usable in headlines).
pub const VERBS: &[&str] = &[
    "announces",
    "launches",
    "opens",
    "closes",
    "wins",
    "loses",
    "visits",
    "signs",
    "approves",
    "rejects",
    "celebrates",
    "inaugurates",
    "expands",
    "reduces",
    "increases",
    "improves",
    "builds",
    "repairs",
    "presents",
    "reveals",
    "reports",
    "confirms",
    "denies",
    "warns",
    "urges",
    "plans",
    "begins",
    "completes",
    "hosts",
    "joins",
    "leads",
    "supports",
    "protects",
    "promotes",
    "discusses",
    "reviews",
    "publishes",
    "releases",
    "introduces",
    "demonstrates",
    "organizes",
    "attends",
    "welcomes",
    "honors",
    "awards",
    "funds",
];

/// Adjectives for descriptive alt text and headlines.
pub const ADJECTIVES: &[&str] = &[
    "national",
    "regional",
    "local",
    "international",
    "annual",
    "historic",
    "modern",
    "traditional",
    "public",
    "private",
    "official",
    "major",
    "minor",
    "famous",
    "popular",
    "recent",
    "upcoming",
    "free",
    "special",
    "cultural",
    "economic",
    "digital",
    "rural",
    "urban",
    "young",
    "senior",
    "global",
    "central",
    "northern",
    "southern",
    "eastern",
    "western",
    "colorful",
    "crowded",
    "quiet",
    "large",
    "small",
    "beautiful",
    "important",
];

/// Concrete visual subjects for image alt texts (what a photo depicts).
pub const IMAGE_SUBJECTS: &[&str] = &[
    "crowd gathered at the central square",
    "officials cutting a ribbon at the opening ceremony",
    "students in a classroom raising their hands",
    "aerial view of the river and the old bridge",
    "vendor arranging fresh vegetables at the market",
    "players celebrating after the winning goal",
    "doctor examining a patient at the clinic",
    "workers assembling parts on the factory floor",
    "traditional dancers performing in festival costumes",
    "sunset over the harbor with fishing boats",
    "children planting trees in the school garden",
    "speaker addressing the conference audience",
    "new train arriving at the renovated station",
    "volunteers distributing relief supplies after the flood",
    "chef plating a traditional dish in the kitchen",
    "monks walking past the ancient temple gates",
    "farmers harvesting rice in terraced fields",
    "night view of the illuminated city skyline",
    "artisan weaving fabric on a wooden loom",
    "family shopping for fruit at the street stall",
];

/// Short UI nouns that are informative in context (product names, section
/// names) — used to generate *informative* single-concept labels that must
/// NOT be discarded by the single-word filter when multi-word.
pub const UI_SECTIONS: &[&str] = &[
    "breaking news",
    "sports results",
    "weather forecast",
    "market prices",
    "exchange rates",
    "travel guide",
    "job listings",
    "event calendar",
    "photo gallery",
    "video library",
    "press releases",
    "annual reports",
    "contact directory",
    "help center",
    "privacy policy",
    "terms of service",
];

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::script::{script_of, Script};

    #[test]
    fn lexicon_is_nonempty_and_lowercase_ascii() {
        for w in FUNCTION_WORDS
            .iter()
            .chain(NOUNS)
            .chain(VERBS)
            .chain(ADJECTIVES)
        {
            assert!(!w.is_empty());
            assert!(
                w.chars().all(|c| c.is_ascii_lowercase()),
                "non-ascii-lower word {w:?}"
            );
        }
    }

    #[test]
    fn no_duplicate_nouns() {
        let mut v = NOUNS.to_vec();
        v.sort_unstable();
        let before = v.len();
        v.dedup();
        assert_eq!(before, v.len());
    }

    #[test]
    fn subjects_are_latin_phrases() {
        for s in IMAGE_SUBJECTS {
            assert!(s.split_whitespace().count() >= 4, "{s}");
            assert!(s.chars().any(|c| script_of(c) == Script::Latin));
        }
    }
}
