//! Wall-clock measurement of the pipeline hot path and the
//! `BENCH_pipeline.json` emitter behind `repro --bench-json`.
//!
//! The report compares [`baseline::build_dataset_seed`] (the seed
//! implementation: per-country threads, composition re-scan, `Vec`-probed
//! histogram, per-site `Kizuki::standard()`) against the fused single-pass
//! engine on the same corpus, at one or more scales. Regenerate with:
//!
//! ```text
//! cargo run --release -p langcrux-bench --bin repro -- --bench-json
//! ```

use crate::{baseline, build_corpus, Scale};
use langcrux_core::{build_dataset, PipelineOptions};
use langcrux_crawl::default_threads;
use serde::Serialize;
use std::time::Instant;

/// Before/after wall-clock for one scale.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleTiming {
    pub scale: String,
    pub sites_per_country: usize,
    /// Seed pipeline (re-scan + per-country threads), milliseconds.
    pub baseline_ms: f64,
    /// Fused single-pass engine with the work-stealing pool, milliseconds.
    pub fused_ms: f64,
    pub speedup: f64,
    /// Records produced (sanity: both pipelines must agree).
    pub records: usize,
}

/// The `BENCH_pipeline.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBenchReport {
    pub bench: String,
    pub seed: u64,
    /// Worker threads the fused pipeline used (= available cores).
    pub threads: usize,
    /// Hardware parallelism of the machine that produced the numbers.
    pub available_cores: usize,
    pub timings: Vec<ScaleTiming>,
    pub notes: String,
}

fn scale_name(scale: Scale) -> String {
    match scale {
        Scale::Quick => "Quick".to_string(),
        Scale::Default => "Default".to_string(),
        Scale::Full => "Full".to_string(),
        Scale::Sites(n) => format!("Sites({n})"),
    }
}

/// Runs per pipeline; the minimum is reported (standard practice for
/// wall-clock numbers on shared/noisy hosts).
const RUNS: usize = 2;

/// Time both pipelines on a fresh corpus at `scale`.
pub fn time_scale(seed: u64, scale: Scale) -> ScaleTiming {
    let corpus = build_corpus(seed, scale);
    let options = PipelineOptions {
        quota: scale.sites_per_country(),
        ..PipelineOptions::default()
    };

    let mut records = 0;
    let mut baseline_ms = f64::INFINITY;
    let mut fused_ms = f64::INFINITY;
    for run in 0..RUNS {
        let start = Instant::now();
        let before = baseline::build_dataset_seed(&corpus, options);
        baseline_ms = baseline_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let after = build_dataset(&corpus, options);
        fused_ms = fused_ms.min(start.elapsed().as_secs_f64() * 1e3);
        records = after.len();

        // The speedup is only meaningful if both pipelines did the same
        // work: full byte equality, checked once (outside the timed spans).
        if run == 0 {
            assert_eq!(
                before.to_json().expect("serialize baseline"),
                after.to_json().expect("serialize fused"),
                "baseline and fused pipelines must produce identical datasets"
            );
        }
    }

    ScaleTiming {
        scale: scale_name(scale),
        sites_per_country: scale.sites_per_country(),
        baseline_ms,
        fused_ms,
        speedup: baseline_ms / fused_ms.max(1e-9),
        records,
    }
}

/// Run the standard report (Quick + Default) and serialize it.
pub fn pipeline_bench_report(seed: u64, scales: &[Scale]) -> PipelineBenchReport {
    let cores = default_threads();
    let timings: Vec<ScaleTiming> = scales.iter().map(|&s| time_scale(seed, s)).collect();
    PipelineBenchReport {
        bench: "pipeline_hot_path/build_dataset".to_string(),
        seed,
        threads: cores,
        available_cores: cores,
        timings,
        notes: format!(
            "baseline = seed pipeline (one thread per country, visible-text re-scan per \
             candidate and per site, Vec-probed histogram, per-site Kizuki construction); \
             fused = single-pass engine on the work-stealing pool. The ≥2x target \
             decomposes into an algorithmic (fusion) share and a parallelism share; with \
             available_parallelism() = {cores} on this host the pool contributes \
             {par}, so the speedup recorded here is the fusion share alone. On any \
             multi-core host the pool multiplies it further (the seed capped at 12 \
             country threads; the pool uses every core and steals across the country \
             tail).",
            par = if cores > 1 {
                "additional parallel speedup"
            } else {
                "nothing (hardware-bound)"
            },
        ),
    }
}

/// Write an already-computed report as `BENCH_pipeline.json` at `path`.
pub fn write_bench_json(path: &str, report: &PipelineBenchReport) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report).expect("serialize bench report");
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_report_shape() {
        let report = pipeline_bench_report(41, &[Scale::Sites(6)]);
        assert_eq!(report.timings.len(), 1);
        let t = &report.timings[0];
        // 6 sites × 12 countries, allowing small-corpus shortfall; exact
        // baseline/fused agreement is asserted inside time_scale.
        assert!(t.records > 60 && t.records <= 72, "records = {}", t.records);
        assert!(t.baseline_ms > 0.0 && t.fused_ms > 0.0);
        assert!(t.speedup > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("pipeline_hot_path"));
    }
}
