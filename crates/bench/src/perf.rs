//! Wall-clock measurement of the pipeline hot path and the
//! `BENCH_pipeline.json` emitter behind `repro --bench-json`.
//!
//! The report compares [`baseline::build_dataset_seed`] (the seed
//! implementation: per-country threads, composition re-scan, `Vec`-probed
//! histogram, per-site `Kizuki::standard()`) against the fused single-pass
//! engine on the same corpus, at one or more scales. Regenerate with:
//!
//! ```text
//! cargo run --release -p langcrux-bench --bin repro -- --bench-json
//! ```

use crate::{baseline, build_corpus, build_corpus_with_plan, render_seed, Scale};
use langcrux_core::dist::{build_dataset_distributed, DistOptions, LocalExecutor, WireBuildConfig};
use langcrux_core::{build_dataset, build_dataset_with_ledger, PipelineOptions};
use langcrux_crawl::{default_threads, extract, extract_streaming, BrowserConfig};
use langcrux_html::parse;
use langcrux_lang::rng;
use langcrux_lang::Country;
use langcrux_net::{ContentVariant, FaultPlan};
use langcrux_webgen::{render, render_into, RenderScratch, SitePlan};
use serde::Serialize;
use std::time::Instant;

/// Before/after wall-clock for one scale.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleTiming {
    pub scale: String,
    pub sites_per_country: usize,
    /// Seed pipeline (re-scan + per-country threads), milliseconds.
    pub baseline_ms: f64,
    /// Fused single-pass engine with the work-stealing pool, milliseconds.
    pub fused_ms: f64,
    pub speedup: f64,
    /// Records produced (sanity: both pipelines must agree).
    pub records: usize,
}

/// Wall-clock of the fused pipeline at one fixed worker count — the
/// parallel share of the speedup, separated from the algorithmic share.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerTiming {
    pub workers: usize,
    pub fused_ms: f64,
    /// Speedup of this worker count over the single-worker run.
    pub speedup_vs_one_worker: f64,
}

/// The `BENCH_pipeline.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBenchReport {
    pub bench: String,
    pub seed: u64,
    /// Worker threads the fused pipeline used (= available cores).
    pub threads: usize,
    /// Hardware parallelism of the machine that produced the numbers.
    pub available_cores: usize,
    pub timings: Vec<ScaleTiming>,
    /// Fused-pipeline wall-clock per worker count at the first scale
    /// (empty on single-core hosts, where the pool cannot contribute).
    pub worker_scaling: Vec<WorkerTiming>,
    /// Per-visit extraction: streaming tokenize→extract vs DOM
    /// materialisation (the PR-3 crawl-path win, isolated).
    pub stream_vs_dom: StreamVsDomTiming,
    /// Per-page generation: pooled render arena vs the preserved
    /// pre-arena renderer (the zero-alloc-render win, isolated).
    pub render: RenderTiming,
    /// Resilience machinery cost on a clean network, plus a HOSTILE-plan
    /// degraded run's ledger headline numbers.
    pub resilience: ResilienceRecord,
    /// Span-tracing cost and coverage: the same build with the trace
    /// session on vs off (CI gates `trace_overhead` at ≤ 1.03).
    pub observability: ObservabilityRecord,
    /// Distributed-coordinator cost and recovery at the first scale
    /// (CI gates `efficiency` at ≥ 0.25).
    pub distributed: DistributedRecord,
    pub notes: String,
}

/// Cost and recovery behaviour of the fault-tolerant distributed build,
/// at one scale.
///
/// Timed against the in-process [`LocalExecutor`] (which rebuilds its
/// own corpus from the wire config, exactly as a worker process would),
/// so the record isolates *coordination* cost — wave planning, unit
/// dispatch, backoff accounting, sequential verdict replay — from
/// process-spawn and HTTP-transport cost, which vary with the host.
/// `efficiency` is `single_process_ms / distributed_ms`; CI gates it at
/// ≥ 0.25 (coordination may cost at most 4× the plain build at smoke
/// scale — generous because units re-execute per-candidate probes that
/// the single-process build amortises across its thread pool). The
/// chaos run re-times the same build under a seeded kill schedule and
/// must still produce the oracle bytes (asserted before recording).
#[derive(Debug, Clone, Serialize)]
pub struct DistributedRecord {
    pub scale: String,
    pub sites_per_country: usize,
    /// Worker slots the coordinator drove.
    pub workers: usize,
    /// Single-process `build_dataset_with_ledger`, milliseconds.
    pub single_process_ms: f64,
    /// Distributed coordinator over the in-process executor, ms.
    pub distributed_ms: f64,
    /// `single_process_ms / distributed_ms` — CI-gated ≥ 0.25.
    pub efficiency: f64,
    /// Work units the coordinator planned / probe waves it ran.
    pub units: u64,
    pub waves: u64,
    /// The same build under a seeded kill schedule, milliseconds.
    pub chaos_ms: f64,
    /// Kills the schedule injected (each one a reassignment).
    pub chaos_reassignments: u64,
}

/// Measure [`DistributedRecord`] at one scale.
pub fn distributed_timing(seed: u64, scale: Scale) -> DistributedRecord {
    let quota = scale.sites_per_country();
    let corpus = build_corpus(seed, scale);
    let options = PipelineOptions {
        quota,
        ..PipelineOptions::default()
    };

    let mut single_process_ms = f64::INFINITY;
    let mut oracle = (String::new(), String::new());
    for _ in 0..RUNS {
        let start = Instant::now();
        let (ds, ledger) = build_dataset_with_ledger(&corpus, options);
        single_process_ms = single_process_ms.min(start.elapsed().as_secs_f64() * 1e3);
        oracle = (ds.to_json().unwrap(), ledger.to_json().unwrap());
    }

    let config = WireBuildConfig::of(&corpus, BrowserConfig::default());
    let executor = LocalExecutor::new(&config);
    let dist_options = DistOptions {
        quota,
        workers: 2,
        ..DistOptions::default()
    };
    let mut distributed_ms = f64::INFINITY;
    let mut stats = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let build =
            build_dataset_distributed(&corpus, &executor, &dist_options).expect("dist build");
        distributed_ms = distributed_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            (
                build.dataset.to_json().unwrap(),
                build.ledger.to_json().unwrap()
            ),
            oracle,
            "distributed build diverged from the single-process oracle"
        );
        stats = Some(build.stats);
    }
    let stats = stats.expect("at least one distributed run");

    // Chaos pass: every unit dies up to twice on a seeded schedule; the
    // recovered bytes must still equal the oracle.
    let chaos_executor = LocalExecutor::with_failures(&config, |key, attempt| {
        attempt < (rng::stream_id(key) % 3) as u32
    });
    let start = Instant::now();
    let chaos =
        build_dataset_distributed(&corpus, &chaos_executor, &dist_options).expect("chaos build");
    let chaos_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        (
            chaos.dataset.to_json().unwrap(),
            chaos.ledger.to_json().unwrap()
        ),
        oracle,
        "chaos-disturbed build diverged from the single-process oracle"
    );

    DistributedRecord {
        scale: scale_name(scale),
        sites_per_country: quota,
        workers: dist_options.workers,
        single_process_ms,
        distributed_ms,
        efficiency: single_process_ms / distributed_ms.max(1e-9),
        units: stats.units_planned,
        waves: stats.waves,
        chaos_ms,
        chaos_reassignments: chaos.stats.reassignments,
    }
}

/// Cost and coverage of the span-tracing layer, at one scale.
///
/// `trace_overhead` is the ratio of a full traced build (session active,
/// every stage span recorded into the per-worker rings) to the identical
/// untraced build on the same corpus — CI gates it at ≤ 1.03, the same
/// bar as the resilience tax. The traced run must also reproduce the
/// untraced dataset byte-for-byte (asserted before timing), so the record
/// doubles as the determinism contract's bench-side witness.
#[derive(Debug, Clone, Serialize)]
pub struct ObservabilityRecord {
    pub scale: String,
    pub sites_per_country: usize,
    /// `build_dataset` with tracing disabled (the default), milliseconds.
    pub disabled_ms: f64,
    /// The same build inside an active trace session, milliseconds.
    pub enabled_ms: f64,
    /// `enabled_ms / disabled_ms` — the tracing tax, CI-gated ≤ 1.03.
    pub trace_overhead: f64,
    /// Spans the traced run recorded across all workers.
    pub spans: usize,
    /// Ring-overflow drops in the traced run (0 at default capacity).
    pub dropped_spans: u64,
    /// Distinct stage names the traced run covered, sorted.
    pub stages: Vec<String>,
}

/// Measure [`ObservabilityRecord`] at one scale.
pub fn observability_timing(seed: u64, scale: Scale) -> ObservabilityRecord {
    use langcrux_obs::trace;

    let corpus = build_corpus(seed, scale);
    let options = PipelineOptions {
        quota: scale.sites_per_country(),
        ..PipelineOptions::default()
    };

    // Determinism contract: a traced build yields the same dataset bytes
    // as the untraced one (checked once, outside the timed spans).
    let untraced = build_dataset(&corpus, options);
    let session = trace::start(trace::TraceConfig::default());
    let traced = build_dataset(&corpus, options);
    let probe_report = session.finish();
    assert_eq!(
        untraced.to_json().expect("serialize untraced"),
        traced.to_json().expect("serialize traced"),
        "tracing changed the dataset bytes"
    );

    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    let mut report = probe_report;
    // Same noise floor as the resilience gate: min-of-3 for a 3% CI bar.
    for _ in 0..RUNS.max(3) {
        let start = Instant::now();
        let ds = build_dataset(&corpus, options);
        disabled_ms = disabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(ds.len());

        let session = trace::start(trace::TraceConfig::default());
        let start = Instant::now();
        let ds = build_dataset(&corpus, options);
        enabled_ms = enabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(ds.len());
        report = session.finish();
    }

    ObservabilityRecord {
        scale: scale_name(scale),
        sites_per_country: scale.sites_per_country(),
        disabled_ms,
        enabled_ms,
        trace_overhead: enabled_ms / disabled_ms.max(1e-9),
        spans: report.span_count() as usize,
        dropped_spans: report.dropped_spans,
        stages: report
            .stage_names()
            .into_iter()
            .map(str::to_string)
            .collect(),
    }
}

/// Cost and behaviour of the resilient crawl engine, at one scale.
///
/// `overhead` is the ratio of the ledger-folding RELIABLE build to the
/// plain one on the same corpus — the price of trace accounting, backoff
/// bookkeeping and unwind guards when nothing fails (CI gates it at
/// ≤ 1.03). The `hostile_*` fields summarize a full degraded run under
/// [`FaultPlan::HOSTILE`] from its [`CrawlLedger`].
///
/// [`CrawlLedger`]: langcrux_core::CrawlLedger
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceRecord {
    pub scale: String,
    pub sites_per_country: usize,
    /// RELIABLE-plan `build_dataset_with_ledger`, milliseconds.
    pub fault_free_ms: f64,
    /// RELIABLE-plan `build_dataset` (ledger discarded), milliseconds.
    pub lean_ms: f64,
    /// `fault_free_ms / lean_ms` — the fault-free resilience tax.
    pub overhead: f64,
    /// HOSTILE-plan `build_dataset_with_ledger`, milliseconds.
    pub hostile_ms: f64,
    /// Records the HOSTILE run still produced.
    pub hostile_records: usize,
    pub hostile_selected: u64,
    /// Quota shortfall summed over countries (0 = quota met everywhere).
    pub hostile_shortfall: u64,
    /// Terminal errors across the taxonomy.
    pub hostile_errors: u64,
    pub hostile_retries: u64,
    pub hostile_breaker_opened: u64,
    pub hostile_truncated_bodies: u64,
    pub hostile_garbled_bodies: u64,
    /// Candidates the replacement rule consumed without selecting.
    pub hostile_replacements: u64,
    pub hostile_max_replacement_run: u64,
}

/// Measure [`ResilienceRecord`] at one scale.
pub fn resilience_timing(seed: u64, scale: Scale) -> ResilienceRecord {
    let quota = scale.sites_per_country();
    let options = PipelineOptions {
        quota,
        ..PipelineOptions::default()
    };

    let reliable = build_corpus_with_plan(seed, scale, FaultPlan::RELIABLE);
    let mut fault_free_ms = f64::INFINITY;
    let mut lean_ms = f64::INFINITY;
    // One extra run over the standard RUNS: the overhead ratio gates CI
    // at 3%, so it needs the noise floor of min-of-3.
    for _ in 0..RUNS.max(3) {
        let start = Instant::now();
        let (ds, ledger) = build_dataset_with_ledger(&reliable, options);
        fault_free_ms = fault_free_ms.min(start.elapsed().as_secs_f64() * 1e3);
        // Restricted/geo-block walls are vantage behaviour and fire even
        // under RELIABLE; only the *injected* transient classes must be
        // silent when every fault chance is zero.
        let injected = ledger.totals.errors.timeouts
            + ledger.totals.errors.resets
            + ledger.totals.errors.server_errors
            + ledger.totals.errors.deadline_exceeded
            + ledger.totals.errors.circuit_open;
        assert_eq!(injected, 0, "RELIABLE run had injected-fault errors");
        std::hint::black_box(ds.len());

        let start = Instant::now();
        let ds = build_dataset(&reliable, options);
        lean_ms = lean_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(ds.len());
    }

    let hostile = build_corpus_with_plan(seed, scale, FaultPlan::HOSTILE);
    let mut hostile_ms = f64::INFINITY;
    let mut records = 0;
    let mut totals = None;
    for _ in 0..RUNS {
        let start = Instant::now();
        let (ds, ledger) = build_dataset_with_ledger(&hostile, options);
        hostile_ms = hostile_ms.min(start.elapsed().as_secs_f64() * 1e3);
        records = ds.len();
        totals = Some(ledger.totals);
    }
    let totals = totals.expect("at least one hostile run");

    ResilienceRecord {
        scale: scale_name(scale),
        sites_per_country: quota,
        fault_free_ms,
        lean_ms,
        overhead: fault_free_ms / lean_ms.max(1e-9),
        hostile_ms,
        hostile_records: records,
        hostile_selected: totals.selected,
        hostile_shortfall: (quota as u64 * Country::STUDY.len() as u64)
            .saturating_sub(totals.selected),
        hostile_errors: totals.errors.total(),
        hostile_retries: totals.retries,
        hostile_breaker_opened: totals.breaker_opened,
        hostile_truncated_bodies: totals.truncated_bodies,
        hostile_garbled_bodies: totals.garbled_bodies,
        hostile_replacements: totals.replacements,
        hostile_max_replacement_run: totals.max_replacement_run,
    }
}

/// Per-page render wall-clock: the pre-arena renderer (fresh generators,
/// fresh output buffer, per-label `String` returns — preserved as
/// `bench::render_seed`) vs the pooled [`RenderScratch`] engine the corpus
/// content path runs. Both produce identical bytes and truth (asserted
/// before timing), so the delta is exactly the allocation churn.
#[derive(Debug, Clone, Serialize)]
pub struct RenderTiming {
    /// Pages in the sample (every study country, both content variants).
    pub pages: usize,
    /// Pre-arena renderer, microseconds per page.
    pub baseline_us_per_page: f64,
    /// Pooled-arena renderer, microseconds per page.
    pub render_us_per_page: f64,
    pub speedup: f64,
}

/// Measure [`RenderTiming`] over a fresh plan sample.
pub fn render_timing(seed: u64) -> RenderTiming {
    let mut plans: Vec<(SitePlan, ContentVariant)> = Vec::new();
    for country in Country::STUDY {
        for index in 0..4u32 {
            let plan = SitePlan::build(seed, country, index, Some(index % 2 == 0));
            for variant in [ContentVariant::Localized, ContentVariant::Global] {
                plans.push((plan.clone(), variant));
            }
        }
    }
    // The comparison is only meaningful if both paths emit the same page.
    let mut scratch = RenderScratch::new();
    let mut out = String::new();
    for (plan, variant) in &plans {
        let (expect_html, expect_truth) = render_seed::render_seed(plan, *variant, "/");
        out.clear();
        let truth = render_into(plan, *variant, "/", &mut scratch, &mut out);
        assert_eq!(out, expect_html, "pooled render diverged from the oracle");
        assert_eq!(truth, expect_truth, "pooled truth diverged from the oracle");
    }

    let mut baseline_s = f64::INFINITY;
    let mut pooled_s = f64::INFINITY;
    for _ in 0..RUNS.max(3) {
        let start = Instant::now();
        for (plan, variant) in &plans {
            std::hint::black_box(render_seed::render_seed(plan, *variant, "/").0.len());
        }
        baseline_s = baseline_s.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for (plan, variant) in &plans {
            out.clear();
            render_into(plan, *variant, "/", &mut scratch, &mut out);
            std::hint::black_box(out.len());
        }
        pooled_s = pooled_s.min(start.elapsed().as_secs_f64());
    }
    let per_page = 1e6 / plans.len() as f64;
    RenderTiming {
        pages: plans.len(),
        baseline_us_per_page: baseline_s * per_page,
        render_us_per_page: pooled_s * per_page,
        speedup: baseline_s / pooled_s.max(1e-12),
    }
}

/// Worker counts to sweep on a host with `cores` cores: powers of two up
/// to the core count, plus the core count itself.
pub fn worker_counts(cores: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut w = 1;
    while w <= cores {
        counts.push(w);
        w *= 2;
    }
    if counts.last() != Some(&cores) {
        counts.push(cores);
    }
    counts
}

/// Time the fused pipeline at each worker count on a fresh corpus.
///
/// Returns an empty vector when `cores <= 1`: with a single hardware
/// thread every worker count degenerates to the same sequential run and
/// the sweep would only record noise (the ROADMAP records the parallel
/// share from multi-core CI hosts instead).
pub fn worker_scaling(seed: u64, scale: Scale, cores: usize) -> Vec<WorkerTiming> {
    if cores <= 1 {
        return Vec::new();
    }
    let corpus = build_corpus(seed, scale);
    let mut timings = Vec::new();
    let mut one_worker_ms = f64::NAN;
    for workers in worker_counts(cores) {
        let options = PipelineOptions {
            quota: scale.sites_per_country(),
            threads: workers,
            ..PipelineOptions::default()
        };
        let mut fused_ms = f64::INFINITY;
        for _ in 0..RUNS {
            let start = Instant::now();
            let ds = build_dataset(&corpus, options);
            fused_ms = fused_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(ds.len());
        }
        if workers == 1 {
            one_worker_ms = fused_ms;
        }
        timings.push(WorkerTiming {
            workers,
            fused_ms,
            speedup_vs_one_worker: one_worker_ms / fused_ms.max(1e-9),
        });
    }
    timings
}

/// Per-visit extraction wall-clock: DOM materialisation (tokenize →
/// tree-build → walk → extract) vs the streaming tokenize→extract path
/// the crawl and serve hot loops run. Both produce identical
/// `PageExtract`s (asserted before timing), so the delta is exactly the
/// cost of materialising tokens and DOM nodes the crawl never reads.
#[derive(Debug, Clone, Serialize)]
pub struct StreamVsDomTiming {
    /// Pages in the sample (every study country, both content variants).
    pub pages: usize,
    /// parse + extract per page, microseconds.
    pub dom_us_per_page: f64,
    /// extract_streaming per page, microseconds.
    pub stream_us_per_page: f64,
    pub speedup: f64,
}

/// Measure [`StreamVsDomTiming`] over a fresh page sample.
pub fn stream_vs_dom(seed: u64) -> StreamVsDomTiming {
    let mut pages: Vec<String> = Vec::new();
    for country in Country::STUDY {
        for index in 0..4u32 {
            let plan = SitePlan::build(seed, country, index, Some(index % 2 == 0));
            for variant in [ContentVariant::Localized, ContentVariant::Global] {
                pages.push(render(&plan, variant, "/").0);
            }
        }
    }
    // The comparison is only meaningful if both paths did the same work.
    for html in &pages {
        assert_eq!(
            extract_streaming(html),
            extract(&parse(html)),
            "streaming extract diverged from the DOM oracle"
        );
    }
    let mut dom_s = f64::INFINITY;
    let mut stream_s = f64::INFINITY;
    for _ in 0..RUNS.max(3) {
        let start = Instant::now();
        for html in &pages {
            std::hint::black_box(extract(&parse(html)).elements.len());
        }
        dom_s = dom_s.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for html in &pages {
            std::hint::black_box(extract_streaming(html).elements.len());
        }
        stream_s = stream_s.min(start.elapsed().as_secs_f64());
    }
    let per_page = 1e6 / pages.len() as f64;
    StreamVsDomTiming {
        pages: pages.len(),
        dom_us_per_page: dom_s * per_page,
        stream_us_per_page: stream_s * per_page,
        speedup: dom_s / stream_s.max(1e-12),
    }
}

fn scale_name(scale: Scale) -> String {
    match scale {
        Scale::Quick => "Quick".to_string(),
        Scale::Default => "Default".to_string(),
        Scale::Full => "Full".to_string(),
        Scale::Sites(n) => format!("Sites({n})"),
    }
}

/// Runs per pipeline; the minimum is reported (standard practice for
/// wall-clock numbers on shared/noisy hosts).
const RUNS: usize = 2;

/// Time both pipelines on a fresh corpus at `scale`.
pub fn time_scale(seed: u64, scale: Scale) -> ScaleTiming {
    let corpus = build_corpus(seed, scale);
    let options = PipelineOptions {
        quota: scale.sites_per_country(),
        ..PipelineOptions::default()
    };

    let mut records = 0;
    let mut baseline_ms = f64::INFINITY;
    let mut fused_ms = f64::INFINITY;
    for run in 0..RUNS {
        let start = Instant::now();
        let before = baseline::build_dataset_seed(&corpus, options);
        baseline_ms = baseline_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let after = build_dataset(&corpus, options);
        fused_ms = fused_ms.min(start.elapsed().as_secs_f64() * 1e3);
        records = after.len();

        // The speedup is only meaningful if both pipelines did the same
        // work: full byte equality, checked once (outside the timed spans).
        if run == 0 {
            assert_eq!(
                before.to_json().expect("serialize baseline"),
                after.to_json().expect("serialize fused"),
                "baseline and fused pipelines must produce identical datasets"
            );
        }
    }

    ScaleTiming {
        scale: scale_name(scale),
        sites_per_country: scale.sites_per_country(),
        baseline_ms,
        fused_ms,
        speedup: baseline_ms / fused_ms.max(1e-9),
        records,
    }
}

/// Run the standard report (Quick + Default) and serialize it.
pub fn pipeline_bench_report(seed: u64, scales: &[Scale]) -> PipelineBenchReport {
    let cores = default_threads();
    let timings: Vec<ScaleTiming> = scales.iter().map(|&s| time_scale(seed, s)).collect();
    // Per-worker-count timings (ROADMAP open item: record the parallel
    // share). The sweep reuses the first requested scale.
    let worker_scaling =
        worker_scaling(seed, scales.first().copied().unwrap_or(Scale::Quick), cores);
    PipelineBenchReport {
        bench: "pipeline_hot_path/build_dataset".to_string(),
        seed,
        threads: cores,
        available_cores: cores,
        timings,
        worker_scaling,
        stream_vs_dom: stream_vs_dom(seed),
        render: render_timing(seed),
        resilience: resilience_timing(seed, scales.first().copied().unwrap_or(Scale::Quick)),
        observability: observability_timing(seed, scales.first().copied().unwrap_or(Scale::Quick)),
        distributed: distributed_timing(seed, scales.first().copied().unwrap_or(Scale::Quick)),
        notes: format!(
            "baseline = seed pipeline (one thread per country, visible-text re-scan per \
             candidate and per site, Vec-probed histogram, per-site Kizuki construction); \
             fused = single-pass engine on the work-stealing pool, with the crawl path's \
             per-visit extraction running the streaming tokenize→extract pass (no token \
             buffer, no DOM node arena — stream_vs_dom isolates that per-visit win \
             against the parse-then-walk oracle on the same pages) and page generation \
             running the pooled zero-alloc render arena over lazily sharded corpora \
             (render isolates that per-page win against the preserved pre-arena \
             renderer; both pipelines fetch through the same lazy corpus, so the \
             end-to-end speedup understates the render share). The ≥2x target \
             decomposes into an algorithmic (fusion) share and a parallelism share; with \
             available_parallelism() = {cores} on this host the pool contributes \
             {par}, so the speedup recorded here is the fusion share alone. On any \
             multi-core host the pool multiplies it further (the seed capped at 12 \
             country threads; the pool uses every core and steals across the country \
             tail). worker_scaling records the fused pipeline per worker count on \
             multi-core hosts, isolating that parallel share. resilience records the \
             resilient crawl engine's fault-free tax (ledger-folding RELIABLE build vs \
             the plain one on the same corpus; CI gates the ratio at 1.03) and the \
             headline ledger numbers of a HOSTILE-plan degraded run at the first scale. \
             observability records the span-tracing tax the same way (traced vs \
             untraced build on the same corpus, byte-identical datasets asserted; CI \
             gates trace_overhead at 1.03) plus the traced run's span count and stage \
             coverage. distributed records the fault-tolerant coordinator's cost over \
             the in-process unit executor at the first scale — byte-identity with the \
             single-process oracle is asserted before recording, clean and under a \
             seeded kill schedule (chaos_ms / chaos_reassignments); CI gates \
             efficiency (single_process_ms / distributed_ms) at 0.25.",
            par = if cores > 1 {
                "additional parallel speedup"
            } else {
                "nothing (hardware-bound)"
            },
        ),
    }
}

/// Write an already-computed report as `BENCH_pipeline.json` at `path`.
pub fn write_bench_json(path: &str, report: &PipelineBenchReport) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report).expect("serialize bench report");
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts_cover_powers_of_two_and_cores() {
        assert_eq!(worker_counts(1), vec![1]);
        assert_eq!(worker_counts(2), vec![1, 2]);
        assert_eq!(worker_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(worker_counts(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn worker_scaling_gated_on_cores() {
        assert!(worker_scaling(5, Scale::Sites(2), 1).is_empty());
        // A forced 2-core sweep runs and records both counts even on a
        // single-core host (timings are then just not informative).
        let sweep = worker_scaling(5, Scale::Sites(2), 2);
        assert_eq!(
            sweep.iter().map(|t| t.workers).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!((sweep[0].speedup_vs_one_worker - 1.0).abs() < 1e-9);
        assert!(sweep.iter().all(|t| t.fused_ms > 0.0));
    }

    #[test]
    fn stream_vs_dom_shape() {
        let t = stream_vs_dom(7);
        // 12 countries × 4 sites × 2 variants.
        assert_eq!(t.pages, 96);
        assert!(t.dom_us_per_page > 0.0 && t.stream_us_per_page > 0.0);
        assert!(t.speedup > 0.0);
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("stream_us_per_page"));
    }

    #[test]
    fn render_timing_shape() {
        let t = render_timing(7);
        // 12 countries × 4 sites × 2 variants.
        assert_eq!(t.pages, 96);
        assert!(t.baseline_us_per_page > 0.0 && t.render_us_per_page > 0.0);
        assert!(t.speedup > 0.0);
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("render_us_per_page"));
        assert!(json.contains("baseline_us_per_page"));
    }

    #[test]
    fn resilience_record_shape() {
        let r = resilience_timing(23, Scale::Sites(5));
        assert_eq!(r.sites_per_country, 5);
        assert!(r.fault_free_ms > 0.0 && r.lean_ms > 0.0 && r.hostile_ms > 0.0);
        assert!(r.overhead > 0.0);
        // The degraded run still completes and selects most of the quota.
        assert!(r.hostile_records > 0);
        assert_eq!(
            r.hostile_selected + r.hostile_shortfall,
            5 * Country::STUDY.len() as u64
        );
        // A HOSTILE plan must actually hurt: errors and replacements > 0.
        assert!(r.hostile_errors > 0, "{r:?}");
        assert!(r.hostile_replacements > 0, "{r:?}");
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("hostile_max_replacement_run"));
    }

    #[test]
    fn observability_record_shape() {
        let r = observability_timing(29, Scale::Sites(4));
        assert_eq!(r.sites_per_country, 4);
        assert!(r.disabled_ms > 0.0 && r.enabled_ms > 0.0);
        assert!(r.trace_overhead > 0.0);
        // A traced build must actually record spans, drop nothing at the
        // default capacity, and cover the orchestration stages.
        assert!(r.spans > 0, "{r:?}");
        assert_eq!(r.dropped_spans, 0, "{r:?}");
        for stage in ["pipeline.build", "crawl.fetch", "webgen.render"] {
            assert!(
                r.stages.iter().any(|s| s == stage),
                "stage {stage} missing from {:?}",
                r.stages
            );
        }
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("trace_overhead"));
    }

    #[test]
    fn distributed_record_shape() {
        let r = distributed_timing(37, Scale::Sites(5));
        assert_eq!(r.sites_per_country, 5);
        assert_eq!(r.workers, 2);
        assert!(r.single_process_ms > 0.0 && r.distributed_ms > 0.0 && r.chaos_ms > 0.0);
        assert!(r.efficiency > 0.0);
        assert!(r.units >= 12, "one unit per country at minimum: {r:?}");
        assert!(r.waves >= 1);
        // The seeded schedule must actually kill something, and byte
        // identity under it is asserted inside distributed_timing.
        assert!(r.chaos_reassignments > 0, "{r:?}");
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("chaos_reassignments"));
        assert!(json.contains("efficiency"));
    }

    #[test]
    fn timing_report_shape() {
        let report = pipeline_bench_report(41, &[Scale::Sites(6)]);
        assert_eq!(report.timings.len(), 1);
        let t = &report.timings[0];
        // 6 sites × 12 countries, allowing small-corpus shortfall; exact
        // baseline/fused agreement is asserted inside time_scale.
        assert!(t.records > 60 && t.records <= 72, "records = {}", t.records);
        assert!(t.baseline_ms > 0.0 && t.fused_ms > 0.0);
        assert!(t.speedup > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("pipeline_hot_path"));
    }
}
