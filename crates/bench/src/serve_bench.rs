//! The serve benchmark behind `repro --serve-bench`: spawn the audit
//! server on an ephemeral loopback port, drive it with the load
//! generator, and emit the machine-readable record `BENCH_serve.json`.
//!
//! Three runs over the same corpus pages quantify what the sharded
//! response cache buys and what the connection governor costs:
//!
//! * **cold** — one request per distinct page: every request misses the
//!   cache and pays the full parse → extract → audit → Kizuki → speak
//!   pipeline.
//! * **hot** — `rounds` further passes over the same pages: every
//!   request answers byte-identical JSON straight from the cache.
//! * **bounded** — the hot workload against a second server whose
//!   governor is at its tightest useful setting (connection cap ==
//!   loadgen connections, accept queue == cap, deadlines armed). The
//!   governor's bookkeeping sits on every request; this run proves the
//!   hot path keeps ≥ 90 % of its throughput with the front door
//!   bounded (`bounded_vs_hot`).
//!
//! The headline number is `hot_vs_cold` (cache-hot req/s over cold
//! req/s); the acceptance bar for the serve subsystem is ≥ 5×.

use crate::Scale;
use langcrux_lang::Country;
use langcrux_net::ContentVariant;
use langcrux_serve::{
    run_idle_load, run_load, IdleLoadRun, LoadGenRun, ServeConfig, ServeCore, StatsSnapshot,
};
use langcrux_webgen::{render, SitePlan};
use serde::Serialize;

/// Workload shape for one serve bench.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Distinct corpus pages (= cold requests).
    pub pages: usize,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Hot passes over the page set after the cold pass.
    pub rounds: usize,
    /// Idle keep-alive fleet size for the high-concurrency runs.
    pub idle_connections: usize,
    /// Hot subset driving audits while the idle fleet rides along.
    pub hot_connections: usize,
    /// Audit requests per high-concurrency measurement pass.
    pub high_requests: usize,
}

impl ServeBenchConfig {
    /// Scale-matched defaults: tiny under `--quick` (CI smoke), larger
    /// otherwise.
    pub fn for_scale(scale: Scale) -> ServeBenchConfig {
        match scale {
            Scale::Quick => ServeBenchConfig {
                pages: 48,
                connections: 4,
                rounds: 4,
                idle_connections: 512,
                hot_connections: 4,
                high_requests: 1024,
            },
            Scale::Sites(n) => ServeBenchConfig {
                pages: n.max(2),
                connections: 4,
                rounds: 4,
                idle_connections: 512,
                hot_connections: 4,
                high_requests: 1024,
            },
            _ => ServeBenchConfig {
                pages: 192,
                connections: 8,
                rounds: 8,
                idle_connections: 1024,
                hot_connections: 8,
                high_requests: 4096,
            },
        }
    }
}

/// The `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    pub bench: String,
    pub seed: u64,
    pub pages: usize,
    pub connections: usize,
    /// Mean page size of the workload, bytes.
    pub mean_page_bytes: usize,
    /// All-miss pass: full pipeline per request.
    pub cold: LoadGenRun,
    /// All-hit passes: sharded-cache lookups only.
    pub hot: LoadGenRun,
    /// Cache-hot req/s over cold req/s (acceptance bar: ≥ 5).
    pub hot_vs_cold: f64,
    /// The hot workload with the connection governor at its tightest
    /// (cap == connections, accept queue == cap, deadlines armed).
    pub bounded: LoadGenRun,
    /// Bounded req/s over hot req/s (acceptance bar: ≥ 0.9 — the
    /// governor must not cost the hot path more than 10 %).
    pub bounded_vs_hot: f64,
    /// Server-side view after the cold+hot run (cache + latency
    /// histogram); the bounded run uses its own server.
    pub server: StatsSnapshot,
    /// Mostly-idle keep-alive fleet + hot subset, per core: the event-
    /// driven reactor must hold its hot throughput flat while the
    /// thread-per-connection oracle may degrade.
    pub high_concurrency: HighConcurrencyReport,
    pub notes: String,
}

/// One core's high-concurrency comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CoreHighConcurrency {
    /// Core name (`threaded` / `reactor`).
    pub core: String,
    /// Hot-only baseline: the hot subset alone, no idle fleet.
    pub hot_baseline: LoadGenRun,
    /// The same hot subset with the idle fleet held open.
    pub high: IdleLoadRun,
    /// `high.hot.req_per_sec / hot_baseline.req_per_sec` — the flatness
    /// measure. CI gates the reactor's ratio (≥ 0.95 on the committed
    /// record); the threaded oracle's ratio is recorded, not gated.
    pub flat_ratio: f64,
}

/// The `high_concurrency` section of `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct HighConcurrencyReport {
    pub idle_connections: usize,
    pub hot_connections: usize,
    /// Audit requests per measurement pass.
    pub requests: usize,
    /// One entry per available core (one on non-Linux, where the
    /// reactor falls back to the threaded core).
    pub cores: Vec<CoreHighConcurrency>,
}

/// Run the high-concurrency comparison: for each core, measure the hot
/// subset alone, then re-measure with the idle fleet held open.
pub fn high_concurrency_report(seed: u64, config: ServeBenchConfig) -> HighConcurrencyReport {
    // A small cache-hot page set (same generator and seed as the main
    // passes): the measurement isolates connection-engine overhead, not
    // audit compute.
    let pages = bench_pages(seed, 24);
    let mut available: Vec<ServeCore> = ServeCore::ALL.iter().map(|c| c.effective()).collect();
    available.dedup();
    let cores = available
        .into_iter()
        .map(|core| {
            let server = langcrux_serve::spawn(ServeConfig {
                core,
                cache_shards: 8,
                cache_capacity_per_shard: 64,
                max_connections: config.idle_connections + config.hot_connections + 16,
                accept_queue: 64,
                // The idle fleet must outlive the measurement window.
                idle_timeout: std::time::Duration::from_secs(120),
                ..ServeConfig::default()
            })
            .expect("spawn high-concurrency server");
            // Warm the cache so both passes measure pure hit throughput.
            run_load(server.addr(), &pages, config.hot_connections, pages.len())
                .expect("high-concurrency warm-up");
            // Interleaved best-of-3 on both sides: the flatness claim
            // compares the engine's *capacity* with and without the idle
            // fleet, and a single pass on a shared host measures the
            // scheduler as much as the server. Alternating
            // baseline/high passes exposes both measurements to the same
            // drift (thermal, page cache, sibling load).
            let mut hot_baseline: Option<LoadGenRun> = None;
            let mut high: Option<IdleLoadRun> = None;
            for _ in 0..3 {
                let pass = run_load(
                    server.addr(),
                    &pages,
                    config.hot_connections,
                    config.high_requests,
                )
                .expect("hot baseline");
                if hot_baseline
                    .as_ref()
                    .is_none_or(|best| pass.req_per_sec > best.req_per_sec)
                {
                    hot_baseline = Some(pass);
                }
                let pass = run_idle_load(
                    server.addr(),
                    &pages,
                    config.idle_connections,
                    config.hot_connections,
                    config.high_requests,
                )
                .expect("high-concurrency run");
                if high
                    .as_ref()
                    .is_none_or(|best| pass.hot.req_per_sec > best.hot.req_per_sec)
                {
                    high = Some(pass);
                }
            }
            let hot_baseline = hot_baseline.expect("three baseline passes");
            let high = high.expect("three high-concurrency passes");
            server.shutdown();
            let flat_ratio = high.hot.req_per_sec / hot_baseline.req_per_sec.max(1e-9);
            CoreHighConcurrency {
                core: core.name().to_string(),
                hot_baseline,
                high,
                flat_ratio,
            }
        })
        .collect();
    HighConcurrencyReport {
        idle_connections: config.idle_connections,
        hot_connections: config.hot_connections,
        requests: config.high_requests,
        cores,
    }
}

/// Render `pages` distinct localized corpus pages, cycling countries so
/// the workload spans every script family the study covers.
pub fn bench_pages(seed: u64, pages: usize) -> Vec<String> {
    (0..pages)
        .map(|i| {
            let country = Country::STUDY[i % Country::STUDY.len()];
            let plan = SitePlan::build(seed, country, i as u32, Some(true));
            render(&plan, ContentVariant::Localized, "/").0
        })
        .collect()
}

/// Spawn a server, run the cold and hot passes, and assemble the report.
pub fn serve_bench_report(seed: u64, config: ServeBenchConfig) -> ServeBenchReport {
    let pages = bench_pages(seed, config.pages);
    let mean_page_bytes = pages.iter().map(String::len).sum::<usize>() / pages.len().max(1);

    let server = langcrux_serve::spawn(ServeConfig {
        // Capacity sized to hold the whole working set so the hot pass
        // measures pure hit throughput, not eviction churn.
        cache_shards: 8,
        cache_capacity_per_shard: config.pages.div_ceil(8).max(64),
        ..ServeConfig::default()
    })
    .expect("spawn audit server on loopback");

    let cold = run_load(server.addr(), &pages, config.connections, pages.len()).expect("cold run");
    let hot = run_load(
        server.addr(),
        &pages,
        config.connections,
        pages.len() * config.rounds.max(1),
    )
    .expect("hot run");
    let stats = server.shutdown();

    // The bounded pass: a fresh server with the governor at its tightest
    // useful setting. One uncounted warm-up pass fills the cache so the
    // measured pass is the hot workload again, now with cap bookkeeping
    // and deadlines on every request. The accept queue equals the
    // connection count so the measured connections park (bounded
    // backpressure) rather than shed while the warm-up connections'
    // slots are still being released.
    let bounded_server = langcrux_serve::spawn(ServeConfig {
        cache_shards: 8,
        cache_capacity_per_shard: config.pages.div_ceil(8).max(64),
        max_connections: config.connections,
        accept_queue: config.connections,
        ..ServeConfig::default()
    })
    .expect("spawn bounded audit server on loopback");
    run_load(
        bounded_server.addr(),
        &pages,
        config.connections,
        pages.len(),
    )
    .expect("bounded warm-up");
    let bounded = run_load(
        bounded_server.addr(),
        &pages,
        config.connections,
        pages.len() * config.rounds.max(1),
    )
    .expect("bounded run");
    bounded_server.shutdown();

    let high_concurrency = high_concurrency_report(seed, config);

    let hot_vs_cold = hot.req_per_sec / cold.req_per_sec.max(1e-9);
    let bounded_vs_hot = bounded.req_per_sec / hot.req_per_sec.max(1e-9);
    ServeBenchReport {
        bench: "serve/audit_loopback".to_string(),
        seed,
        pages: config.pages,
        connections: config.connections,
        mean_page_bytes,
        cold,
        hot,
        hot_vs_cold,
        bounded,
        bounded_vs_hot,
        server: stats,
        high_concurrency,
        notes: format!(
            "cold = one POST /v1/audit per distinct corpus page (every request is a cache \
             miss and runs the full parse+extract+audit+Kizuki+speak pipeline); hot = {} \
             further passes over the same pages answered from the sharded LRU response \
             cache; bounded = the hot workload against a server with the connection \
             governor at connection cap == {} (loadgen connection count), accept queue == \
             cap, and request/write deadlines armed. high_concurrency = per serve core \
             ({} idle keep-alive connections held open while {} hot connections drive \
             cache-hot audits; flat_ratio compares against the same hot subset with no \
             idle fleet). Loopback HTTP/1.1 keep-alive, {} concurrent connections; \
             latencies are client-side.",
            config.rounds.max(1),
            config.connections,
            config.idle_connections,
            config.hot_connections,
            config.connections,
        ),
    }
}

/// Write an already-computed report as JSON at `path`.
pub fn write_serve_json(path: &str, report: &ServeBenchReport) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report).expect("serialize serve report");
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_pages_are_distinct_and_multilingual() {
        let pages = bench_pages(77, 24);
        assert_eq!(pages.len(), 24);
        let distinct: std::collections::HashSet<&String> = pages.iter().collect();
        assert_eq!(distinct.len(), 24, "cold pass needs all-distinct bodies");
        assert!(pages.iter().all(|p| p.len() > 1_000));
    }

    #[test]
    fn serve_bench_smoke_and_cache_accounting() {
        let report = serve_bench_report(
            41,
            ServeBenchConfig {
                pages: 10,
                connections: 2,
                rounds: 3,
                idle_connections: 24,
                hot_connections: 2,
                high_requests: 20,
            },
        );
        assert_eq!(report.cold.requests, 10);
        assert_eq!(report.hot.requests, 30);
        assert_eq!(report.cold.errors + report.hot.errors, 0);
        // Every cold request missed; every hot request hit.
        assert_eq!(report.server.cache.misses, 10);
        assert_eq!(report.server.cache.hits, 30);
        assert_eq!(report.server.requests.audit, 40);
        assert!(
            report.hot_vs_cold > 1.0,
            "hot {} <= cold {}",
            report.hot.req_per_sec,
            report.cold.req_per_sec
        );
        // The bounded pass ran the same hot workload under the governor
        // with zero shed capacity — every request must still succeed.
        assert_eq!(report.bounded.requests, 30);
        assert_eq!(report.bounded.errors, 0);
        assert!(report.bounded_vs_hot > 0.0);
        // The high-concurrency section covers every available core and
        // the idle fleet really rode along on each.
        assert!(!report.high_concurrency.cores.is_empty());
        for entry in &report.high_concurrency.cores {
            assert_eq!(entry.high.idle_connections, 24);
            assert_eq!(entry.high.hot.requests, 20);
            assert_eq!(entry.hot_baseline.errors + entry.high.hot.errors, 0);
            assert!(entry.flat_ratio > 0.0);
        }
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"hot_vs_cold\""));
        assert!(json.contains("\"bounded_vs_hot\""));
        assert!(json.contains("\"high_concurrency\""));
        assert!(json.contains("\"flat_ratio\""));
    }
}
