//! The serve benchmark behind `repro --serve-bench`: spawn the audit
//! server on an ephemeral loopback port, drive it with the load
//! generator, and emit the machine-readable record `BENCH_serve.json`.
//!
//! Three runs over the same corpus pages quantify what the sharded
//! response cache buys and what the connection governor costs:
//!
//! * **cold** — one request per distinct page: every request misses the
//!   cache and pays the full parse → extract → audit → Kizuki → speak
//!   pipeline.
//! * **hot** — `rounds` further passes over the same pages: every
//!   request answers byte-identical JSON straight from the cache.
//! * **bounded** — the hot workload against a second server whose
//!   governor is at its tightest useful setting (connection cap ==
//!   loadgen connections, accept queue == cap, deadlines armed). The
//!   governor's bookkeeping sits on every request; this run proves the
//!   hot path keeps ≥ 90 % of its throughput with the front door
//!   bounded (`bounded_vs_hot`).
//!
//! The headline number is `hot_vs_cold` (cache-hot req/s over cold
//! req/s); the acceptance bar for the serve subsystem is ≥ 5×.

use crate::Scale;
use langcrux_lang::Country;
use langcrux_net::ContentVariant;
use langcrux_serve::{run_load, LoadGenRun, ServeConfig, StatsSnapshot};
use langcrux_webgen::{render, SitePlan};
use serde::Serialize;

/// Workload shape for one serve bench.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Distinct corpus pages (= cold requests).
    pub pages: usize,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Hot passes over the page set after the cold pass.
    pub rounds: usize,
}

impl ServeBenchConfig {
    /// Scale-matched defaults: tiny under `--quick` (CI smoke), larger
    /// otherwise.
    pub fn for_scale(scale: Scale) -> ServeBenchConfig {
        match scale {
            Scale::Quick => ServeBenchConfig {
                pages: 48,
                connections: 4,
                rounds: 4,
            },
            Scale::Sites(n) => ServeBenchConfig {
                pages: n.max(2),
                connections: 4,
                rounds: 4,
            },
            _ => ServeBenchConfig {
                pages: 192,
                connections: 8,
                rounds: 8,
            },
        }
    }
}

/// The `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    pub bench: String,
    pub seed: u64,
    pub pages: usize,
    pub connections: usize,
    /// Mean page size of the workload, bytes.
    pub mean_page_bytes: usize,
    /// All-miss pass: full pipeline per request.
    pub cold: LoadGenRun,
    /// All-hit passes: sharded-cache lookups only.
    pub hot: LoadGenRun,
    /// Cache-hot req/s over cold req/s (acceptance bar: ≥ 5).
    pub hot_vs_cold: f64,
    /// The hot workload with the connection governor at its tightest
    /// (cap == connections, accept queue == cap, deadlines armed).
    pub bounded: LoadGenRun,
    /// Bounded req/s over hot req/s (acceptance bar: ≥ 0.9 — the
    /// governor must not cost the hot path more than 10 %).
    pub bounded_vs_hot: f64,
    /// Server-side view after the cold+hot run (cache + latency
    /// histogram); the bounded run uses its own server.
    pub server: StatsSnapshot,
    pub notes: String,
}

/// Render `pages` distinct localized corpus pages, cycling countries so
/// the workload spans every script family the study covers.
pub fn bench_pages(seed: u64, pages: usize) -> Vec<String> {
    (0..pages)
        .map(|i| {
            let country = Country::STUDY[i % Country::STUDY.len()];
            let plan = SitePlan::build(seed, country, i as u32, Some(true));
            render(&plan, ContentVariant::Localized, "/").0
        })
        .collect()
}

/// Spawn a server, run the cold and hot passes, and assemble the report.
pub fn serve_bench_report(seed: u64, config: ServeBenchConfig) -> ServeBenchReport {
    let pages = bench_pages(seed, config.pages);
    let mean_page_bytes = pages.iter().map(String::len).sum::<usize>() / pages.len().max(1);

    let server = langcrux_serve::spawn(ServeConfig {
        // Capacity sized to hold the whole working set so the hot pass
        // measures pure hit throughput, not eviction churn.
        cache_shards: 8,
        cache_capacity_per_shard: config.pages.div_ceil(8).max(64),
        ..ServeConfig::default()
    })
    .expect("spawn audit server on loopback");

    let cold = run_load(server.addr(), &pages, config.connections, pages.len()).expect("cold run");
    let hot = run_load(
        server.addr(),
        &pages,
        config.connections,
        pages.len() * config.rounds.max(1),
    )
    .expect("hot run");
    let stats = server.shutdown();

    // The bounded pass: a fresh server with the governor at its tightest
    // useful setting. One uncounted warm-up pass fills the cache so the
    // measured pass is the hot workload again, now with cap bookkeeping
    // and deadlines on every request. The accept queue equals the
    // connection count so the measured connections park (bounded
    // backpressure) rather than shed while the warm-up connections'
    // slots are still being released.
    let bounded_server = langcrux_serve::spawn(ServeConfig {
        cache_shards: 8,
        cache_capacity_per_shard: config.pages.div_ceil(8).max(64),
        max_connections: config.connections,
        accept_queue: config.connections,
        ..ServeConfig::default()
    })
    .expect("spawn bounded audit server on loopback");
    run_load(
        bounded_server.addr(),
        &pages,
        config.connections,
        pages.len(),
    )
    .expect("bounded warm-up");
    let bounded = run_load(
        bounded_server.addr(),
        &pages,
        config.connections,
        pages.len() * config.rounds.max(1),
    )
    .expect("bounded run");
    bounded_server.shutdown();

    let hot_vs_cold = hot.req_per_sec / cold.req_per_sec.max(1e-9);
    let bounded_vs_hot = bounded.req_per_sec / hot.req_per_sec.max(1e-9);
    ServeBenchReport {
        bench: "serve/audit_loopback".to_string(),
        seed,
        pages: config.pages,
        connections: config.connections,
        mean_page_bytes,
        cold,
        hot,
        hot_vs_cold,
        bounded,
        bounded_vs_hot,
        server: stats,
        notes: format!(
            "cold = one POST /v1/audit per distinct corpus page (every request is a cache \
             miss and runs the full parse+extract+audit+Kizuki+speak pipeline); hot = {} \
             further passes over the same pages answered from the sharded LRU response \
             cache; bounded = the hot workload against a server with the connection \
             governor at connection cap == {} (loadgen connection count), accept queue == \
             cap, and request/write deadlines armed. Loopback HTTP/1.1 keep-alive, {} \
             concurrent connections; latencies are client-side.",
            config.rounds.max(1),
            config.connections,
            config.connections,
        ),
    }
}

/// Write an already-computed report as JSON at `path`.
pub fn write_serve_json(path: &str, report: &ServeBenchReport) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report).expect("serialize serve report");
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_pages_are_distinct_and_multilingual() {
        let pages = bench_pages(77, 24);
        assert_eq!(pages.len(), 24);
        let distinct: std::collections::HashSet<&String> = pages.iter().collect();
        assert_eq!(distinct.len(), 24, "cold pass needs all-distinct bodies");
        assert!(pages.iter().all(|p| p.len() > 1_000));
    }

    #[test]
    fn serve_bench_smoke_and_cache_accounting() {
        let report = serve_bench_report(
            41,
            ServeBenchConfig {
                pages: 10,
                connections: 2,
                rounds: 3,
            },
        );
        assert_eq!(report.cold.requests, 10);
        assert_eq!(report.hot.requests, 30);
        assert_eq!(report.cold.errors + report.hot.errors, 0);
        // Every cold request missed; every hot request hit.
        assert_eq!(report.server.cache.misses, 10);
        assert_eq!(report.server.cache.hits, 30);
        assert_eq!(report.server.requests.audit, 40);
        assert!(
            report.hot_vs_cold > 1.0,
            "hot {} <= cold {}",
            report.hot.req_per_sec,
            report.cold.req_per_sec
        );
        // The bounded pass ran the same hot workload under the governor
        // with zero shed capacity — every request must still succeed.
        assert_eq!(report.bounded.requests, 30);
        assert_eq!(report.bounded.errors, 0);
        assert!(report.bounded_vs_hot > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"hot_vs_cold\""));
        assert!(json.contains("\"bounded_vs_hot\""));
    }
}
