//! The seed implementation's hot path, preserved verbatim-in-spirit as the
//! benchmark baseline for `BENCH_pipeline.json`.
//!
//! The fused single-pass engine (PR 1) changed three things at once:
//!
//! 1. selection re-scanned `visible_text` with `ScriptHistogram::of` after
//!    extraction had already walked every character (now: histogram carried
//!    on `PageExtract` from the same DOM walk);
//! 2. the histogram stored counts in a `Vec<(Script, usize)>` probed
//!    linearly per character, and `script_of` ran a branch chain before a
//!    three-way-compare binary search (now: direct ASCII table + one
//!    `partition_point` search, fixed-size array counts);
//! 3. `process_site` rebuilt `Kizuki::standard()` per site and walked each
//!    label once for `char_len` and again for `word_count` (now: hoisted
//!    engine, one fused pass), with one worker thread per country (now: a
//!    shared work-stealing pool).
//!
//! [`build_dataset_seed`] reproduces that original pipeline — including a
//! local copy of the seed's `Vec`-backed histogram — so `repro
//! --bench-json` can report a true before/after on the same corpus. It is
//! benchmarking scaffolding, not a supported pipeline entry point.

use langcrux_audit::{audit_page, AuditReport, OTHER_AUDITS_WEIGHT};
use langcrux_core::dataset::{
    CountryCrawlSummary, Dataset, ElementRecord, ExtremeExample, MismatchExample, SiteRecord,
    TextState,
};
use langcrux_core::selection::{SelectedSite, SelectionStats, NATIVE_CONTENT_THRESHOLD_PCT};
use langcrux_core::PipelineOptions;
use langcrux_crawl::{char_len, word_count, Browser, PageExtract};
use langcrux_filter::{DiscardCategory, CONTINUA_KEEP_LEN, SINGLE_WORD_KEEP_LEN};
use langcrux_kizuki::{AltLanguageCheck, CheckOutcome, Kizuki, LanguageAwareCheck};
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::script::{Script, SCRIPT_RANGES};
use langcrux_lang::{dict, Country, Language};
use langcrux_langid::{classify_label, Composition, LabelLanguage};
use langcrux_net::{vpn_vantage, Url};
use langcrux_webgen::Corpus;

/// The seed's per-character classifier: special-case branch chain, then a
/// binary search with a three-way comparator over `SCRIPT_RANGES`.
fn script_of_seed(c: char) -> Script {
    let cp = c as u32;
    if cp < 0x80 {
        return if c.is_ascii_alphabetic() {
            Script::Latin
        } else {
            Script::Common
        };
    }
    if cp == 0x00D7 || cp == 0x00F7 {
        return Script::Common;
    }
    if (0x2000..=0x2BFF).contains(&cp) || (0x3000..=0x303F).contains(&cp) {
        return Script::Common;
    }
    if c.is_whitespace() {
        return Script::Common;
    }
    match SCRIPT_RANGES.binary_search_by(|range| {
        if cp < range.start {
            std::cmp::Ordering::Greater
        } else if cp > range.end {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }) {
        Ok(idx) => SCRIPT_RANGES[idx].script,
        Err(_) => Script::Unknown,
    }
}

/// The seed's histogram: per-character linear probe over a growing vec.
#[derive(Default)]
struct SeedHistogram {
    counts: Vec<(Script, usize)>,
}

impl SeedHistogram {
    fn of(text: &str) -> Self {
        let mut hist = SeedHistogram::default();
        for c in text.chars() {
            match script_of_seed(c) {
                Script::Common | Script::Unknown => {}
                s => match hist.counts.iter_mut().find(|(sc, _)| *sc == s) {
                    Some((_, n)) => *n += 1,
                    None => hist.counts.push((s, 1)),
                },
            }
        }
        hist
    }

    fn count(&self, script: Script) -> usize {
        self.counts
            .iter()
            .find(|(s, _)| *s == script)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    fn distinguishing_total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }
}

/// The seed's composition: full re-scan of the already-extracted text.
fn composition_seed(text: &str, native: Language) -> Composition {
    let hist = SeedHistogram::of(text);
    let total = hist.distinguishing_total();
    if total == 0 {
        return Composition::EMPTY;
    }
    let native_count: usize = native
        .evidence_scripts()
        .iter()
        .map(|&s| hist.count(s))
        .sum();
    let english_count = hist.count(Script::Latin);
    let other_count = total.saturating_sub(native_count + english_count);
    let pct = |n: usize| n as f64 * 100.0 / total as f64;
    Composition {
        native_pct: pct(native_count),
        english_pct: pct(english_count),
        other_pct: pct(other_count),
        total,
    }
}

/// The seed's histogram over more methods (dominant + kana counts), still
/// with the per-character linear probe.
impl SeedHistogram {
    fn dominant(&self) -> Option<Script> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(s, _)| *s)
    }
}

/// The seed's `count_chars`: a linear `contains` probe per character.
fn count_chars_seed(text: &str, set: &[char]) -> usize {
    text.chars().filter(|c| set.contains(c)).count()
}

/// The seed's `detect`: fresh full-text histogram, linear-scan
/// disambiguation sets.
fn detect_seed(text: &str) -> Option<Language> {
    let hist = SeedHistogram::of(text);
    if hist.distinguishing_total() == 0 {
        return None;
    }
    let dominant = hist.dominant()?;
    let candidates = || {
        Language::CANDIDATE_POOL
            .iter()
            .copied()
            .chain(std::iter::once(Language::English))
    };
    match dominant {
        Script::Arabic => {
            let urdu = count_chars_seed(text, Language::Urdu.disambiguation_chars());
            let persian = count_chars_seed(text, Language::Persian.disambiguation_chars());
            let urdu_only = count_chars_seed(text, &['ٹ', 'ڈ', 'ڑ', 'ں', 'ھ', 'ہ', 'ے']);
            Some(if urdu_only > 0 {
                Language::Urdu
            } else if persian > 0 && urdu == persian {
                Language::Persian
            } else if urdu > 0 {
                Language::Urdu
            } else {
                Language::ModernStandardArabic
            })
        }
        Script::Devanagari => Some(
            if count_chars_seed(text, Language::Marathi.disambiguation_chars()) > 0 {
                Language::Marathi
            } else {
                Language::Hindi
            },
        ),
        Script::Han | Script::Hiragana | Script::Katakana => {
            let kana = hist.count(Script::Hiragana) + hist.count(Script::Katakana);
            if kana > 0 {
                return Some(Language::Japanese);
            }
            const CANTONESE_MARKERS: &[char] = &[
                '嘅', '咗', '哋', '冇', '嚟', '睇', '乜', '噉', '咁', '唔', '畀', '嗰', '啲',
            ];
            Some(if count_chars_seed(text, CANTONESE_MARKERS) > 0 {
                Language::Cantonese
            } else {
                Language::MandarinChinese
            })
        }
        script => candidates().find(|l| l.primary_script() == script),
    }
}

/// The seed's `page_language`: full visible-text re-scan per site.
fn page_language_seed(extract: &PageExtract) -> Option<Language> {
    if let Some(lang) = detect_seed(&extract.visible_text) {
        return Some(lang);
    }
    let declared = extract.declared_lang.as_deref()?;
    let primary = declared.split(['-', '_']).next()?.to_ascii_lowercase();
    Language::CANDIDATE_POOL
        .iter()
        .copied()
        .chain(std::iter::once(Language::English))
        .find(|l| l.tag().split('-').next() == Some(primary.as_str()))
}

/// The seed's `Kizuki::evaluate` with a freshly built per-site check set
/// (the seed constructed `Kizuki::standard()` inside the site loop).
fn kizuki_new_score_seed(extract: &PageExtract, base: &AuditReport) -> f64 {
    let checks: Vec<Box<dyn LanguageAwareCheck>> = vec![Box::new(AltLanguageCheck::default())];
    let outcomes: Vec<CheckOutcome> = match page_language_seed(extract) {
        Some(lang) => checks.iter().map(|c| c.evaluate(extract, lang)).collect(),
        None => Vec::new(),
    };
    let mut earned = OTHER_AUDITS_WEIGHT;
    let mut total = OTHER_AUDITS_WEIGHT;
    for audit in &base.audits {
        total += audit.weight;
        let downgraded = outcomes.iter().any(|o| o.kind == audit.kind && !o.passed);
        if audit.passed && !downgraded {
            earned += audit.weight;
        }
    }
    earned / total * 100.0
}

/// The seed's `classify`: every rule re-derives its facts from the raw
/// text (repeated tokenization, repeated `script_of` scans, linear
/// dictionary probes with per-term lowercasing).
fn classify_seed(text: &str) -> Option<DiscardCategory> {
    fn is_emoji_char(c: char) -> bool {
        let cp = c as u32;
        matches!(cp,
            0x1F000..=0x1FAFF
            | 0x2600..=0x27BF
            | 0x2B00..=0x2BFF
            | 0x2190..=0x21FF
            | 0x25A0..=0x25FF
            | 0xFE0E..=0xFE0F
            | 0x200D
        )
    }
    fn is_emoji_only(text: &str) -> bool {
        let mut saw = false;
        for c in text.chars() {
            if c.is_whitespace() {
                continue;
            }
            if is_emoji_char(c) {
                saw = true;
            } else if !c.is_ascii_punctuation() {
                return false;
            }
        }
        saw
    }
    fn is_url_or_path(text: &str) -> bool {
        if text.split_whitespace().count() != 1 {
            return false;
        }
        let lower = text.to_ascii_lowercase();
        lower.contains("://")
            || lower.starts_with("www.")
            || (lower.starts_with('/') && lower[1..].contains('/'))
    }
    fn is_file_name(text: &str) -> bool {
        const EXTS: &[&str] = &[
            ".jpg", ".jpeg", ".png", ".gif", ".svg", ".webp", ".ico", ".bmp", ".avif", ".pdf",
            ".mp4", ".webm", ".css", ".js",
        ];
        if text.split_whitespace().count() != 1 {
            return false;
        }
        let lower = text.to_ascii_lowercase();
        EXTS.iter().any(|ext| lower.ends_with(ext)) && lower.len() > 4
    }
    fn is_integer(s: &str) -> bool {
        !s.is_empty() && s.chars().all(|c| c.is_ascii_digit())
    }
    fn is_ordinal_phrase(text: &str) -> bool {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        match tokens.as_slice() {
            [a, mid, b] => {
                is_integer(a) && is_integer(b) && (mid.eq_ignore_ascii_case("of") || *mid == "/")
            }
            [single] => single
                .split_once('/')
                .is_some_and(|(a, b)| is_integer(a) && is_integer(b)),
            _ => false,
        }
    }
    fn is_label_number(text: &str) -> bool {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        match tokens.as_slice() {
            [word, num] => {
                is_integer(num) && !word.is_empty() && word.chars().all(|c| c.is_alphabetic())
            }
            _ => false,
        }
    }
    fn is_mixed_alnum(text: &str) -> bool {
        text.split_whitespace().count() == 1
            && text.chars().any(|c| c.is_alphabetic())
            && text.chars().any(|c| c.is_ascii_digit())
            && text.chars().all(|c| c.is_alphanumeric())
    }
    fn is_dev_label(text: &str) -> bool {
        if text.split_whitespace().count() != 1 || text.len() < 3 {
            return false;
        }
        if text.contains('-') || text.contains('_') {
            let segments: Vec<&str> = text.split(['-', '_']).collect();
            return segments.len() >= 2
                && segments
                    .iter()
                    .all(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
        let ascii = text.chars().all(|c| c.is_ascii_alphanumeric());
        ascii
            && text.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && text.chars().skip(1).any(|c| c.is_ascii_uppercase())
    }
    fn is_cjk_dominant(text: &str) -> bool {
        let (mut cjk, mut other) = (0usize, 0usize);
        for c in text.chars() {
            match script_of_seed(c) {
                s if s.is_cjk() => cjk += 1,
                Script::Common | Script::Unknown => {}
                _ => other += 1,
            }
        }
        cjk > 0 && cjk >= other
    }
    fn is_continua_non_cjk(text: &str) -> bool {
        let (mut hits, mut other) = (0usize, 0usize);
        for c in text.chars() {
            match script_of_seed(c) {
                Script::Thai | Script::Myanmar => hits += 1,
                Script::Common | Script::Unknown => {}
                _ => other += 1,
            }
        }
        hits > 0 && hits >= other
    }
    fn is_too_short(text: &str) -> bool {
        let len = text.chars().filter(|c| !c.is_whitespace()).count();
        if is_cjk_dominant(text) {
            len <= 1
        } else {
            len < 3
        }
    }
    fn is_single_word(text: &str) -> bool {
        if text.split_whitespace().count() != 1 || !text.chars().any(|c| c.is_alphabetic()) {
            return false;
        }
        let len = text.chars().count();
        if is_cjk_dominant(text) {
            return false;
        }
        if is_continua_non_cjk(text) {
            return len < CONTINUA_KEEP_LEN;
        }
        len < SINGLE_WORD_KEEP_LEN
    }

    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Some(DiscardCategory::TooShort);
    }
    for category in DiscardCategory::ALL {
        let hit = match category {
            DiscardCategory::Emoji => is_emoji_only(trimmed),
            DiscardCategory::UrlOrFilePath => is_url_or_path(trimmed),
            DiscardCategory::FileName => is_file_name(trimmed),
            DiscardCategory::OrdinalPhrase => is_ordinal_phrase(trimmed),
            DiscardCategory::LabelNumberPattern => is_label_number(trimmed),
            DiscardCategory::MixedAlnum => is_mixed_alnum(trimmed),
            DiscardCategory::DevLabel => is_dev_label(trimmed),
            DiscardCategory::GenericAction => {
                dict::matches_term_list(trimmed, dict::GENERIC_ACTIONS).is_some()
            }
            DiscardCategory::Placeholder => {
                dict::matches_term_list(trimmed, dict::PLACEHOLDERS).is_some()
            }
            DiscardCategory::TooShort => is_too_short(trimmed),
            DiscardCategory::SingleWord => is_single_word(trimmed),
        };
        if hit {
            return Some(category);
        }
    }
    None
}

struct CountryResult {
    country: Country,
    records: Vec<SiteRecord>,
    summary: CountryCrawlSummary,
    extremes: Vec<ExtremeExample>,
    mismatches: Vec<MismatchExample>,
}

/// The seed pipeline: one thread per country, sequential candidate walk
/// with composition re-scan, per-site `Kizuki::standard()`, double-pass
/// char/word counts.
pub fn build_dataset_seed(corpus: &Corpus, options: PipelineOptions) -> Dataset {
    let countries: Vec<Country> = corpus.countries().collect();
    let mut results: Vec<CountryResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = countries
            .iter()
            .map(|&country| scope.spawn(move || process_country(corpus, country, options)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("country worker panicked"))
            .collect()
    });

    results.sort_by_key(|r| Country::STUDY.iter().position(|&c| c == r.country));

    let mut dataset = Dataset {
        seed: corpus.config().seed,
        quota: options.quota,
        ..Dataset::default()
    };
    for mut result in results {
        dataset.records.append(&mut result.records);
        dataset.crawl_summaries.push(result.summary);
        for e in result.extremes {
            if dataset.extreme_examples.len() < options.max_extreme_examples {
                dataset.extreme_examples.push(e);
            }
        }
        for m in result.mismatches {
            if dataset.mismatch_examples.len() < options.max_mismatch_examples {
                dataset.mismatch_examples.push(m);
            }
        }
    }
    dataset
}

fn process_country(corpus: &Corpus, country: Country, options: PipelineOptions) -> CountryResult {
    let vantage = vpn_vantage(country).unwrap_or_else(|| panic!("no VPN endpoint for {country:?}"));
    let mut browser = Browser::new(corpus.internet(), options.browser);
    let native = country.target_language();

    let mut sites = Vec::with_capacity(options.quota);
    let mut stats = SelectionStats::default();
    for plan in corpus.candidates(country).iter() {
        if sites.len() >= options.quota {
            break;
        }
        stats.attempted += 1;
        match browser.visit(&Url::from_host(&plan.host), vantage) {
            Ok(visit) => {
                let comp = composition_seed(&visit.extract.visible_text, native);
                if comp.has_evidence() && comp.native_pct >= NATIVE_CONTENT_THRESHOLD_PCT {
                    stats.selected += 1;
                    sites.push(SelectedSite {
                        plan: plan.clone(),
                        visible_native_pct: comp.native_pct,
                        visible_english_pct: comp.english_pct,
                        visit,
                    });
                } else {
                    stats.rejected_threshold += 1;
                }
            }
            Err(langcrux_crawl::VisitError::Restricted) => {
                stats.restricted += 1;
                stats.failed_fetch += 1;
            }
            Err(_) => stats.failed_fetch += 1,
        }
    }
    stats.shortfall = (options.quota as u64).saturating_sub(stats.selected);

    let mut records = Vec::with_capacity(sites.len());
    let mut extremes = Vec::new();
    let mut mismatches = Vec::new();
    for site in &sites {
        records.push(process_site_seed(
            site,
            country,
            &mut extremes,
            &mut mismatches,
            options,
        ));
    }
    CountryResult {
        country,
        records,
        summary: CountryCrawlSummary {
            country_code: country.code().to_string(),
            attempted: stats.attempted,
            selected: stats.selected,
            rejected_threshold: stats.rejected_threshold,
            failed_fetch: stats.failed_fetch,
            restricted: stats.restricted,
        },
        extremes,
        mismatches,
    }
}

fn process_site_seed(
    site: &SelectedSite,
    country: Country,
    extremes: &mut Vec<ExtremeExample>,
    mismatches: &mut Vec<MismatchExample>,
    options: PipelineOptions,
) -> SiteRecord {
    let native = country.target_language();
    let extract = &site.visit.extract;

    let mut elements = Vec::with_capacity(extract.elements.len());
    let mut mismatch_done = false;
    for element in &extract.elements {
        let state = if element.is_missing() {
            TextState::Missing
        } else if element.is_empty_text() {
            TextState::Empty
        } else {
            let text = element.content().expect("non-empty");
            let discard = classify_seed(text);
            let label = classify_label(text, native);
            let chars = char_len(text) as u32;
            let words = word_count(text) as u32;
            if chars > 1_000 && extremes.len() < options.max_extreme_examples {
                extremes.push(ExtremeExample {
                    host: site.plan.host.clone(),
                    country,
                    kind: element.kind,
                    chars,
                    words,
                    preview: text.chars().take(120).collect(),
                });
            }
            if !mismatch_done
                && element.kind == ElementKind::ImageAlt
                && discard.is_none()
                && label == LabelLanguage::English
                && site.visible_native_pct >= 90.0
                && mismatches.len() < options.max_mismatch_examples
            {
                mismatch_done = true;
                mismatches.push(MismatchExample {
                    host: site.plan.host.clone(),
                    country,
                    visible_native_pct: site.visible_native_pct,
                    alt_preview: text.chars().take(120).collect(),
                });
            }
            TextState::Present {
                chars,
                words,
                discard,
                label,
            }
        };
        elements.push(ElementRecord {
            kind: element.kind,
            state,
        });
    }

    // The seed rebuilt the engine (and re-detected the page language from
    // the full visible text) for every site record.
    let base = audit_page(extract);
    let kizuki_score = kizuki_new_score_seed(extract, &base);
    SiteRecord {
        host: site.plan.host.clone(),
        country,
        rank: site.plan.rank,
        visible_native_pct: site.visible_native_pct,
        visible_english_pct: site.visible_english_pct,
        declared_lang: extract.declared_lang.clone(),
        elements,
        base_score: base.score,
        kizuki_score,
        kizuki_eligible: Kizuki::figure6_eligible(&base),
        gaps: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_corpus, Scale};
    use langcrux_core::build_dataset;

    #[test]
    fn seed_baseline_matches_fused_pipeline_output() {
        // The baseline exists to measure the old hot path, so it must
        // compute the same dataset the fused engine computes.
        let corpus = build_corpus(31, Scale::Sites(8));
        let options = PipelineOptions {
            quota: 8,
            ..PipelineOptions::default()
        };
        let seed = build_dataset_seed(&corpus, options);
        let fused = build_dataset(&corpus, options);
        assert_eq!(
            seed.to_json().unwrap(),
            fused.to_json().unwrap(),
            "baseline and fused pipelines diverged"
        );
    }
}
