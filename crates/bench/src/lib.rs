//! # langcrux-bench
//!
//! The reproduction harness: shared workload builders used by the `repro`
//! binary (which prints every table and figure of the paper) and by the
//! Criterion benches (one per artefact plus component microbenches and the
//! three ablations from DESIGN.md).
//!
//! ## Performance tracking
//!
//! * [`baseline`] preserves the seed implementation's hot path (per-country
//!   threads, visible-text re-scans, `Vec`-probed histogram, per-site
//!   Kizuki construction) as the before side of every perf comparison.
//! * [`perf`] times the seed baseline against the fused single-pass engine
//!   and emits the machine-readable record `BENCH_pipeline.json`:
//!
//!   ```text
//!   cargo run --release -p langcrux-bench --bin repro -- --bench-json
//!   ```
//!
//!   writes `BENCH_pipeline.json` with before/after wall-clock at
//!   `Scale::Quick` and `Scale::Default` (pass `--sites N`/`--quick`/
//!   `--full` to time a single chosen scale, and an optional path argument
//!   after `--bench-json` to redirect the output). Numbers depend on the
//!   host; the JSON records `available_cores` so the fusion share and the
//!   work-stealing parallel share can be told apart.
//! * `cargo bench -p langcrux-bench --bench pipeline_hot_path` runs the
//!   per-layer before/after microbenches (fused extraction vs re-scan,
//!   streaming tokenize→extract vs DOM materialisation per visit
//!   (`stream_vs_dom`), table lookups, composition from the carried
//!   histogram, and the end-to-end pipeline pair).
//!
//! Every field of both JSON artefacts, and how CI's relative gates map
//! to the committed 1-core reference numbers, is documented in
//! `docs/benchmarks.md`.

pub mod baseline;
pub mod dist;
pub mod perf;
pub mod render_seed;
pub mod serve_bench;

use langcrux_core::{build_dataset_with_ledger, CrawlLedger, Dataset, PipelineOptions};
use langcrux_crawl::BrowserConfig;
use langcrux_lang::rng::DEFAULT_SEED;
use langcrux_lang::{Country, Language};
use langcrux_langid::{detect, TrigramDetector};
use langcrux_net::{vpn_vantage, ContentVariant, FaultPlan, Request, Url, Vantage};
use langcrux_textgen::TextGenerator;
use langcrux_webgen::{Corpus, CorpusConfig};

/// Scale presets for harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-speed: 120 sites/country.
    Quick,
    /// Default harness: 400 sites/country (all shape conclusions hold).
    Default,
    /// Paper scale: 10,000 sites/country (long).
    Full,
    /// Custom sites/country.
    Sites(usize),
}

impl Scale {
    pub fn sites_per_country(self) -> usize {
        match self {
            Scale::Quick => 120,
            Scale::Default => 400,
            Scale::Full => 10_000,
            Scale::Sites(n) => n,
        }
    }
}

/// Build the corpus at a given scale (the workspace-default fault plan).
pub fn build_corpus(seed: u64, scale: Scale) -> Corpus {
    build_corpus_with_plan(seed, scale, FaultPlan::default())
}

/// Build the corpus at a given scale under an explicit fault plan.
pub fn build_corpus_with_plan(seed: u64, scale: Scale, plan: FaultPlan) -> Corpus {
    build_corpus_with_gaps(seed, scale, plan, false)
}

/// [`build_corpus_with_plan`] with the translation-gap scenarios toggled
/// explicitly (what `repro --gap-scenarios` builds). With `gaps` off the
/// corpus is byte-identical to the historical one.
pub fn build_corpus_with_gaps(seed: u64, scale: Scale, plan: FaultPlan, gaps: bool) -> Corpus {
    Corpus::build(CorpusConfig {
        seed,
        sites_per_country: scale.sites_per_country(),
        fault_plan: plan,
        gap_scenarios: gaps,
        ..CorpusConfig::default()
    })
}

/// Resolve a `--fault-plan` preset name. File paths are handled by the
/// caller (`repro` reads the JSON and deserializes a partial
/// [`FaultPlan`]).
pub fn fault_plan_preset(name: &str) -> Option<FaultPlan> {
    match name {
        "reliable" => Some(FaultPlan::RELIABLE),
        "default" => Some(FaultPlan::default()),
        "hostile" => Some(FaultPlan::HOSTILE),
        _ => None,
    }
}

/// Build the full dataset (corpus + pipeline) at a given scale.
pub fn build_scaled_dataset(seed: u64, scale: Scale) -> Dataset {
    build_scaled_dataset_with_corpus(seed, scale).1
}

/// [`build_scaled_dataset`], also handing back the corpus so callers can
/// inspect its lazy-shard gauges (`Corpus::shard_stats`) after the run.
pub fn build_scaled_dataset_with_corpus(seed: u64, scale: Scale) -> (Corpus, Dataset) {
    let (corpus, dataset, _) = build_scaled_dataset_with_plan(seed, scale, FaultPlan::default());
    (corpus, dataset)
}

/// Build corpus + dataset under an explicit fault plan, returning the
/// degraded-run ledger alongside (what `repro --fault-plan` runs).
pub fn build_scaled_dataset_with_plan(
    seed: u64,
    scale: Scale,
    plan: FaultPlan,
) -> (Corpus, Dataset, CrawlLedger) {
    build_scaled_dataset_with_gaps(seed, scale, plan, false)
}

/// [`build_scaled_dataset_with_plan`] with the translation-gap scenarios
/// toggled explicitly. Gaps off reproduces the historical bytes; gaps on
/// adds the partial-localisation scenarios to the corpus and the gap
/// verdicts to the dataset and ledger.
pub fn build_scaled_dataset_with_gaps(
    seed: u64,
    scale: Scale,
    plan: FaultPlan,
    gaps: bool,
) -> (Corpus, Dataset, CrawlLedger) {
    let corpus = build_corpus_with_gaps(seed, scale, plan, gaps);
    let (dataset, ledger) = build_dataset_with_ledger(
        &corpus,
        PipelineOptions {
            quota: scale.sites_per_country(),
            ..PipelineOptions::default()
        },
    );
    (corpus, dataset, ledger)
}

/// Build with the workspace default seed.
pub fn default_dataset(scale: Scale) -> Dataset {
    build_scaled_dataset(DEFAULT_SEED, scale)
}

/// A1 — the VPN-vantage ablation: crawl the same hosts from the in-country
/// VPN and from a generic cloud IP, and measure how often each receives the
/// localized variant. Quantifies §2's claim that "without VPN-based
/// localization, web crawlers risk accessing global or English-dominant
/// versions".
#[derive(Debug, Clone, PartialEq)]
pub struct VpnAblation {
    pub hosts: usize,
    pub vpn_localized_pct: f64,
    pub cloud_localized_pct: f64,
}

pub fn vpn_ablation(seed: u64, hosts_per_country: usize) -> VpnAblation {
    let corpus = build_corpus(seed, Scale::Sites(hosts_per_country));
    let mut total = 0u32;
    let mut vpn_localized = 0u32;
    let mut cloud_localized = 0u32;
    for country in Country::STUDY {
        let vantage = vpn_vantage(country).expect("vpn endpoint");
        let candidates = corpus.candidates(country);
        for plan in candidates.iter().take(hosts_per_country) {
            total += 1;
            let url = Url::from_host(&plan.host);
            if let Ok(resp) = corpus.internet().fetch(&Request::new(url.clone(), vantage)) {
                if resp.variant == ContentVariant::Localized {
                    vpn_localized += 1;
                }
            }
            if let Ok(resp) = corpus.internet().fetch(&Request::new(url, Vantage::Cloud)) {
                if resp.variant == ContentVariant::Localized {
                    cloud_localized += 1;
                }
            }
        }
    }
    VpnAblation {
        hosts: total as usize,
        vpn_localized_pct: f64::from(vpn_localized) * 100.0 / f64::from(total),
        cloud_localized_pct: f64::from(cloud_localized) * 100.0 / f64::from(total),
    }
}

/// A2 — the language-identification ablation: Unicode-heuristic detection
/// vs a trained character-trigram model, on short labels of known language.
#[derive(Debug, Clone, PartialEq)]
pub struct LangIdAblation {
    pub labels: usize,
    pub unicode_accuracy_pct: f64,
    pub trigram_accuracy_pct: f64,
}

pub fn langid_ablation(seed: u64, labels_per_language: usize) -> LangIdAblation {
    // Train the trigram model on independent sample text.
    let mut trigram = TrigramDetector::new();
    for lang in Language::INCLUDED.iter().chain([Language::English].iter()) {
        let mut gen = TextGenerator::new(*lang, seed ^ 0x7261);
        trigram.train(*lang, &gen.paragraph(40));
    }

    let mut total = 0usize;
    let mut unicode_hits = 0usize;
    let mut trigram_hits = 0usize;
    for lang in Language::INCLUDED {
        let mut gen = TextGenerator::new(lang, seed ^ 0x6C62);
        for _ in 0..labels_per_language {
            let label = gen.phrase(2, 5);
            total += 1;
            // The Unicode heuristic answers with evidence-script languages;
            // any language sharing the evidence scripts counts as a hit
            // (the paper's method only needs script-level precision plus
            // disambiguators).
            if let Some(found) = detect(&label) {
                if found == lang || found.evidence_scripts() == lang.evidence_scripts() {
                    unicode_hits += 1;
                }
            }
            if let Some((found, _)) = trigram.classify(&label) {
                if found == lang {
                    trigram_hits += 1;
                }
            }
        }
    }
    LangIdAblation {
        labels: total,
        unicode_accuracy_pct: unicode_hits as f64 * 100.0 / total as f64,
        trigram_accuracy_pct: trigram_hits as f64 * 100.0 / total as f64,
    }
}

/// X4 — the screen-reader experience sweep: crawl a sample of each
/// country's sites and simulate announcing every accessibility element
/// with a VoiceOver-like reader. Reports the share of degraded
/// announcements (mispronounced / skipped / generic) per country — the
/// user-experience quantification of the paper's §1 motivation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeechExperienceRow {
    pub country_code: String,
    pub announcements: u32,
    pub degraded_pct: f64,
    pub mispronounced_pct: f64,
    pub generic_pct: f64,
}

pub fn speech_experience(seed: u64, sites_per_country: usize) -> Vec<SpeechExperienceRow> {
    use langcrux_crawl::{Browser, BrowserConfig};
    use langcrux_kizuki::{ScreenReader, SpeechStats};
    let corpus = build_corpus(seed, Scale::Sites(sites_per_country));
    let reader = ScreenReader::voiceover_like();
    let mut rows = Vec::new();
    for country in Country::STUDY {
        let vantage = vpn_vantage(country).expect("vpn endpoint");
        let mut browser = Browser::new(corpus.internet(), BrowserConfig::default());
        let mut stats = SpeechStats::default();
        let candidates = corpus.candidates(country);
        for plan in candidates.iter().take(sites_per_country) {
            let Ok(visit) = browser.visit(&Url::from_host(&plan.host), vantage) else {
                continue;
            };
            let utterances = reader.announce_page(&visit.extract, country.target_language());
            stats.merge(&SpeechStats::of(&utterances));
        }
        let total = f64::from(stats.total().max(1));
        rows.push(SpeechExperienceRow {
            country_code: country.code().to_string(),
            announcements: stats.total(),
            degraded_pct: stats.degraded_pct(),
            mispronounced_pct: f64::from(stats.mispronounced) * 100.0 / total,
            generic_pct: f64::from(stats.generic) * 100.0 / total,
        });
    }
    rows
}

/// A3 — crawl worker scaling: wall-clock for crawling a fixed host list
/// with different worker counts (used by the Criterion ablation bench and
/// printable from `repro`).
pub fn crawl_scaling(seed: u64, hosts_per_country: usize, threads: usize) -> std::time::Duration {
    use langcrux_crawl::{crawl_hosts, CrawlConfig};
    let corpus = build_corpus(seed, Scale::Sites(hosts_per_country));
    let hosts: Vec<String> = Country::STUDY
        .iter()
        .flat_map(|&c| {
            corpus
                .candidates(c)
                .iter()
                .take(hosts_per_country)
                .map(|p| p.host.clone())
                .collect::<Vec<_>>()
        })
        .collect();
    let vantage = vpn_vantage(Country::Thailand).expect("endpoint");
    let start = std::time::Instant::now();
    let outcome = crawl_hosts(
        corpus.internet(),
        vantage,
        &hosts,
        CrawlConfig {
            threads,
            browser: BrowserConfig::default(),
        },
    );
    assert!(outcome.stats.attempted as usize == hosts.len());
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_ablation_shows_the_gap() {
        let ab = vpn_ablation(3, 6);
        assert!(ab.vpn_localized_pct > 90.0, "{ab:?}");
        assert!(ab.cloud_localized_pct < 5.0, "{ab:?}");
    }

    #[test]
    fn langid_ablation_accuracies() {
        let ab = langid_ablation(5, 30);
        assert!(ab.unicode_accuracy_pct > 90.0, "{ab:?}");
        // The trigram model is decent but measurably behind on short labels.
        assert!(ab.trigram_accuracy_pct > 50.0, "{ab:?}");
        assert!(ab.unicode_accuracy_pct >= ab.trigram_accuracy_pct, "{ab:?}");
    }

    #[test]
    fn speech_experience_shape() {
        let rows = speech_experience(9, 6);
        assert_eq!(rows.len(), 12);
        for row in &rows {
            assert!(row.announcements > 0, "{row:?}");
            // Most announcements are degraded everywhere — the paper's
            // point: missing metadata + language gaps dominate.
            assert!((0.0..=100.0).contains(&row.degraded_pct));
        }
        // Bangla has only partial synthesiser support in the VoiceOver-like
        // profile, so bd must be more degraded than jp (full Japanese voice).
        let get = |code: &str| rows.iter().find(|r| r.country_code == code).unwrap();
        assert!(get("bd").degraded_pct > get("jp").degraded_pct);
    }

    #[test]
    fn scales() {
        assert_eq!(Scale::Quick.sites_per_country(), 120);
        assert_eq!(Scale::Sites(7).sites_per_country(), 7);
    }
}
