//! The pre-arena page renderer, preserved with its original allocation
//! profile as the benchmark baseline (and byte/truth oracle) for the
//! pooled `RenderScratch` engine.
//!
//! The zero-alloc render PR changed the whole generation stack: textgen
//! words append into caller buffers instead of returning one `String`
//! each, `MixedGenerator` shuffles token ranges in a reusable arena
//! instead of a `Vec<String>`, `HtmlBuilder` keeps its tag stack in a
//! flat name arena and escapes straight into the output, and the page
//! renderer threads every label/attribute/paragraph through pooled
//! scratch. This module vendors the **old** behaviour at every layer —
//! a `Vec<String>`-stacked builder with allocating escapes
//! (`SeedHtmlBuilder`), word-per-`String` phrase/sentence assembly over
//! the public `TextGenerator` API, a token-vector mixed generator, fresh
//! generators and a fresh output buffer per page — drawing the RNG
//! exactly like the engine does. That gives `repro --bench-json` a true
//! before/after (`render.baseline_us_per_page` vs `render_us_per_page`
//! in `BENCH_pipeline.json`) and pins the pooled renderer byte- and
//! truth-identical to the pre-PR output. Benchmarking scaffolding, not a
//! supported entry point.

use langcrux_filter::DiscardCategory;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::{dict, rng, Language};
use langcrux_net::ContentVariant;
use langcrux_textgen::{pools, TextGenerator};
use langcrux_webgen::calibration::{element_calibration, estimated_page_bytes};
use langcrux_webgen::sample::{heavy_tail_len, int_between};
use langcrux_webgen::{LangBucket, PageTruth, PlantedText, SitePlan};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------
// The seed HTML builder: per-open tag Strings, per-text escape Strings.
// ---------------------------------------------------------------------

/// The pre-PR `HtmlBuilder`: `stack: Vec<String>` (one allocation per
/// opened element) and escape helpers that return owned `String`s (one
/// allocation per text/attribute write).
struct SeedHtmlBuilder {
    buf: String,
    stack: Vec<String>,
}

fn escape_text_seed(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_attr_seed(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

impl SeedHtmlBuilder {
    fn document() -> Self {
        let mut b = SeedHtmlBuilder {
            buf: String::new(),
            stack: Vec::with_capacity(16),
        };
        b.buf.push_str("<!DOCTYPE html>");
        b
    }

    fn document_sized(capacity: usize) -> Self {
        let mut b = SeedHtmlBuilder {
            buf: String::with_capacity(capacity),
            stack: Vec::with_capacity(16),
        };
        b.buf.push_str("<!DOCTYPE html>");
        b
    }

    fn write_tag(&mut self, tag: &str, attrs: &[(&str, Option<&str>)]) {
        self.buf.push('<');
        self.buf.push_str(tag);
        for (name, value) in attrs {
            self.buf.push(' ');
            self.buf.push_str(name);
            if let Some(v) = value {
                self.buf.push_str("=\"");
                self.buf.push_str(&escape_attr_seed(v));
                self.buf.push('"');
            }
        }
        self.buf.push('>');
    }

    fn open(&mut self, tag: &str, attrs: &[(&str, Option<&str>)]) -> &mut Self {
        self.write_tag(tag, attrs);
        self.stack.push(tag.to_string());
        self
    }

    fn void(&mut self, tag: &str, attrs: &[(&str, Option<&str>)]) -> &mut Self {
        self.write_tag(tag, attrs);
        self
    }

    fn close(&mut self) -> &mut Self {
        let tag = self.stack.pop().expect("close() with no open element");
        self.buf.push_str("</");
        self.buf.push_str(&tag);
        self.buf.push('>');
        self
    }

    fn text(&mut self, text: &str) -> &mut Self {
        self.buf.push_str(&escape_text_seed(text));
        self
    }

    fn raw(&mut self, html: &str) -> &mut Self {
        self.buf.push_str(html);
        self
    }

    fn leaf(&mut self, tag: &str, attrs: &[(&str, Option<&str>)], text: &str) -> &mut Self {
        self.open(tag, attrs);
        self.text(text);
        self.close()
    }

    fn finish(mut self) -> String {
        while !self.stack.is_empty() {
            self.close();
        }
        self.buf
    }
}

// ---------------------------------------------------------------------
// The seed text assembly: one String per word, Vec<String> mixed tokens.
// ---------------------------------------------------------------------

/// Pre-PR `append_words`: one owned `String` per word (`word()` still
/// returns one), joined into the buffer. RNG-draw-identical to the
/// engine's allocation-free `append_words`.
fn append_words_seed(g: &mut TextGenerator, n: usize, out: &mut String) {
    let sep = if g.scriptio_continua() { "" } else { " " };
    for i in 0..n {
        if i > 0 {
            out.push_str(sep);
        }
        let word = g.word();
        out.push_str(&word);
    }
}

fn append_phrase_seed(g: &mut TextGenerator, min: usize, max: usize, out: &mut String) {
    let n = if min >= max {
        min
    } else {
        g.rng_mut().gen_range(min..=max)
    };
    if g.language() == Language::Japanese && n > 1 {
        for i in 0..n {
            if i > 0 && g.rng_mut().gen_bool(0.6) {
                out.push_str(
                    pools::JA_PARTICLES[g.rng_mut().gen_range(0..pools::JA_PARTICLES.len())],
                );
            }
            let word = g.word();
            out.push_str(&word);
        }
        return;
    }
    append_words_seed(g, n, out);
}

fn phrase_seed(g: &mut TextGenerator, min: usize, max: usize) -> String {
    let mut out = String::new();
    append_phrase_seed(g, min, max, &mut out);
    out
}

fn append_sentence_seed(g: &mut TextGenerator, out: &mut String) {
    let n = g.rng_mut().gen_range(5..=14);
    append_phrase_seed(g, n, n, out);
    let terminal = match g.language() {
        Language::MandarinChinese | Language::Cantonese | Language::Japanese => "。",
        Language::Hindi | Language::Marathi | Language::Nepali => "।",
        Language::ModernStandardArabic
        | Language::EgyptianArabic
        | Language::Urdu
        | Language::Persian => "؟",
        Language::Greek => ".",
        Language::Thai => "",
        _ => ".",
    };
    if terminal == "؟" {
        out.push_str(if g.rng_mut().gen_bool(0.1) { "؟" } else { "." });
    } else {
        out.push_str(terminal);
    }
}

fn append_paragraph_seed(g: &mut TextGenerator, sentences: usize, out: &mut String) {
    for i in 0..sentences {
        if i > 0 {
            out.push(' ');
        }
        append_sentence_seed(g, out);
    }
}

/// Pre-PR `MixedGenerator`: same seeded state as the engine's (the
/// constructor derivation is replicated here), but phrases assemble a
/// `Vec<String>` of tokens and `join` after the shuffle — the historical
/// allocation profile.
struct SeedMixed {
    native: TextGenerator,
    english: TextGenerator,
    native_ratio: f64,
    rng: StdRng,
}

impl SeedMixed {
    fn new(native: Language, seed: u64, native_ratio: f64) -> Self {
        SeedMixed {
            native: TextGenerator::new(native, seed),
            english: TextGenerator::new(Language::English, seed ^ 0xEEEE),
            native_ratio: native_ratio.clamp(0.05, 0.95),
            rng: rng::rng_for(seed, &[0x3A1D, native as u64]),
        }
    }

    fn phrase(&mut self, min: usize, max: usize) -> String {
        let n = if min >= max {
            min.max(2)
        } else {
            self.rng.gen_range(min.max(2)..=max.max(2))
        };
        let mut tokens: Vec<String> = Vec::with_capacity(n);
        tokens.push(self.native.word());
        tokens.push(self.english.word());
        for _ in 2..n {
            if self.rng.gen_bool(self.native_ratio) {
                tokens.push(self.native.word());
            } else {
                tokens.push(self.english.word());
            }
        }
        for i in (1..tokens.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            tokens.swap(i, j);
        }
        tokens.join(" ")
    }
}

/// The seed's per-language character ratio (its own cache, same values as
/// the engine's — both measure fixed-seed samples deterministically).
fn char_ratio(lang: Language) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<Language, f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = cache.lock().expect("ratio cache").get(&lang) {
        return *v;
    }
    let mean_chars = |l: Language| -> f64 {
        use langcrux_lang::script::ScriptHistogram;
        let mut g = TextGenerator::new(l, 0xC0FFEE);
        let mut total = 0usize;
        const SAMPLES: usize = 40;
        for _ in 0..SAMPLES {
            let hist = ScriptHistogram::of(&g.sentence());
            total += l
                .evidence_scripts()
                .iter()
                .map(|&s| hist.count(s))
                .sum::<usize>();
        }
        total as f64 / SAMPLES as f64
    };
    let ratio = (mean_chars(lang) / mean_chars(Language::English)).max(0.05);
    cache.lock().expect("ratio cache").insert(lang, ratio);
    ratio
}

fn native_sentence_prob(target_share: f64, ratio: f64) -> f64 {
    let t = target_share.clamp(0.0, 1.0);
    (t / (ratio + t * (1.0 - ratio))).clamp(0.0, 1.0)
}

fn sample_category(r: &mut StdRng, dist: &[f64; 11]) -> DiscardCategory {
    let total: f64 = dist.iter().sum();
    let mut roll = r.gen::<f64>() * total;
    for (i, &w) in dist.iter().enumerate() {
        if roll < w {
            return DiscardCategory::ALL[i];
        }
        roll -= w;
    }
    DiscardCategory::ALL[10]
}

fn kind_index(kind: ElementKind) -> usize {
    ElementKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

/// Render a page with the pre-arena allocation profile. Deterministic;
/// byte- and truth-identical to `webgen::render` (tested).
pub fn render_seed(plan: &SitePlan, variant: ContentVariant, path: &str) -> (String, PageTruth) {
    match variant {
        ContentVariant::Restricted => (render_restricted(plan), PageTruth::default()),
        ContentVariant::Localized => Renderer::new(plan, variant, path).render(),
        ContentVariant::Global => Renderer::new(plan, variant, path).render(),
    }
}

fn render_restricted(plan: &SitePlan) -> String {
    let mut b = SeedHtmlBuilder::document();
    b.open("html", &[("lang", Some("en"))]);
    b.open("head", &[]);
    b.leaf("title", &[], "Access denied");
    b.close();
    b.open("body", &[]);
    b.leaf(
        "p",
        &[],
        &format!(
            "Access to {} from your network is restricted. Please disable \
             proxy or VPN services and try again.",
            plan.host
        ),
    );
    b.close();
    b.close();
    b.finish()
}

struct Renderer<'a> {
    plan: &'a SitePlan,
    variant: ContentVariant,
    rng: StdRng,
    native: TextGenerator,
    english: TextGenerator,
    mixed: SeedMixed,
    truth: PageTruth,
    visible_native: f64,
    counter: u32,
}

impl<'a> Renderer<'a> {
    fn new(plan: &'a SitePlan, variant: ContentVariant, path: &str) -> Self {
        let vstream = match variant {
            ContentVariant::Localized => 1,
            ContentVariant::Global => 2,
            ContentVariant::Restricted => 3,
        };
        let page_seed = rng::derive(plan.seed, &[vstream, rng::stream_id(path)]);
        let native_lang = plan.native_language();
        let target_share = match variant {
            ContentVariant::Localized => plan.visible_native_share,
            ContentVariant::Global => (plan.visible_native_share * 0.12).min(0.10),
            ContentVariant::Restricted => 0.0,
        };
        let visible_native = native_sentence_prob(target_share, char_ratio(native_lang));
        Renderer {
            plan,
            variant,
            rng: rng::rng_for(page_seed, &[0x11]),
            native: TextGenerator::new(native_lang, rng::derive(page_seed, &[0x22])),
            english: TextGenerator::new(Language::English, rng::derive(page_seed, &[0x33])),
            mixed: SeedMixed::new(native_lang, rng::derive(page_seed, &[0x44]), 0.5),
            truth: PageTruth {
                target_visible_native: target_share,
                ..PageTruth::default()
            },
            visible_native,
            counter: 0,
        }
    }

    fn next_id(&mut self) -> u32 {
        self.counter += 1;
        self.counter
    }

    fn visible_phrase(&mut self, min: usize, max: usize) -> String {
        if self.rng.gen::<f64>() < self.visible_native {
            phrase_seed(&mut self.native, min, max)
        } else {
            phrase_seed(&mut self.english, min, max)
        }
    }

    fn visible_sentencer(&mut self) -> String {
        let mut out = String::new();
        self.append_visible_sentence(&mut out);
        out
    }

    fn append_visible_sentence(&mut self, out: &mut String) {
        if self.rng.gen::<f64>() < self.visible_native {
            append_sentence_seed(&mut self.native, out);
        } else {
            append_sentence_seed(&mut self.english, out);
        }
    }

    fn count_for(&mut self, kind: ElementKind) -> usize {
        let cal = element_calibration(kind);
        let base = int_between(&mut self.rng, cal.per_page.0, cal.per_page.1);
        let factor = self.plan.archetype.count_factor(kind);
        ((base as f64 * factor).round() as usize).max(cal.per_page.0)
    }

    fn plant(&mut self, kind: ElementKind) -> PlantedText {
        let (missing_rate, empty_rate) = self.plan.rates(kind);
        let truth = &mut self.truth.per_kind[kind_index(kind)];
        truth.total += 1;

        let roll: f64 = self.rng.gen();
        if roll < missing_rate {
            truth.missing += 1;
            return PlantedText::Missing;
        }
        if roll < missing_rate + empty_rate {
            truth.empty += 1;
            return PlantedText::Empty;
        }

        let (discard_total, discard_dist) = self.plan.discard_profile(kind);
        if self.rng.gen::<f64>() < discard_total {
            let cat = sample_category(&mut self.rng, &discard_dist);
            let text = self.uninformative_instance(kind, cat);
            self.truth.per_kind[kind_index(kind)].uninformative[DiscardCategory::ALL
                .iter()
                .position(|&c| c == cat)
                .expect("cat")] += 1;
            return PlantedText::Uninformative(cat, text);
        }

        let bucket = if self.variant == ContentVariant::Global {
            LangBucket::English
        } else {
            self.plan.sample_bucket(&mut self.rng)
        };
        let text = self.informative_instance(kind, bucket);
        let truth = &mut self.truth.per_kind[kind_index(kind)];
        match bucket {
            LangBucket::Native => truth.informative_native += 1,
            LangBucket::English => truth.informative_english += 1,
            LangBucket::Mixed => truth.informative_mixed += 1,
        }
        PlantedText::Informative(bucket, text)
    }

    fn informative_instance(&mut self, kind: ElementKind, bucket: LangBucket) -> String {
        let cal = element_calibration(kind);
        let (min, max) = cal.words;
        let native_lang = self.plan.native_language();
        let min = if native_lang == Language::Thai && bucket != LangBucket::English {
            min.max(3)
        } else if bucket == LangBucket::Mixed {
            min.max(2)
        } else {
            min
        };
        let max = max.max(min);
        let base = match bucket {
            LangBucket::Native => phrase_seed(&mut self.native, min, max),
            LangBucket::English => phrase_seed(&mut self.english, min, max),
            LangBucket::Mixed => self.mixed.phrase(min, max),
        };
        if cal.outlier_chance > 0.0 && self.rng.gen::<f64>() < cal.outlier_chance {
            return self.outlier_text(bucket);
        }
        base
    }

    fn outlier_text(&mut self, bucket: LangBucket) -> String {
        let target = heavy_tail_len(&mut self.rng, (1_200, 4_000), (8_000, 260_000), 0.10);
        let mut out = String::with_capacity(target + 64);
        let mut chars = 0usize;
        while chars < target {
            let before = out.len();
            match bucket {
                LangBucket::Native => append_paragraph_seed(&mut self.native, 3, &mut out),
                _ => append_paragraph_seed(&mut self.english, 3, &mut out),
            }
            chars += out[before..].chars().count();
            out.push(' ');
            chars += 1;
        }
        out
    }

    fn uninformative_instance(&mut self, _kind: ElementKind, cat: DiscardCategory) -> String {
        let n = self.next_id();
        let native = self.plan.native_language();
        let use_native = {
            let (nat, _, mix) = self.plan.lang_weights;
            self.rng.gen::<f64>() < (nat + mix * 0.5)
        };
        match cat {
            DiscardCategory::Emoji => {
                const EMOJI: &[&str] = &["📷", "🔍", "▶", "✕", "☰", "⭐", "➜", "🏠", "📧"];
                EMOJI[self.rng.gen_range(0..EMOJI.len())].to_string()
            }
            DiscardCategory::TooShort => {
                if native.primary_script().is_cjk() && use_native {
                    self.native.word().chars().take(1).collect()
                } else {
                    const SHORT: &[&str] = &["go", "ok", "..", ">>", "NA", "x"];
                    SHORT[self.rng.gen_range(0..SHORT.len())].to_string()
                }
            }
            DiscardCategory::FileName => {
                const STEMS: &[&str] = &["banner_img", "photo-", "IMG_", "slide_", "pic", "hero-"];
                const EXTS: &[&str] = &["jpg", "png", "jpeg", "webp", "gif"];
                format!(
                    "{}{}.{}",
                    STEMS[self.rng.gen_range(0..STEMS.len())],
                    n,
                    EXTS[self.rng.gen_range(0..EXTS.len())]
                )
            }
            DiscardCategory::UrlOrFilePath => {
                if self.rng.gen_bool(0.5) {
                    format!("https://{}/images/{}.png", self.plan.host, n)
                } else {
                    format!("/assets/img/item-{n}.svg")
                }
            }
            DiscardCategory::GenericAction => {
                let lang = if use_native {
                    native
                } else {
                    Language::English
                };
                let pool = dict::actions_in(lang);
                let pool = if pool.is_empty() {
                    dict::actions_in(Language::English)
                } else {
                    pool
                };
                pool[self.rng.gen_range(0..pool.len())].to_string()
            }
            DiscardCategory::Placeholder => {
                let lang = if use_native {
                    native
                } else {
                    Language::English
                };
                let pool = dict::placeholders_in(lang);
                let pool = if pool.is_empty() {
                    dict::placeholders_in(Language::English)
                } else {
                    pool
                };
                pool[self.rng.gen_range(0..pool.len())].to_string()
            }
            DiscardCategory::DevLabel => {
                const HEADS: &[&str] = &["btn", "nav", "img", "ico", "hdr", "card", "mod"];
                const TAILS: &[&str] = &["submit", "menu", "main", "item", "box", "wrap", "toggle"];
                let head = HEADS[self.rng.gen_range(0..HEADS.len())];
                let tail = TAILS[self.rng.gen_range(0..TAILS.len())];
                match self.rng.gen_range(0..3u8) {
                    0 => format!("{head}-{tail}"),
                    1 => format!("{head}_{tail}"),
                    _ => {
                        let mut tail_cap = tail.to_string();
                        tail_cap[..1].make_ascii_uppercase();
                        format!("{head}{tail_cap}")
                    }
                }
            }
            DiscardCategory::LabelNumberPattern => {
                const WORDS: &[&str] = &["image", "button", "slide", "figure", "banner", "item"];
                format!(
                    "{} {}",
                    WORDS[self.rng.gen_range(0..WORDS.len())],
                    self.rng.gen_range(1..20u8)
                )
            }
            DiscardCategory::SingleWord => {
                if use_native && !native.primary_script().is_cjk() {
                    for _ in 0..8 {
                        let w = self.native.word();
                        let len = w.chars().count();
                        if (3..8).contains(&len) && !w.contains(' ') {
                            return w;
                        }
                    }
                }
                const WORDS: &[&str] = &[
                    "photo", "economy", "sports", "market", "health", "culture", "weather",
                    "travel", "profile",
                ];
                WORDS[self.rng.gen_range(0..WORDS.len())].to_string()
            }
            DiscardCategory::MixedAlnum => {
                const STEMS: &[&str] = &["img", "icon", "pic", "fig", "ad", "file"];
                format!("{}{}", STEMS[self.rng.gen_range(0..STEMS.len())], n)
            }
            DiscardCategory::OrdinalPhrase => {
                let b = self.rng.gen_range(3..12u8);
                let a = self.rng.gen_range(1..=b);
                if self.rng.gen_bool(0.5) {
                    format!("{a} of {b}")
                } else {
                    format!("{a}/{b}")
                }
            }
        }
    }

    fn render(mut self) -> (String, PageTruth) {
        let mut b = SeedHtmlBuilder::document_sized(estimated_page_bytes());
        let lang_attr;
        if self.plan.declares_lang {
            lang_attr = if self.variant == ContentVariant::Global || self.plan.declared_lang_wrong {
                "en".to_string()
            } else {
                self.plan.native_language().tag().to_string()
            };
            b.open("html", &[("lang", Some(lang_attr.as_str()))]);
        } else {
            b.open("html", &[]);
        }

        b.open("head", &[]);
        b.void("meta", &[("charset", Some("utf-8"))]);
        match self.plant(ElementKind::DocumentTitle) {
            PlantedText::Missing => {}
            PlantedText::Empty => {
                b.leaf("title", &[], "");
            }
            PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                b.leaf("title", &[], &t);
            }
        }
        b.close(); // head

        b.open("body", &[]);

        let total_links = self.count_for(ElementKind::LinkName);
        let nav_links = (total_links / 5).clamp(3, 14);
        b.open("header", &[]);
        b.open("nav", &[]);
        for i in 0..nav_links {
            self.render_link(&mut b, &format!("/nav/{i}"));
        }
        b.close();
        b.close();

        b.open("main", &[]);
        let headline = self.visible_phrase(3, 8);
        b.leaf("h1", &[], &headline);

        let paragraphs = int_between(&mut self.rng, 6, 16);
        let mut text = String::with_capacity(512);
        for _ in 0..paragraphs {
            let sentences = int_between(&mut self.rng, 2, 5);
            text.clear();
            for _ in 0..sentences {
                self.append_visible_sentence(&mut text);
                text.push(' ');
            }
            b.leaf("p", &[], text.trim());
        }

        let images = self.count_for(ElementKind::ImageAlt);
        for i in 0..images {
            let src = format!("/img/{i}.jpg");
            match self.plant(ElementKind::ImageAlt) {
                PlantedText::Missing => {
                    b.void("img", &[("src", Some(src.as_str()))]);
                }
                PlantedText::Empty => {
                    b.void("img", &[("src", Some(src.as_str())), ("alt", Some(""))]);
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.void(
                        "img",
                        &[("src", Some(src.as_str())), ("alt", Some(t.as_str()))],
                    );
                }
            }
        }

        let svgs = self.count_for(ElementKind::SvgImgAlt);
        for _ in 0..svgs {
            match self.plant(ElementKind::SvgImgAlt) {
                PlantedText::Missing => {
                    b.open(
                        "svg",
                        &[("role", Some("img")), ("viewBox", Some("0 0 24 24"))],
                    );
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
                PlantedText::Empty => {
                    b.open("svg", &[("role", Some("img")), ("aria-label", Some(""))]);
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.open("svg", &[("role", Some("img"))]);
                    b.leaf("title", &[], &t);
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
            }
        }

        let frames = self.count_for(ElementKind::FrameTitle);
        for i in 0..frames {
            let src = format!("/embed/{i}");
            match self.plant(ElementKind::FrameTitle) {
                PlantedText::Missing => {
                    b.leaf("iframe", &[("src", Some(src.as_str()))], "");
                }
                PlantedText::Empty => {
                    b.leaf(
                        "iframe",
                        &[("src", Some(src.as_str())), ("title", Some(""))],
                        "",
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf(
                        "iframe",
                        &[("src", Some(src.as_str())), ("title", Some(t.as_str()))],
                        "",
                    );
                }
            }
        }

        let summaries = self.count_for(ElementKind::SummaryName);
        for _ in 0..summaries {
            b.open("details", &[]);
            match self.plant(ElementKind::SummaryName) {
                PlantedText::Missing => {
                    b.leaf("summary", &[], "");
                }
                PlantedText::Empty => {
                    b.leaf("summary", &[("aria-label", Some(""))], "");
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf("summary", &[], &t);
                }
            }
            let body = self.visible_sentencer();
            b.leaf("p", &[], &body);
            b.close();
        }

        let objects = self.count_for(ElementKind::ObjectAlt);
        for i in 0..objects {
            let data = format!("/media/{i}.pdf");
            match self.plant(ElementKind::ObjectAlt) {
                PlantedText::Missing => {
                    b.leaf("object", &[("data", Some(data.as_str()))], "");
                }
                PlantedText::Empty => {
                    b.leaf(
                        "object",
                        &[("data", Some(data.as_str())), ("aria-label", Some(""))],
                        "",
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf(
                        "object",
                        &[
                            ("data", Some(data.as_str())),
                            ("aria-label", Some(t.as_str())),
                        ],
                        "",
                    );
                }
            }
        }

        b.open(
            "form",
            &[("action", Some("/submit")), ("method", Some("post"))],
        );
        let labels = self.count_for(ElementKind::Label);
        for i in 0..labels {
            let id = format!("field-{i}");
            match self.plant(ElementKind::Label) {
                PlantedText::Missing => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("text")),
                            ("id", Some(id.as_str())),
                            ("name", Some(id.as_str())),
                        ],
                    );
                }
                PlantedText::Empty => {
                    b.leaf("label", &[("for", Some(id.as_str()))], "");
                    b.void(
                        "input",
                        &[("type", Some("text")), ("id", Some(id.as_str()))],
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf("label", &[("for", Some(id.as_str()))], &t);
                    b.void(
                        "input",
                        &[("type", Some("text")), ("id", Some(id.as_str()))],
                    );
                }
            }
        }
        let image_inputs = self.count_for(ElementKind::InputImageAlt);
        for i in 0..image_inputs {
            let src = format!("/img/btn{i}.png");
            match self.plant(ElementKind::InputImageAlt) {
                PlantedText::Missing => {
                    b.void(
                        "input",
                        &[("type", Some("image")), ("src", Some(src.as_str()))],
                    );
                }
                PlantedText::Empty => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("image")),
                            ("src", Some(src.as_str())),
                            ("alt", Some("")),
                        ],
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("image")),
                            ("src", Some(src.as_str())),
                            ("alt", Some(t.as_str())),
                        ],
                    );
                }
            }
        }
        let selects = self.count_for(ElementKind::SelectName);
        for i in 0..selects {
            let id = format!("select-{i}");
            let planted = self.plant(ElementKind::SelectName);
            match &planted {
                PlantedText::Missing => {
                    b.open("select", &[("id", Some(id.as_str()))]);
                }
                PlantedText::Empty => {
                    b.open(
                        "select",
                        &[("id", Some(id.as_str())), ("aria-label", Some(""))],
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.open(
                        "select",
                        &[("id", Some(id.as_str())), ("aria-label", Some(t.as_str()))],
                    );
                }
            }
            for opt in 0..3 {
                let text = self.visible_phrase(1, 2);
                b.leaf("option", &[("value", Some(&*opt.to_string()))], &text);
            }
            b.close();
        }
        let input_buttons = self.count_for(ElementKind::InputButtonName);
        for _ in 0..input_buttons {
            match self.plant(ElementKind::InputButtonName) {
                PlantedText::Missing => {
                    b.void("input", &[("type", Some("submit"))]);
                }
                PlantedText::Empty => {
                    b.void("input", &[("type", Some("submit")), ("value", Some(""))]);
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.void(
                        "input",
                        &[("type", Some("submit")), ("value", Some(t.as_str()))],
                    );
                }
            }
        }
        b.close(); // form

        let buttons = self.count_for(ElementKind::ButtonName);
        for _ in 0..buttons {
            let visible = self.visible_phrase(1, 2);
            match self.plant(ElementKind::ButtonName) {
                PlantedText::Missing => {
                    b.leaf("button", &[("type", Some("button"))], &visible);
                }
                PlantedText::Empty => {
                    b.leaf(
                        "button",
                        &[("type", Some("button")), ("aria-label", Some(""))],
                        &visible,
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf(
                        "button",
                        &[("type", Some("button")), ("aria-label", Some(t.as_str()))],
                        &visible,
                    );
                }
            }
        }

        let body_links = total_links.saturating_sub(nav_links);
        for i in 0..body_links {
            self.render_link(&mut b, &format!("/article/{i}"));
        }
        b.close(); // main

        b.open("footer", &[]);
        let footer_text = self.visible_sentencer();
        b.leaf("p", &[], &footer_text);
        b.close();

        b.close(); // body
        b.close(); // html
        (b.finish(), self.truth)
    }

    fn render_link(&mut self, b: &mut SeedHtmlBuilder, href: &str) {
        let visible = self.visible_phrase(1, 4);
        match self.plant(ElementKind::LinkName) {
            PlantedText::Missing => {
                b.leaf("a", &[("href", Some(href))], &visible);
            }
            PlantedText::Empty => {
                b.leaf(
                    "a",
                    &[("href", Some(href)), ("aria-label", Some(""))],
                    &visible,
                );
            }
            PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                b.leaf(
                    "a",
                    &[("href", Some(href)), ("aria-label", Some(t.as_str()))],
                    &visible,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::Country;
    use langcrux_webgen::page::RenderScratch;
    use langcrux_webgen::render;

    /// The byte/truth oracle for the whole zero-alloc render conversion:
    /// every page the pooled engine emits must equal the preserved
    /// pre-arena renderer exactly — HTML bytes, truth counts, and across
    /// repeated uses of one scratch (no state bleed between pages).
    #[test]
    fn pooled_render_matches_seed_renderer() {
        let mut scratch = RenderScratch::new();
        let mut out = String::new();
        for country in Country::STUDY {
            for index in 0..3u32 {
                let plan = SitePlan::build(97, country, index, None);
                for variant in [
                    ContentVariant::Localized,
                    ContentVariant::Global,
                    ContentVariant::Restricted,
                ] {
                    let (expect_html, expect_truth) = render_seed(&plan, variant, "/");
                    // The fresh-scratch wrapper …
                    let (html, truth) = render(&plan, variant, "/");
                    assert_eq!(html, expect_html, "{country:?}/{index}/{variant:?}");
                    assert_eq!(truth, expect_truth, "{country:?}/{index}/{variant:?}");
                    // … and the pooled path on a long-lived scratch.
                    out.clear();
                    let truth = langcrux_webgen::page::render_into(
                        &plan,
                        variant,
                        "/",
                        &mut scratch,
                        &mut out,
                    );
                    assert_eq!(out, expect_html, "pooled {country:?}/{index}/{variant:?}");
                    assert_eq!(
                        truth, expect_truth,
                        "pooled {country:?}/{index}/{variant:?}"
                    );
                }
            }
        }
    }
}
