//! Process-level plumbing for the fault-tolerant distributed build
//! (`repro --dist N`).
//!
//! The coordinator logic lives in [`langcrux_core::dist`]; this module
//! supplies the transport it is abstract over: real worker *processes*
//! (`repro --dist-worker`, each an audit server with the unit-RPC hook
//! installed), discovered through serve-style pid/port files, driven
//! over loopback HTTP, killed by the chaos harness, and respawned by the
//! coordinator's revive path.
//!
//! ## Failure surface
//!
//! * A worker that dies mid-unit (crash, chaos SIGKILL) drops the
//!   connection — the in-flight RPC fails with an I/O error, classified
//!   [`UnitError::WorkerDied`].
//! * A worker that stalls holds the socket open — the per-unit read
//!   timeout (the coordinator's lease) fires, classified
//!   [`UnitError::LeaseExpired`].
//! * Either way the unit is retried elsewhere; probe purity guarantees
//!   the retry computes identical verdicts, so the recovered build's
//!   bytes match the undisturbed one.
//!
//! ## Chaos
//!
//! `--chaos-kill-workers` arms a [`ChaosKillPlan`]: a pure function of
//! `(seed, unit key)` deciding how many dispatch attempts of each unit
//! die. On a kill-scheduled attempt the executor ships the unit with a
//! small `hold_ms` (the worker parks before executing, wall time only)
//! and SIGKILLs the worker while it holds — the kill lands *mid-unit* by
//! construction. The schedule's per-unit kill count stays below the
//! reassignment budget, so every unit eventually completes and the run
//! must still produce byte-identical output — the property CI pins.

use crate::Scale;
use langcrux_core::dist::{
    build_dataset_distributed, DistBuild, DistOptions, UnitError, UnitExecutor, UnitRequest,
    WireVerdict,
};
use langcrux_net::{ChaosKillPlan, FaultPlan};
use langcrux_serve::pidfile::{self, PidFileStatus};
use langcrux_webgen::Corpus;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Wall milliseconds a kill-scheduled unit holds before executing, and
/// the delay before the SIGKILL lands inside that hold.
const CHAOS_HOLD_MS: u64 = 120;
const CHAOS_KILL_AFTER_MS: u64 = 30;

/// SIGKILL by pid — the chaos path must kill from a thread that does not
/// own the [`Child`], so it goes through the C runtime directly (the
/// container has no `libc` crate).
#[cfg(unix)]
fn sigkill(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGKILL: i32 = 9;
    if pid != 0 && pid <= i32::MAX as u32 {
        unsafe {
            kill(pid as i32, SIGKILL);
        }
    }
}

#[cfg(not(unix))]
fn sigkill(_pid: u32) {}

/// One live worker process: the child handle plus its dial address.
struct WorkerProcess {
    child: Child,
    addr: SocketAddr,
    pidfile: PathBuf,
}

impl WorkerProcess {
    /// Spawn `repro --dist-worker` and wait for its pid/port file.
    fn spawn(dir: &std::path::Path, slot: usize, generation: u64) -> std::io::Result<Self> {
        let exe = std::env::current_exe()?;
        let pidfile = dir.join(format!("dist-worker-{slot}-{generation}.json"));
        let _ = std::fs::remove_file(&pidfile);
        let child = Command::new(exe)
            .arg("--dist-worker")
            .arg(&pidfile)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let PidFileStatus::Live(doc) = pidfile::examine(&pidfile) {
                if doc.pid == child.id() {
                    let addr = doc.addr.parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad worker addr")
                    })?;
                    return Ok(WorkerProcess {
                        child,
                        addr,
                        pidfile,
                    });
                }
            }
            if Instant::now() > deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "worker did not advertise within 30s",
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn shutdown(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.pidfile);
    }
}

/// [`UnitExecutor`] over loopback HTTP to `repro --dist-worker`
/// processes. One slot per worker; each slot is driven by its own
/// coordinator dispatcher thread, the mutex exists for revive().
pub struct HttpExecutor {
    slots: Vec<Mutex<Option<WorkerProcess>>>,
    dir: PathBuf,
    lease: Duration,
    chaos: Option<ChaosKillPlan>,
    generation: std::sync::atomic::AtomicU64,
}

impl HttpExecutor {
    /// Spawn `workers` processes and wait for all advertisements.
    pub fn spawn(
        workers: usize,
        chaos: Option<ChaosKillPlan>,
        lease_ms: u64,
    ) -> std::io::Result<Self> {
        let dir = std::env::temp_dir().join(format!("langcrux-dist-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let mut slots = Vec::with_capacity(workers);
        for slot in 0..workers {
            slots.push(Mutex::new(Some(WorkerProcess::spawn(&dir, slot, 0)?)));
        }
        Ok(HttpExecutor {
            slots,
            dir,
            lease: Duration::from_millis(lease_ms.max(1)),
            chaos,
            generation: std::sync::atomic::AtomicU64::new(1),
        })
    }

    /// Dial a worker and run one unit RPC under the lease deadline.
    fn post_unit(&self, addr: SocketAddr, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = TcpStream::connect_timeout(&addr, self.lease)?;
        stream.set_read_timeout(Some(self.lease))?;
        stream.set_write_timeout(Some(self.lease))?;
        let mut scratch = Vec::new();
        langcrux_serve::loadgen::post(&mut stream, "/v1/rpc/unit", body, &mut scratch)
    }
}

impl UnitExecutor for HttpExecutor {
    fn execute(
        &self,
        worker: usize,
        attempt: u32,
        request: &UnitRequest,
    ) -> Result<Vec<WireVerdict>, UnitError> {
        let key = request.key();
        let (addr, pid) = {
            let slot = self.slots[worker].lock().unwrap();
            match slot.as_ref() {
                Some(process) => (process.addr, process.child.id()),
                None => return Err(UnitError::WorkerDied(format!("{key}: no worker process"))),
            }
        };
        // Chaos: on a kill-scheduled attempt, ship the unit with a hold
        // and SIGKILL the worker while it parks — the kill lands
        // mid-unit. Wall time only; verdict bytes are untouched.
        let mut request = request.clone();
        if self
            .chaos
            .as_ref()
            .is_some_and(|plan| plan.should_kill(&key, attempt))
        {
            request.hold_ms = CHAOS_HOLD_MS;
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(CHAOS_KILL_AFTER_MS));
                sigkill(pid);
            });
        }
        let body = serde_json::to_string(&request)
            .map_err(|e| UnitError::WorkerDied(format!("{key}: serialize: {e}")))?;
        match self.post_unit(addr, body.as_bytes()) {
            Ok((200, response)) => {
                let text = std::str::from_utf8(&response)
                    .map_err(|e| UnitError::WorkerDied(format!("{key}: non-utf8 reply: {e}")))?;
                serde_json::from_str(text)
                    .map_err(|e| UnitError::WorkerDied(format!("{key}: bad verdicts: {e}")))
            }
            Ok((status, _)) => Err(UnitError::WorkerDied(format!(
                "{key}: worker answered {status}"
            ))),
            Err(e)
                if e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::WouldBlock =>
            {
                Err(UnitError::LeaseExpired(format!("{key}: {e}")))
            }
            Err(e) => Err(UnitError::WorkerDied(format!("{key}: {e}"))),
        }
    }

    /// A worker is alive when its process has not exited and its
    /// `/v1/healthz` answers within the lease.
    fn heartbeat(&self, worker: usize) -> bool {
        let mut slot = self.slots[worker].lock().unwrap();
        let Some(process) = slot.as_mut() else {
            return false;
        };
        match process.child.try_wait() {
            Ok(None) => {}
            // Exited or unknowable: declare dead, let revive() respawn.
            _ => return false,
        }
        let Ok(mut stream) = TcpStream::connect_timeout(&process.addr, self.lease) else {
            return false;
        };
        let _ = stream.set_read_timeout(Some(self.lease));
        let mut scratch = Vec::new();
        matches!(
            langcrux_serve::loadgen::get(&mut stream, "/v1/healthz", &mut scratch),
            Ok((200, _))
        )
    }

    fn revive(&self, worker: usize) -> bool {
        let mut slot = self.slots[worker].lock().unwrap();
        if let Some(old) = slot.take() {
            old.shutdown();
        }
        let generation = self
            .generation
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        match WorkerProcess::spawn(&self.dir, worker, generation) {
            Ok(process) => {
                *slot = Some(process);
                true
            }
            Err(e) => {
                eprintln!("dist: failed to respawn worker {worker}: {e}");
                false
            }
        }
    }
}

impl Drop for HttpExecutor {
    fn drop(&mut self) {
        for slot in &self.slots {
            if let Some(process) = slot.lock().unwrap().take() {
                process.shutdown();
            }
        }
        let _ = std::fs::remove_dir(&self.dir);
    }
}

/// Knobs `repro --dist N` exposes on top of [`DistOptions`] defaults.
#[derive(Debug, Clone, Default)]
pub struct DistRunConfig {
    /// Worker processes to spawn (clamped to ≥ 1).
    pub workers: usize,
    /// Arm the deterministic chaos harness ([`ChaosKillPlan::standard`]).
    pub chaos_kill_workers: bool,
    /// Append-only unit-checkpoint log path (`--dist-checkpoint`).
    pub checkpoint: Option<PathBuf>,
}

/// Build corpus + dataset with real worker processes — the distributed
/// sibling of [`crate::build_scaled_dataset_with_gaps`]. Byte-identical
/// output to the in-process build at every worker count, with or without
/// chaos kills; that is the property `repro --dist` exists to demonstrate
/// and CI pins.
pub fn build_distributed_dataset(
    seed: u64,
    scale: Scale,
    plan: FaultPlan,
    gaps: bool,
    run: &DistRunConfig,
) -> std::io::Result<(Corpus, DistBuild)> {
    let corpus = crate::build_corpus_with_gaps(seed, scale, plan, gaps);
    let options = DistOptions {
        quota: scale.sites_per_country(),
        workers: run.workers.max(1),
        checkpoint: run.checkpoint.clone(),
        ..DistOptions::default()
    };
    let chaos = run
        .chaos_kill_workers
        .then(|| ChaosKillPlan::standard(seed));
    let executor = HttpExecutor::spawn(options.workers, chaos, options.lease_ms)?;
    let build = build_dataset_distributed(&corpus, &executor, &options).map_err(|halted| {
        std::io::Error::other(format!(
            "coordinator halted after {} units",
            halted.units_completed
        ))
    })?;
    Ok((corpus, build))
}
