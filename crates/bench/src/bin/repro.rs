//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [ARTIFACT...] [--sites N | --quick | --full] [--seed S]
//!       [--fault-plan reliable|default|hostile|PATH.json] [--gap-scenarios]
//!       [--trace-out [PATH]] [--trace-summary] [--metrics-out FILE]
//!       [--report] [--bench-json [PATH]] [--serve-bench [PATH]]
//!       [--serve-daemon [PATH]] [--serve-core threaded|reactor]
//!       [--port N] [--loadgen ADDR] [--dataset-out FILE]
//!       [--dist N] [--chaos-kill-workers] [--dist-checkpoint PATH]
//!       [--dist-worker [PATH]]
//!
//! ARTIFACT: all (default) | table1 | table2 | table3 | table4 | table5
//!         | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9
//!         | headlines | selection | crawl
//!         | ablation-vpn | ablation-langid | ablation-crawl
//! ```
//!
//! `--bench-json` times the seed pipeline against the fused single-pass
//! engine at `Scale::Quick` and `Scale::Default` (or the scale given by
//! `--sites/--quick/--full`), writing the before/after record to
//! `BENCH_pipeline.json` (or PATH). Bench flags replace the implicit
//! `all` artefact run; artefacts named explicitly alongside a bench flag
//! are still produced.
//! On multi-core hosts the record also carries per-worker-count timings
//! (`worker_scaling`). Run it under `--release` for meaningful numbers.
//!
//! `--serve-bench` spawns the `langcrux-serve` audit server on an
//! ephemeral loopback port, drives it with the load generator (cold =
//! all cache misses, hot = all cache hits, bounded = hot with the
//! connection governor at its tightest), and writes `BENCH_serve.json`
//! (or PATH). `--quick` shrinks the workload to CI-smoke size.
//!
//! `--trace-out [PATH]` runs the dataset build inside a span-tracing
//! session and writes the merged spans as Chrome `traceEvents` JSON
//! (default `trace.json`) — load it in `chrome://tracing` or Perfetto
//! (pid 1 = the run, one tid per worker). `--trace-summary` prints a
//! per-stage count/total/p50/p99 table after the build. Neither flag
//! changes the dataset or `crawl-ledger.json` bytes: span structure is
//! deterministic for a seed, only wall-clock fields vary.
//!
//! `--metrics-out FILE` writes the unified registry exposition (build
//! info + net + crawl-ledger + corpus-shard (+ trace when tracing ran)
//! metric families) as a node_exporter-style textfile snapshot after the
//! build. `--report` prints the same registry-rendered exposition as an
//! artifact section; the classic `ledger:` / `corpus shards:` stderr
//! lines stay by default for script compatibility.
//!
//! `--serve-daemon` runs the audit server as a long-lived foreground
//! process: it binds `127.0.0.1:<--port>` (default ephemeral), writes a
//! `{"pid":…,"port":…,"addr":…}` JSON file at PATH (default
//! `serve-daemon.json`), and serves until SIGTERM/SIGINT, then drains
//! gracefully — in-flight requests complete, the accept loop stops, all
//! connection threads join — removes the file, and exits 0. With
//! explicitly named artifacts the daemon starts *after* that build and
//! registers its observations (net, ledger, shard, pipeline-stage
//! families) into the server's registry, so `/v1/metrics` exposes the
//! build alongside the serve counters; without explicit artifacts the
//! daemon skips the implicit `all` run and starts immediately. Load
//! tests point at it with `--loadgen ADDR`, which drives a quick
//! load-gen run against an *external* server and exits non-zero on any
//! failed request.
//!
//! `--dist N` runs the dataset build as a fault-tolerant distributed
//! system: N worker *processes* (each `repro --dist-worker`, an audit
//! server with the unit-RPC hook installed) are spawned and driven over
//! loopback HTTP by the in-process coordinator, which leases
//! `(country, chunk)` work units, retries units whose worker dies or
//! stalls, and replays completed verdicts sequentially — so the dataset
//! and `crawl-ledger.json` bytes are identical to the single-process
//! build at every worker count. `--chaos-kill-workers` arms the
//! deterministic crash harness (SIGKILL workers mid-unit on a schedule
//! pure in `(seed, unit)`); the bytes must *still* match, which CI pins.
//! `--dist-checkpoint PATH` appends completed units to a checkpoint log
//! so a killed coordinator resumes without recomputing them. Units that
//! exhaust their reassignment budget land in the ledger's
//! `degraded_units` section instead of aborting the run.
//!
//! `--dataset-out FILE` writes the dataset JSON after the build (both
//! single-process and distributed) — the byte-comparison hook the
//! distributed CI smoke uses.
//!
//! `--gap-scenarios` enables the corpus's partial-localisation
//! scenarios (untranslated chrome, per-subtree `lang` mismatches,
//! fallback English strings): the dataset's site records carry gap
//! verdicts, the ledger counts gap pages/regions per country, and a
//! `gaps:` stderr line summarises the run. Without the flag the corpus,
//! dataset, and ledger bytes are identical to the historical run.
//!
//! `--fault-plan` selects the simulated network's fault behaviour for
//! the dataset build: a preset name (`reliable`, `default`, `hostile`)
//! or a path to a JSON file with any subset of `FaultPlan`'s fields
//! (missing fields take the default plan's values). Every dataset build
//! prints the simulated internet's traffic counters and writes the
//! degraded-run ledger to `crawl-ledger.json` alongside the artefacts.
//!
//! The harness builds the synthetic corpus, runs the full LangCrUX
//! pipeline, and prints the paper-format rows/series. Absolute values are
//! corpus-scale dependent; the *shapes* (orderings, crossovers, drops)
//! reproduce the paper — see EXPERIMENTS.md for paper-vs-measured.

use langcrux_bench::{langid_ablation, vpn_ablation, Scale};
use langcrux_core::{analysis, render, selection, Dataset};
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::rng::DEFAULT_SEED;
use langcrux_lang::Country;

struct Args {
    artifacts: Vec<String>,
    /// Whether artifacts were named on the command line (as opposed to
    /// the implicit `all` default). Bench flags replace the implicit
    /// default but never swallow explicitly requested artifacts.
    explicit_artifacts: bool,
    scale: Scale,
    scale_overridden: bool,
    seed: u64,
    /// `Some(path)` when `--bench-json` was requested.
    bench_json: Option<String>,
    /// `Some(path)` when `--serve-bench` was requested.
    serve_bench: Option<String>,
    /// `Some(pid/port-file path)` when `--serve-daemon` was requested.
    serve_daemon: Option<String>,
    /// Connection engine for `--serve-daemon` (`--serve-core`); the
    /// default is the platform's best core (the reactor on Linux).
    serve_core: langcrux_serve::ServeCore,
    /// Port for the daemon listener (0 = ephemeral).
    port: u16,
    /// `Some(host:port)` when `--loadgen` was requested.
    loadgen: Option<String>,
    /// Fault plan for the dataset build (default: the default plan).
    fault_plan: langcrux_net::FaultPlan,
    /// Enable the corpus's translation-gap scenarios (`--gap-scenarios`).
    gap_scenarios: bool,
    /// `Some(path)` when `--trace-out` was requested.
    trace_out: Option<String>,
    /// Print the per-stage span summary table after the build.
    trace_summary: bool,
    /// `Some(path)` when `--metrics-out` was requested.
    metrics_out: Option<String>,
    /// Print the unified registry report after the build.
    report: bool,
    /// `Some(workers)` when `--dist` was requested: build the dataset
    /// through the distributed coordinator with that many worker
    /// processes.
    dist: Option<usize>,
    /// Arm the deterministic worker-crash harness for `--dist`.
    chaos_kill_workers: bool,
    /// `Some(path)` when `--dist-checkpoint` was requested.
    dist_checkpoint: Option<String>,
    /// `Some(pid/port-file path)` when running as a distributed-build
    /// worker process (`--dist-worker`).
    dist_worker: Option<String>,
    /// `Some(path)` when `--dataset-out` was requested.
    dataset_out: Option<String>,
}

/// Resolve a `--fault-plan` value: a preset name, or a path to a JSON
/// file carrying any subset of `FaultPlan`'s fields.
fn resolve_fault_plan(value: &str) -> langcrux_net::FaultPlan {
    if let Some(plan) = langcrux_bench::fault_plan_preset(value) {
        return plan;
    }
    let text = std::fs::read_to_string(value).unwrap_or_else(|e| {
        panic!("--fault-plan: not a preset (reliable|default|hostile) and cannot read {value}: {e}")
    });
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("--fault-plan: invalid fault-plan JSON in {value}: {e}"))
}

fn parse_args() -> Args {
    let mut artifacts = Vec::new();
    let mut scale = Scale::Default;
    let mut scale_overridden = false;
    let mut seed = DEFAULT_SEED;
    let mut fault_plan = langcrux_net::FaultPlan::default();
    let mut gap_scenarios = false;
    let mut bench_json = None;
    let mut serve_bench = None;
    let mut serve_daemon = None;
    let mut serve_core = langcrux_serve::ServeCore::default();
    let mut port = 0u16;
    let mut loadgen = None;
    let mut trace_out = None;
    let mut trace_summary = false;
    let mut metrics_out = None;
    let mut report = false;
    let mut dist = None;
    let mut chaos_kill_workers = false;
    let mut dist_checkpoint = None;
    let mut dist_worker = None;
    let mut dataset_out = None;
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                scale = Scale::Quick;
                scale_overridden = true;
            }
            "--full" => {
                scale = Scale::Full;
                scale_overridden = true;
            }
            "--sites" => {
                let n = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sites requires a number");
                scale = Scale::Sites(n);
                scale_overridden = true;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires a u64");
            }
            "--fault-plan" => {
                let value = iter
                    .next()
                    .expect("--fault-plan requires reliable|default|hostile|PATH.json");
                fault_plan = resolve_fault_plan(&value);
            }
            "--gap-scenarios" => {
                gap_scenarios = true;
            }
            "--bench-json" => {
                // Only a `.json`-looking token is taken as the output path,
                // so a trailing artifact name or flag typo is not silently
                // consumed as a file name.
                let path = match iter.peek() {
                    Some(next) if next.ends_with(".json") => iter.next().unwrap(),
                    _ => "BENCH_pipeline.json".to_string(),
                };
                bench_json = Some(path);
            }
            "--serve-bench" => {
                let path = match iter.peek() {
                    Some(next) if next.ends_with(".json") => iter.next().unwrap(),
                    _ => "BENCH_serve.json".to_string(),
                };
                serve_bench = Some(path);
            }
            "--serve-daemon" => {
                let path = match iter.peek() {
                    Some(next) if next.ends_with(".json") => iter.next().unwrap(),
                    _ => "serve-daemon.json".to_string(),
                };
                serve_daemon = Some(path);
            }
            "--serve-core" => {
                let value = iter.next().expect("--serve-core requires threaded|reactor");
                serve_core = match value.as_str() {
                    "threaded" => langcrux_serve::ServeCore::Threaded,
                    "reactor" => langcrux_serve::ServeCore::Reactor,
                    other => panic!("--serve-core: unknown core {other:?} (threaded|reactor)"),
                };
            }
            "--trace-out" => {
                let path = match iter.peek() {
                    Some(next) if next.ends_with(".json") => iter.next().unwrap(),
                    _ => "trace.json".to_string(),
                };
                trace_out = Some(path);
            }
            "--trace-summary" => {
                trace_summary = true;
            }
            "--metrics-out" => {
                metrics_out = Some(iter.next().expect("--metrics-out requires a file path"));
            }
            "--report" => {
                report = true;
            }
            "--dist" => {
                let n: usize = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--dist requires a worker count");
                dist = Some(n.max(1));
            }
            "--chaos-kill-workers" => {
                chaos_kill_workers = true;
            }
            "--dist-checkpoint" => {
                dist_checkpoint = Some(iter.next().expect("--dist-checkpoint requires a path"));
            }
            "--dist-worker" => {
                let path = match iter.peek() {
                    Some(next) if next.ends_with(".json") => iter.next().unwrap(),
                    _ => "dist-worker.json".to_string(),
                };
                dist_worker = Some(path);
            }
            "--dataset-out" => {
                dataset_out = Some(iter.next().expect("--dataset-out requires a file path"));
            }
            "--port" => {
                port = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--port requires a u16");
            }
            "--loadgen" => {
                loadgen = Some(iter.next().expect("--loadgen requires host:port"));
            }
            "--help" | "-h" => {
                println!(
                    "repro [ARTIFACT...] [--sites N | --quick | --full] [--seed S] \
                     [--fault-plan reliable|default|hostile|PATH.json] [--gap-scenarios] \
                     [--trace-out [PATH]] [--trace-summary] [--metrics-out FILE] [--report] \
                     [--bench-json [PATH]] [--serve-bench [PATH]] \
                     [--serve-daemon [PATH]] [--serve-core threaded|reactor] \
                     [--port N] [--loadgen ADDR] [--dataset-out FILE] \
                     [--dist N] [--chaos-kill-workers] [--dist-checkpoint PATH] \
                     [--dist-worker [PATH]]\n\
                     artifacts: all table1 table2 table3 table4 table5 fig2 fig3 fig4 \
                     fig5 fig6 fig7 fig8 fig9 headlines langmeta speech report selection crawl \
                     ablation-vpn ablation-langid ablation-crawl"
                );
                std::process::exit(0);
            }
            other => artifacts.push(other.to_string()),
        }
    }
    let explicit_artifacts = !artifacts.is_empty();
    if artifacts.is_empty() {
        artifacts.push("all".to_string());
    }
    Args {
        artifacts,
        explicit_artifacts,
        scale,
        scale_overridden,
        seed,
        bench_json,
        serve_bench,
        serve_daemon,
        serve_core,
        port,
        loadgen,
        fault_plan,
        gap_scenarios,
        trace_out,
        trace_summary,
        metrics_out,
        report,
        dist,
        chaos_kill_workers,
        dist_checkpoint,
        dist_worker,
        dataset_out,
    }
}

/// Everything one dataset build left behind for the unified registry:
/// the simulated internet's counters, the degraded-run ledger, the
/// lazy-shard gauges, and (when a trace session ran) the span report.
struct BuildObservations {
    net: langcrux_net::NetMetrics,
    ledger: langcrux_core::CrawlLedger,
    shards: langcrux_webgen::ShardStats,
    trace: Option<langcrux_obs::trace::TraceReport>,
    /// Coordinator counters when the build ran distributed (`--dist`).
    dist: Option<langcrux_core::DistStats>,
}

impl BuildObservations {
    fn encode(&self, enc: &mut langcrux_obs::Encoder) {
        self.net.encode_metrics(enc);
        self.ledger.encode_metrics(enc);
        self.shards.encode_metrics(enc);
        if let Some(trace) = &self.trace {
            trace.encode_metrics(enc);
        }
        if let Some(dist) = &self.dist {
            dist.encode_metrics(enc);
        }
    }

    /// The full exposition: build info + every build metric family.
    fn exposition(&self) -> String {
        let mut enc = langcrux_obs::Encoder::new();
        langcrux_obs::registry::encode_build_info(
            &mut enc,
            "langcrux-repro",
            env!("CARGO_PKG_VERSION"),
        );
        self.encode(&mut enc);
        enc.prometheus_text()
    }
}

/// SIGTERM/SIGINT latch for the daemon, via the C runtime's `signal`
/// (the container has no `libc` crate; the two symbols declared here are
/// all the daemon needs).
#[cfg(unix)]
mod daemon_signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

/// `--serve-daemon`: run the audit server until SIGTERM, then drain.
/// With `observations` from a preceding artifact build, the build's
/// metric families are registered into the server's registry so
/// `/v1/metrics` and `/v1/stats` expose them next to the serve counters.
fn run_serve_daemon(
    file_path: &str,
    port: u16,
    core: langcrux_serve::ServeCore,
    observations: Option<BuildObservations>,
) -> ! {
    #[cfg(not(unix))]
    {
        let _ = (file_path, port, core, observations);
        eprintln!("--serve-daemon needs unix signal handling");
        std::process::exit(2);
    }
    #[cfg(unix)]
    {
        use langcrux_serve::ServeConfig;
        daemon_signals::install();
        let config = ServeConfig {
            addr: format!("127.0.0.1:{port}").parse().expect("loopback addr"),
            core,
            ..ServeConfig::default()
        };
        let server = langcrux_serve::spawn(config).expect("bind daemon listener");
        if let Some(observations) = observations {
            server
                .state()
                .extra
                .register(move |enc| observations.encode(enc));
        }
        let addr = server.addr();
        // Claim the pid/port file: a stale file (dead pid — SIGKILL, OOM)
        // is replaced so restarts never wedge; a live holder is refused
        // so a running daemon's advertisement is never clobbered.
        let doc = langcrux_serve::PidFileDoc::new(addr.port(), &addr.to_string());
        if let Err(held) = langcrux_serve::claim_pidfile(std::path::Path::new(file_path), &doc) {
            let holder = match held {
                langcrux_serve::PidFileStatus::Live(doc) => doc.pid,
                _ => 0,
            };
            eprintln!("serve daemon: refusing to start — {file_path} is held by live pid {holder}");
            server.shutdown();
            std::process::exit(3);
        }
        eprintln!(
            "serve daemon: http://{addr} on the {} core (pid {}, pid/port file {file_path}); \
             SIGTERM drains",
            core.effective().name(),
            std::process::id()
        );
        while !daemon_signals::stopped() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("serve daemon: signal received, draining …");
        let stats = server.shutdown();
        let _ = std::fs::remove_file(file_path);
        eprintln!(
            "serve daemon: drained cleanly — {} requests served ({} audit, {} batch, {} shed, {} errors)",
            stats.requests.total(),
            stats.requests.audit,
            stats.requests.batch,
            stats.requests.shed,
            stats.requests.errors,
        );
        std::process::exit(0);
    }
}

/// `--dist-worker`: run as a distributed-build worker — the audit server
/// with the unit-RPC hook installed, advertised through a pid/port file
/// the coordinator polls. Uses the thread-per-connection core: a unit
/// RPC executes a whole `(country, chunk)` work unit, far beyond the
/// reactor's run-to-completion window for short requests.
fn run_dist_worker(file_path: &str, port: u16) -> ! {
    #[cfg(not(unix))]
    {
        let _ = (file_path, port);
        eprintln!("--dist-worker needs unix signal handling");
        std::process::exit(2);
    }
    #[cfg(unix)]
    {
        use langcrux_serve::{RpcHook, ServeConfig, ServeCore};
        use std::sync::Arc;
        daemon_signals::install();
        let state = Arc::new(langcrux_core::WorkerState::new());
        let hook = RpcHook(Arc::new(move |name, body| match name {
            "unit" => Some(match state.handle_unit(body) {
                Ok(json) => (200, json.into_bytes()),
                Err(err) => (
                    400,
                    serde_json::to_string(&err)
                        .expect("serialize worker error")
                        .into_bytes(),
                ),
            }),
            _ => None,
        }));
        let config = ServeConfig {
            addr: format!("127.0.0.1:{port}").parse().expect("loopback addr"),
            core: ServeCore::Threaded,
            rpc: Some(hook),
            ..ServeConfig::default()
        };
        let server = langcrux_serve::spawn(config).expect("bind worker listener");
        let addr = server.addr();
        // Same stale-vs-live discipline as the daemon: replace leftovers
        // of a crashed worker, never clobber a live one's advertisement.
        let doc = langcrux_serve::PidFileDoc::new(addr.port(), &addr.to_string());
        if langcrux_serve::claim_pidfile(std::path::Path::new(file_path), &doc).is_err() {
            eprintln!("dist worker: refusing to start — {file_path} is held by a live process");
            server.shutdown();
            std::process::exit(3);
        }
        eprintln!(
            "dist worker: http://{addr} (pid {}, pid/port file {file_path})",
            std::process::id()
        );
        while !daemon_signals::stopped() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        server.shutdown();
        let _ = std::fs::remove_file(file_path);
        std::process::exit(0);
    }
}

/// `--loadgen ADDR`: quick load-gen against an external (daemon) server.
fn run_external_loadgen(addr: &str, seed: u64) -> ! {
    let addr: std::net::SocketAddr = addr.parse().expect("--loadgen needs host:port");
    let pages = langcrux_bench::serve_bench::bench_pages(seed, 24);
    let run = langcrux_serve::run_load(addr, &pages, 4, 96).expect("load run against daemon");
    eprintln!(
        "loadgen vs {addr}: {} requests, {} errors, {:.1} req/s (p50 {:.2} ms, p99 {:.2} ms)",
        run.requests, run.errors, run.req_per_sec, run.p50_ms, run.p99_ms
    );
    std::process::exit(if run.errors == 0 { 0 } else { 1 });
}

fn needs_dataset(artifacts: &[String]) -> bool {
    artifacts.iter().any(|a| {
        !matches!(
            a.as_str(),
            "table1"
                | "table3"
                | "selection"
                | "ablation-vpn"
                | "ablation-langid"
                | "ablation-crawl"
        )
    })
}

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.dist_worker {
        run_dist_worker(path, args.port);
    }
    if let Some(addr) = &args.loadgen {
        run_external_loadgen(addr, args.seed);
    }
    if let Some(path) = &args.serve_bench {
        let config = langcrux_bench::serve_bench::ServeBenchConfig::for_scale(args.scale);
        eprintln!(
            "serve bench: {} pages × (1 cold + {} hot) passes over {} connections …",
            config.pages, config.rounds, config.connections
        );
        let report = langcrux_bench::serve_bench::serve_bench_report(args.seed, config);
        eprintln!(
            "  cold {:>8.1} req/s (p50 {:.2} ms, p99 {:.2} ms)",
            report.cold.req_per_sec, report.cold.p50_ms, report.cold.p99_ms
        );
        eprintln!(
            "  hot  {:>8.1} req/s (p50 {:.2} ms, p99 {:.2} ms) — {:.1}× cold",
            report.hot.req_per_sec, report.hot.p50_ms, report.hot.p99_ms, report.hot_vs_cold
        );
        eprintln!(
            "  bounded {:>5.1} req/s with the governor at cap == connections — {:.2}× hot",
            report.bounded.req_per_sec, report.bounded_vs_hot
        );
        for entry in &report.high_concurrency.cores {
            eprintln!(
                "  high-concurrency [{:>8}]: {:>8.1} req/s hot-only vs {:>8.1} req/s with {} \
                 idle conns — flat ratio {:.3}",
                entry.core,
                entry.hot_baseline.req_per_sec,
                entry.high.hot.req_per_sec,
                entry.high.idle_connections,
                entry.flat_ratio,
            );
        }
        langcrux_bench::serve_bench::write_serve_json(path, &report).expect("write serve json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.bench_json {
        let scales: Vec<Scale> = if args.scale_overridden {
            vec![args.scale]
        } else {
            vec![Scale::Quick, Scale::Default]
        };
        eprintln!(
            "timing seed vs fused pipeline at {} scale(s) …",
            scales.len()
        );
        let report = langcrux_bench::perf::pipeline_bench_report(args.seed, &scales);
        for t in &report.timings {
            eprintln!(
                "  {:<10} {:>6} sites/country: baseline {:>9.1} ms, fused {:>9.1} ms — {:.2}×",
                t.scale, t.sites_per_country, t.baseline_ms, t.fused_ms, t.speedup
            );
        }
        let s = &report.stream_vs_dom;
        eprintln!(
            "  per-visit extract ({} pages): dom {:.1} µs, streaming {:.1} µs — {:.2}×",
            s.pages, s.dom_us_per_page, s.stream_us_per_page, s.speedup
        );
        let r = &report.render;
        eprintln!(
            "  per-page render ({} pages): pre-arena {:.1} µs, pooled {:.1} µs — {:.2}×",
            r.pages, r.baseline_us_per_page, r.render_us_per_page, r.speedup
        );
        langcrux_bench::perf::write_bench_json(path, &report).expect("write bench json");
        eprintln!("wrote {path}");
    }
    // Bench flags and the daemon stand in for the implicit `all` run, but
    // explicitly named artifacts alongside them are still produced (no
    // silent drop) — and an artifact-less daemon starts without a build.
    if (args.serve_bench.is_some() || args.bench_json.is_some() || args.serve_daemon.is_some())
        && !args.explicit_artifacts
    {
        if let Some(path) = &args.serve_daemon {
            run_serve_daemon(path, args.port, args.serve_core, None);
        }
        return;
    }
    let all = args.artifacts.iter().any(|a| a == "all");
    let wants = |name: &str| all || args.artifacts.iter().any(|a| a == name);

    // Any observability output wants the build traced; tracing never
    // changes the dataset or ledger bytes (see tests/trace_export.rs).
    let trace_wanted = args.trace_out.is_some()
        || args.trace_summary
        || args.metrics_out.is_some()
        || args.report
        || args.serve_daemon.is_some();
    let mut observations: Option<BuildObservations> = None;

    let dataset: Option<Dataset> = if needs_dataset(&args.artifacts) {
        eprintln!(
            "building corpus + dataset: {} sites/country, seed {:#x} …",
            args.scale.sites_per_country(),
            args.seed
        );
        let session = trace_wanted
            .then(|| langcrux_obs::trace::start(langcrux_obs::trace::TraceConfig::default()));
        let start = std::time::Instant::now();
        let (corpus, ds, ledger, dist_stats) = if let Some(workers) = args.dist {
            eprintln!(
                "distributed build: {workers} worker process(es){}{}",
                if args.chaos_kill_workers {
                    ", chaos kills armed"
                } else {
                    ""
                },
                match &args.dist_checkpoint {
                    Some(path) => format!(", checkpoint log {path}"),
                    None => String::new(),
                },
            );
            let run = langcrux_bench::dist::DistRunConfig {
                workers,
                chaos_kill_workers: args.chaos_kill_workers,
                checkpoint: args.dist_checkpoint.as_ref().map(std::path::PathBuf::from),
            };
            let (corpus, build) = langcrux_bench::dist::build_distributed_dataset(
                args.seed,
                args.scale,
                args.fault_plan,
                args.gap_scenarios,
                &run,
            )
            .expect("distributed build");
            let s = &build.stats;
            eprintln!(
                "dist: {} units over {} waves ({} executed, {} from checkpoint), \
                 {} reassignments, {} worker deaths, {} lease expirations, \
                 {} revivals, {} degraded unit(s)",
                s.units_planned,
                s.waves,
                s.units_executed,
                s.units_from_checkpoint,
                s.reassignments,
                s.worker_deaths,
                s.lease_expirations,
                s.worker_revivals,
                s.degraded_units,
            );
            (corpus, build.dataset, build.ledger, Some(build.stats))
        } else {
            let (corpus, ds, ledger) = langcrux_bench::build_scaled_dataset_with_gaps(
                args.seed,
                args.scale,
                args.fault_plan,
                args.gap_scenarios,
            );
            (corpus, ds, ledger, None)
        };
        eprintln!(
            "dataset ready: {} sites in {:.1?}",
            ds.len(),
            start.elapsed()
        );
        let trace_report = session.map(|s| s.finish());
        // Traffic counters of the simulated internet for this build —
        // under a faulty plan these show what the retry discipline and
        // the replacement rule absorbed.
        let net = corpus.internet().metrics();
        eprintln!(
            "net: {} requests ({} localized, {} global, {} restricted), \
             {} timeouts, {} resets, {} 5xx, {} geo-blocks, {} unknown hosts, \
             {} vpn-detections, {} truncated, {} garbled, {} slow, {} bytes served",
            net.requests,
            net.localized_responses,
            net.global_responses,
            net.restricted_responses,
            net.timeouts,
            net.resets,
            net.server_errors,
            net.geo_blocks,
            net.unknown_hosts,
            net.vpn_detections,
            net.truncated_bodies,
            net.garbled_bodies,
            net.slow_responses,
            net.bytes_served,
        );
        // The degraded-run ledger travels with the dataset.
        let totals = &ledger.totals;
        eprintln!(
            "ledger: {} attempted, {} selected, {} retries, {} errors \
             ({} deadline, {} breaker-open), {} replacements (max run {}), \
             {} poisoned site(s); breaker opened {}×",
            totals.attempted,
            totals.selected,
            totals.retries,
            totals.errors.total(),
            totals.errors.deadline_exceeded,
            totals.errors.circuit_open,
            totals.replacements,
            totals.max_replacement_run,
            totals.poisoned_sites.len(),
            totals.breaker_opened,
        );
        if args.gap_scenarios {
            eprintln!(
                "gaps: {} page(s) with translation gaps, {} region(s) flagged",
                ledger.totals.gap_pages, ledger.totals.gap_regions,
            );
        }
        let ledger_json = ledger.to_json().expect("serialize crawl ledger");
        std::fs::write("crawl-ledger.json", ledger_json + "\n").expect("write crawl-ledger.json");
        eprintln!("wrote crawl-ledger.json");
        // The lazy-shard gauges: peak_live bounds corpus memory at
        // peak_live × per-country shard size (builds > countries means
        // shards were revived after LRU eviction; peak_resident is the
        // cache high-water mark, ≤ the cap).
        let shards = corpus.shard_stats();
        eprintln!(
            "corpus shards: {} built, {} evicted, peak resident {}, peak live {} (cap {})",
            shards.builds,
            shards.evictions,
            shards.peak_resident,
            shards.peak_live,
            if shards.resident_cap == 0 {
                "unbounded".to_string()
            } else {
                shards.resident_cap.to_string()
            }
        );
        if let Some(trace) = &trace_report {
            if args.trace_summary {
                eprint!("{}", trace.summary_table());
            }
            if let Some(path) = &args.trace_out {
                let chrome = langcrux_obs::chrome::trace_events_json(trace);
                std::fs::write(path, chrome + "\n").expect("write trace json");
                eprintln!(
                    "wrote {path} ({} spans across {} workers — load in chrome://tracing or Perfetto)",
                    trace.span_count(),
                    trace.workers.len()
                );
            }
        }
        observations = Some(BuildObservations {
            net,
            ledger,
            shards,
            trace: trace_report,
            dist: dist_stats,
        });
        if let Some(path) = &args.dataset_out {
            let json = ds.to_json().expect("serialize dataset");
            std::fs::write(path, json + "\n").expect("write dataset json");
            eprintln!("wrote {path}");
        }
        Some(ds)
    } else {
        None
    };
    let ds = dataset.as_ref();

    if wants("table1") {
        section("Table 1 — web elements requiring natural language");
        for kind in ElementKind::ALL {
            println!("  {}", kind.audit_id());
        }
    }
    if wants("selection") {
        section("§2 — language & country selection (X2)");
        for (lang, verdict) in selection::select_languages() {
            println!("  {:<24} {:?}", lang.name(), verdict);
        }
    }
    if let Some(ds) = ds {
        if wants("table2") {
            section("Table 2 — accessibility element statistics");
            print!("{}", render::table2(&analysis::table2(ds)));
        }
        if wants("fig2") {
            section("Figure 2 — native vs English in visible text (density grids)");
            for country in [Country::India, Country::Israel] {
                let points = analysis::visible_scatter(ds, country);
                print!(
                    "{}",
                    render::scatter_density(
                        &format!(
                            "{} — x: English %, y: {} %",
                            country.name(),
                            country.target_language().name()
                        ),
                        &points,
                        (0.0, 60.0),
                        (0.0, 100.0),
                    )
                );
            }
        }
        if wants("fig3") {
            section("Figure 3 — filtered accessibility texts by discard reason × country");
            print!("{}", render::discards(&analysis::discard_by_country(ds)));
        }
        if wants("fig4") {
            section("Figure 4 — language distribution of informative accessibility texts");
            print!(
                "{}",
                render::lang_distribution(&analysis::lang_distribution(ds))
            );
        }
        if wants("fig5") {
            section("Figure 5 — CDFs of native share: visible vs accessibility text");
            print!("{}", render::mismatch_cdfs(&analysis::mismatch_cdfs(ds)));
        }
        if wants("fig6") {
            section("Figure 6 — scores before/after Kizuki (bd + th, image-alt passers)");
            let shift = analysis::kizuki_shift(ds, &[Country::Bangladesh, Country::Thailand]);
            print!("{}", render::kizuki_shift(&shift));
        }
        if wants("fig7") {
            section("Figure 7 — website rank distribution × country");
            print!("{}", render::rank_heatmap(&analysis::rank_heatmap(ds)));
        }
        if wants("fig8") {
            section("Figure 8 — visible vs accessibility native share per country");
            for country in ds.countries() {
                let points = analysis::mismatch_scatter(ds, country);
                print!(
                    "{}",
                    render::scatter_density(
                        &format!("{} — x: visible native %, y: a11y native %", country.name()),
                        &points,
                        (50.0, 100.0),
                        (0.0, 100.0),
                    )
                );
            }
        }
        if wants("fig8") {
            println!("\nPearson(visible native %, a11y native %) per country:");
            for (code, r) in analysis::mismatch_correlation(ds) {
                match r {
                    Some(r) => println!("  {code:<4} {r:>6.3}"),
                    None => println!("  {code:<4}    n/a"),
                }
            }
        }
        if wants("fig9") {
            section("Figure 9 — discard reasons × element kind");
            print!("{}", render::discards(&analysis::discard_by_element(ds)));
        }
        if wants("table4") {
            section("Table 4 — extreme alt texts (>1000 chars)");
            print!("{}", render::extreme_examples(&ds.extreme_examples));
        }
        if wants("table5") {
            section("Table 5 — visible/accessibility language mismatches");
            print!("{}", render::mismatch_examples(&ds.mismatch_examples));
        }
        if wants("langmeta") {
            section("X3 (extension) — declared <html lang> consistency");
            print!("{}", render::declared_lang(&analysis::declared_lang(ds)));
        }
        if wants("headlines") {
            section("Headline findings (§1/§3)");
            print!("{}", render::headlines(&analysis::headlines(ds)));
        }
        if wants("report") {
            // The one-shot Markdown report (written to repro-report.md).
            let report = langcrux_core::markdown_report(ds);
            std::fs::write("repro-report.md", &report).expect("write report");
            eprintln!("wrote repro-report.md ({} bytes)", report.len());
        }
        if wants("crawl") {
            section("Crawl provenance");
            print!("{}", render::crawl_summaries(ds));
        }
    }
    if wants("table3") {
        section("Table 3 — Lighthouse pass/fail matrix (isolated probes)");
        print!("{}", render::table3(&langcrux_audit::lighthouse_matrix()));
    }
    if wants("speech") {
        section("X4 (extension) — screen-reader experience (VoiceOver-like profile)");
        println!(
            "  {:<8} {:>14} {:>10} {:>15} {:>9}",
            "country", "announcements", "degraded", "mispronounced", "generic"
        );
        for row in langcrux_bench::speech_experience(args.seed, 30) {
            println!(
                "  {:<8} {:>14} {:>9.1}% {:>14.1}% {:>8.1}%",
                row.country_code,
                row.announcements,
                row.degraded_pct,
                row.mispronounced_pct,
                row.generic_pct
            );
        }
    }
    if wants("ablation-vpn") {
        section("Ablation A1 — VPN vantage vs cloud vantage");
        let ab = vpn_ablation(args.seed, 25);
        println!(
            "  {} hosts: localized content at VPN vantage {:.1}%, at cloud vantage {:.1}%",
            ab.hosts, ab.vpn_localized_pct, ab.cloud_localized_pct
        );
    }
    if wants("ablation-langid") {
        section("Ablation A2 — Unicode heuristic vs trigram language id (short labels)");
        let ab = langid_ablation(args.seed, 200);
        println!(
            "  {} labels: unicode {:.1}% correct, trigram {:.1}% correct",
            ab.labels, ab.unicode_accuracy_pct, ab.trigram_accuracy_pct
        );
    }
    if wants("ablation-crawl") {
        section("Ablation A3 — crawl worker scaling");
        for threads in [1, 2, 4, 8] {
            let elapsed = langcrux_bench::crawl_scaling(args.seed, 40, threads);
            println!("  {threads:>2} workers: {elapsed:.2?}");
        }
    }

    // The unified observability outputs: one registry rendering for the
    // console (`--report`), the textfile snapshot (`--metrics-out`), and
    // the daemon's `/v1/metrics` (below) — all the same families.
    if let Some(observations) = &observations {
        if args.report {
            section("Observability report — unified registry exposition");
            print!("{}", observations.exposition());
        }
        if let Some(path) = &args.metrics_out {
            std::fs::write(path, observations.exposition()).expect("write metrics snapshot");
            eprintln!("wrote {path}");
        }
    }
    if let Some(path) = &args.serve_daemon {
        run_serve_daemon(path, args.port, args.serve_core, observations);
    }
}
