//! `explore` — query a LangCrUX dataset release.
//!
//! The paper ships "an interactive website for LangCrUX, where users can
//! explore the dataset in greater detail, including language distribution
//! across individual websites, with sampling and filtering options". This
//! binary is that explorer's command-line equivalent, operating on the
//! JSON produced by `cargo run --example build_dataset`.
//!
//! ```text
//! explore <dataset.json> summary
//! explore <dataset.json> country <code>
//! explore <dataset.json> site <host>
//! explore <dataset.json> mismatches [N]
//! explore <dataset.json> sample <code> [N]
//! ```

use langcrux_core::dataset::TextState;
use langcrux_core::{analysis, render, Dataset};
use langcrux_lang::Country;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, command) = match args.as_slice() {
        [path, rest @ ..] if !rest.is_empty() => (path.clone(), rest.to_vec()),
        _ => {
            eprintln!(
                "usage: explore <dataset.json> <summary|country CODE|site HOST|mismatches [N]|sample CODE [N]>"
            );
            std::process::exit(2);
        }
    };
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let ds = Dataset::from_json(&json).expect("parse dataset JSON");

    match command[0].as_str() {
        "summary" => summary(&ds),
        "country" => country(&ds, command.get(1).map(String::as_str).unwrap_or("bd")),
        "site" => site(&ds, command.get(1).map(String::as_str).unwrap_or("")),
        "mismatches" => mismatches(&ds, parse_n(&command, 2, 10)),
        "sample" => sample(
            &ds,
            command.get(1).map(String::as_str).unwrap_or("bd"),
            parse_n(&command, 2, 5),
        ),
        other => {
            eprintln!("unknown command {other:?}");
            std::process::exit(2);
        }
    }
}

fn parse_n(command: &[String], idx: usize, default: usize) -> usize {
    command
        .get(idx)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn summary(ds: &Dataset) {
    println!(
        "LangCrUX dataset: {} sites, seed {:#x}, quota {}/country",
        ds.len(),
        ds.seed,
        ds.quota
    );
    print!("{}", render::crawl_summaries(ds));
    println!();
    print!("{}", render::headlines(&analysis::headlines(ds)));
}

fn country(ds: &Dataset, code: &str) {
    let Some(c) = Country::from_code(code) else {
        eprintln!("unknown country code {code:?}");
        std::process::exit(2);
    };
    println!("{} — {} sites\n", c.name(), ds.in_country(c).count());
    let lang = analysis::lang_distribution(ds);
    if let Some(row) = lang.iter().find(|r| r.country_code == code) {
        println!(
            "informative a11y texts: {} ({:.1}% native, {:.1}% English, {:.1}% mixed)",
            row.informative_texts, row.native_pct, row.english_pct, row.mixed_pct
        );
    }
    for cdf in analysis::mismatch_cdfs(ds) {
        if cdf.country_code == code {
            println!(
                "sites with <10% native accessibility text: {:.1}%",
                cdf.sites_below_10pct_native_a11y
            );
        }
    }
}

fn site(ds: &Dataset, host: &str) {
    let Some(record) = ds.records.iter().find(|r| r.host == host) else {
        eprintln!("host {host:?} not in dataset");
        std::process::exit(2);
    };
    println!(
        "https://{}/  ({}, rank {})",
        record.host,
        record.country.name(),
        record.rank
    );
    println!(
        "visible: {:.1}% native / {:.1}% English; declared lang: {}",
        record.visible_native_pct,
        record.visible_english_pct,
        record.declared_lang.as_deref().unwrap_or("—")
    );
    println!(
        "scores: base {:.1}, Kizuki {:.1}{}",
        record.base_score,
        record.kizuki_score,
        if record.kizuki_eligible {
            ""
        } else {
            "  (fails base image-alt)"
        }
    );
    let mut missing = 0;
    let mut empty = 0;
    let mut discarded = 0;
    let mut informative = 0;
    for e in &record.elements {
        match &e.state {
            TextState::Missing => missing += 1,
            TextState::Empty => empty += 1,
            TextState::Present {
                discard: Some(_), ..
            } => discarded += 1,
            TextState::Present { discard: None, .. } => informative += 1,
        }
    }
    println!(
        "elements: {} total — {missing} missing, {empty} empty, {discarded} uninformative, \
         {informative} informative",
        record.elements.len()
    );
    if let Some(pct) = record.a11y_native_pct() {
        println!("native share of informative a11y text: {pct:.1}%");
    } else {
        println!("no informative accessibility text at all");
    }
}

fn mismatches(ds: &Dataset, n: usize) {
    // The paper's Table 5 view: native-dominant sites with the least
    // native accessibility text.
    let mut rows: Vec<(&str, f64, f64)> = ds
        .records
        .iter()
        .filter(|r| r.visible_native_pct >= 85.0)
        .map(|r| {
            (
                r.host.as_str(),
                r.visible_native_pct,
                r.a11y_native_pct().unwrap_or(0.0),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.2.total_cmp(&b.2).then(b.1.total_cmp(&a.1)));
    println!(
        "{:<24} {:>14} {:>12}",
        "host", "visible native", "a11y native"
    );
    for (host, visible, a11y) in rows.into_iter().take(n) {
        println!("{host:<24} {visible:>13.1}% {a11y:>11.1}%");
    }
}

fn sample(ds: &Dataset, code: &str, n: usize) {
    let Some(c) = Country::from_code(code) else {
        eprintln!("unknown country code {code:?}");
        std::process::exit(2);
    };
    println!(
        "{:<24} {:>6} {:>9} {:>9} {:>8}",
        "host", "rank", "visible%", "a11y%", "score"
    );
    for r in ds.in_country(c).take(n) {
        println!(
            "{:<24} {:>6} {:>8.1}% {:>8.1}% {:>8.1}",
            r.host,
            r.rank,
            r.visible_native_pct,
            r.a11y_native_pct().unwrap_or(0.0),
            r.base_score
        );
    }
}
