//! Artefact benches: one per table/figure of the paper, measuring the cost
//! of regenerating each analysis from a prepared dataset, plus the
//! end-to-end pipeline itself.
//!
//! Run with `cargo bench -p langcrux-bench --bench artifacts`.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use langcrux_audit::lighthouse_matrix;
use langcrux_bench::{build_corpus, Scale};
use langcrux_core::{analysis, build_dataset, Dataset, PipelineOptions};
use langcrux_lang::Country;
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| langcrux_bench::build_scaled_dataset(0xA11E5, Scale::Sites(60)))
}

fn bench_tables(c: &mut Criterion) {
    let ds = dataset();
    let mut group = c.benchmark_group("tables");
    group.bench_function("table2_element_stats", |b| {
        b.iter(|| analysis::table2(black_box(ds)))
    });
    group.bench_function("table3_audit_matrix", |b| b.iter(lighthouse_matrix));
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let ds = dataset();
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig2_visible_language", |b| {
        b.iter(|| analysis::visible_scatter(black_box(ds), Country::India))
    });
    group.bench_function("fig3_filter_reasons", |b| {
        b.iter(|| analysis::discard_by_country(black_box(ds)))
    });
    group.bench_function("fig4_lang_distribution", |b| {
        b.iter(|| analysis::lang_distribution(black_box(ds)))
    });
    group.bench_function("fig5_mismatch_cdf", |b| {
        b.iter(|| analysis::mismatch_cdfs(black_box(ds)))
    });
    group.bench_function("fig6_kizuki_rescore", |b| {
        b.iter(|| analysis::kizuki_shift(black_box(ds), &[Country::Bangladesh, Country::Thailand]))
    });
    group.bench_function("fig7_rank_distribution", |b| {
        b.iter(|| analysis::rank_heatmap(black_box(ds)))
    });
    group.bench_function("fig9_filter_by_element", |b| {
        b.iter(|| analysis::discard_by_element(black_box(ds)))
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("end_to_end_10_sites_per_country", |b| {
        b.iter_batched(
            || build_corpus(0xE2E, Scale::Sites(10)),
            |corpus| {
                build_dataset(
                    &corpus,
                    PipelineOptions {
                        quota: 10,
                        ..PipelineOptions::default()
                    },
                )
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_pipeline);
criterion_main!(benches);
