//! Component microbenches: the per-page cost centres of the pipeline.
//!
//! Run with `cargo bench -p langcrux-bench --bench components`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use langcrux_crawl::extract;
use langcrux_filter::classify;
use langcrux_html::{parse, visible_text};
use langcrux_lang::{Country, Language};
use langcrux_langid::{classify_label, composition, detect};
use langcrux_net::ContentVariant;
use langcrux_textgen::TextGenerator;
use langcrux_webgen::{render, SitePlan};

fn sample_page() -> String {
    let plan = SitePlan::build(42, Country::Thailand, 0, Some(true));
    render(&plan, ContentVariant::Localized, "/").0
}

fn bench_html(c: &mut Criterion) {
    let html = sample_page();
    let mut group = c.benchmark_group("html");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("parse", |b| b.iter(|| parse(black_box(&html))));
    let doc = parse(&html);
    group.bench_function("visible_text", |b| b.iter(|| visible_text(black_box(&doc))));
    group.bench_function("extract", |b| b.iter(|| extract(black_box(&doc))));
    group.finish();
}

fn bench_langid(c: &mut Criterion) {
    let mut gen = TextGenerator::new(Language::Bangla, 7);
    let paragraph = gen.paragraph(20);
    let label = gen.phrase(3, 5);
    let mut group = c.benchmark_group("langid");
    group.bench_function("composition_paragraph", |b| {
        b.iter(|| composition(black_box(&paragraph), Language::Bangla))
    });
    group.bench_function("classify_label", |b| {
        b.iter(|| classify_label(black_box(&label), Language::Bangla))
    });
    group.bench_function("detect", |b| b.iter(|| detect(black_box(&paragraph))));
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let labels = [
        "crowd gathered at the central square",
        "icon",
        "img123",
        "banner_img4.jpg",
        "https://example.com/a.png",
        "ডাউনলোড",
        "3 of 5",
        "btn-submit",
        "ภาพข่าววันนี้",
    ];
    c.bench_function("filter/classify_batch", |b| {
        b.iter(|| {
            for l in labels {
                black_box(classify(black_box(l)));
            }
        })
    });
}

fn bench_generation(c: &mut Criterion) {
    let plan = SitePlan::build(42, Country::Japan, 3, Some(true));
    let mut group = c.benchmark_group("webgen");
    group.bench_function("render_page", |b| {
        b.iter(|| render(black_box(&plan), ContentVariant::Localized, "/"))
    });
    group.bench_function("textgen_paragraph", |b| {
        let mut gen = TextGenerator::new(Language::Korean, 9);
        b.iter(|| black_box(gen.paragraph(5)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_html,
    bench_langid,
    bench_filter,
    bench_generation
);
criterion_main!(benches);
