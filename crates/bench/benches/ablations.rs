//! Ablation benches (DESIGN.md A1–A3): VPN vantage, language-id method,
//! and crawl worker scaling.
//!
//! Run with `cargo bench -p langcrux-bench --bench ablations`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use langcrux_bench::{build_corpus, langid_ablation, vpn_ablation, Scale};
use langcrux_crawl::{crawl_hosts, BrowserConfig, CrawlConfig};
use langcrux_lang::Country;
use langcrux_net::vpn_vantage;

fn bench_vpn(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vpn_vantage");
    group.sample_size(10);
    group.bench_function("vpn_vs_cloud_12x10_hosts", |b| {
        b.iter(|| black_box(vpn_ablation(7, 10)))
    });
    group.finish();
}

fn bench_langid(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_langid");
    group.sample_size(10);
    group.bench_function("unicode_vs_trigram_100_labels", |b| {
        b.iter(|| black_box(langid_ablation(7, 100)))
    });
    group.finish();
}

fn bench_crawl_scaling(c: &mut Criterion) {
    let corpus = build_corpus(7, Scale::Sites(20));
    let hosts: Vec<String> = Country::STUDY
        .iter()
        .flat_map(|&country| {
            corpus
                .candidates(country)
                .iter()
                .take(20)
                .map(|p| p.host.clone())
                .collect::<Vec<_>>()
        })
        .collect();
    let vantage = vpn_vantage(Country::Thailand).expect("endpoint");
    let mut group = c.benchmark_group("ablation_crawl_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_workers"), |b| {
            b.iter(|| {
                crawl_hosts(
                    corpus.internet(),
                    vantage,
                    &hosts,
                    CrawlConfig {
                        threads,
                        browser: BrowserConfig::default(),
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vpn, bench_langid, bench_crawl_scaling);
criterion_main!(benches);
