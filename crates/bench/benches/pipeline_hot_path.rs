//! The fused-engine Criterion group: before/after microbenches for every
//! layer the single-pass refactor touched, plus the end-to-end pipeline.
//!
//! Run with `cargo bench -p langcrux-bench --bench pipeline_hot_path`.
//! The machine-readable before/after record lives in `BENCH_pipeline.json`
//! (regenerate via `cargo run --release -p langcrux-bench --bin repro --
//! --bench-json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use langcrux_bench::{baseline, build_corpus, Scale};
use langcrux_core::{build_dataset, PipelineOptions};
use langcrux_crawl::{extract, extract_streaming};
use langcrux_html::{parse, stream_visible_text_histogram, visible_text, visible_text_histogram};
use langcrux_lang::script::{script_of, ScriptHistogram};
use langcrux_lang::{Country, Language};
use langcrux_langid::{classify_label, composition, composition_of_histogram};
use langcrux_net::ContentVariant;
use langcrux_textgen::TextGenerator;
use langcrux_webgen::{render, SitePlan};

fn sample_page() -> String {
    let plan = SitePlan::build(42, Country::Thailand, 0, Some(true));
    render(&plan, ContentVariant::Localized, "/").0
}

/// Layer 1: the DOM walk. Fused text+histogram vs walk-then-rescan.
fn bench_fused_extraction(c: &mut Criterion) {
    let html = sample_page();
    let doc = parse(&html);
    let mut group = c.benchmark_group("fused_extraction");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("visible_text_then_rescan", |b| {
        b.iter(|| {
            let text = visible_text(black_box(&doc));
            ScriptHistogram::of(&text)
        })
    });
    group.bench_function("visible_text_histogram_fused", |b| {
        b.iter(|| visible_text_histogram(black_box(&doc)))
    });
    group.finish();
}

/// Layer 1b: the per-visit extraction pair — DOM materialisation
/// (tokenize → tree-build → walk) vs the streaming tokenize→extract path
/// the crawl and serve hot loops use. Both pairs produce identical
/// output (proptest- and corpus-pinned); the delta is the skipped token
/// buffer + node arena.
fn bench_stream_vs_dom(c: &mut Criterion) {
    let html = sample_page();
    let mut group = c.benchmark_group("stream_vs_dom");
    group.throughput(Throughput::Bytes(html.len() as u64));
    // Full PageExtract: what Browser::visit and /v1/audit run per page.
    group.bench_function("dom_parse_then_extract", |b| {
        b.iter(|| extract(&parse(black_box(&html))))
    });
    group.bench_function("streaming_extract", |b| {
        b.iter(|| extract_streaming(black_box(&html)))
    });
    // Visible text + histogram only: the langcrux-html layer in isolation.
    group.bench_function("dom_parse_then_visible_histogram", |b| {
        b.iter(|| visible_text_histogram(&parse(black_box(&html))))
    });
    group.bench_function("stream_visible_histogram", |b| {
        b.iter(|| stream_visible_text_histogram(black_box(&html)))
    });
    group.finish();
}

/// Layer 2: per-character script lookup and per-label classification.
fn bench_script_tables(c: &mut Criterion) {
    let mut gen = TextGenerator::new(Language::Japanese, 7);
    let paragraph = gen.paragraph(30);
    let label = gen.phrase(3, 5);
    let mut group = c.benchmark_group("script_lookup");
    group.throughput(Throughput::Elements(paragraph.chars().count() as u64));
    group.bench_function("script_of_paragraph", |b| {
        b.iter(|| {
            paragraph
                .chars()
                .map(|ch| script_of(black_box(ch)) as usize)
                .sum::<usize>()
        })
    });
    group.bench_function("histogram_of_paragraph", |b| {
        b.iter(|| ScriptHistogram::of(black_box(&paragraph)))
    });
    group.bench_function("classify_label_stack_histogram", |b| {
        b.iter(|| classify_label(black_box(&label), Language::Japanese))
    });
    group.finish();
}

/// Layer 3: selection's composition — carried histogram vs text re-scan.
fn bench_composition(c: &mut Criterion) {
    let mut gen = TextGenerator::new(Language::Thai, 11);
    let page_text = gen.paragraph(60);
    let hist = ScriptHistogram::of(&page_text);
    let mut group = c.benchmark_group("composition");
    group.bench_function("rescan_text", |b| {
        b.iter(|| composition(black_box(&page_text), Language::Thai))
    });
    group.bench_function("carried_histogram", |b| {
        b.iter(|| composition_of_histogram(black_box(&hist), Language::Thai))
    });
    group.finish();
}

/// Layer 4 (webgen allocation diet): textgen scratch-buffer reuse vs
/// per-call allocation, presized vs default-grown HtmlBuilder, and the
/// absolute page-render number both feed into.
fn bench_webgen_alloc(c: &mut Criterion) {
    use langcrux_html::HtmlBuilder;
    use langcrux_webgen::calibration::estimated_page_bytes;

    let mut group = c.benchmark_group("webgen_alloc");

    // Before: every paragraph allocates its own String (plus the
    // per-word/per-sentence intermediates the old join-based path made).
    group.bench_function("textgen_paragraph_fresh_alloc", |b| {
        let mut gen = TextGenerator::new(Language::Bangla, 3);
        b.iter(|| black_box(gen.paragraph(4)).len())
    });
    // After: one scratch buffer reused across paragraphs.
    group.bench_function("textgen_paragraph_scratch_reuse", |b| {
        let mut gen = TextGenerator::new(Language::Bangla, 3);
        let mut scratch = String::new();
        b.iter(|| {
            scratch.clear();
            gen.append_paragraph(4, &mut scratch);
            black_box(scratch.len())
        })
    });

    // Builder growth ladder vs one calibrated up-front reservation.
    let build_page = |mut b: HtmlBuilder| {
        b.open("html", &[("lang", Some("th"))]);
        for i in 0..220 {
            b.leaf(
                "p",
                &[("class", Some("row"))],
                "ข่าววันนี้ของประเทศไทยทั้งหมดพร้อมรายละเอียดเพิ่มเติมสำหรับผู้อ่าน",
            );
            if i % 4 == 0 {
                b.void("img", &[("src", Some("/img/a.jpg")), ("alt", Some("ภาพ"))]);
            }
        }
        b.finish()
    };
    group.bench_function("html_builder_default_growth", |b| {
        b.iter(|| black_box(build_page(HtmlBuilder::document())).len())
    });
    group.bench_function("html_builder_presized", |b| {
        b.iter(|| {
            black_box(build_page(HtmlBuilder::document_sized(
                estimated_page_bytes(),
            )))
            .len()
        })
    });

    // The end-to-end render the optimisations feed into, in three forms:
    // the preserved pre-arena renderer (fresh generators + per-label
    // Strings every page), the fresh-scratch wrapper, and the pooled
    // arena the corpus content path actually runs. All three emit
    // identical bytes (oracle-tested in bench::render_seed); the CI gate
    // asserts render_pooled ≥ 1.2× render_unpooled via BENCH_pipeline's
    // render.speedup record.
    let plan = SitePlan::build(42, Country::Bangladesh, 1, Some(true));
    group.bench_function("render_unpooled_prearena", |b| {
        b.iter(|| {
            black_box(langcrux_bench::render_seed::render_seed(
                &plan,
                ContentVariant::Localized,
                "/",
            ))
            .0
            .len()
        })
    });
    group.bench_function("render_fresh_scratch", |b| {
        b.iter(|| {
            black_box(render(&plan, ContentVariant::Localized, "/"))
                .0
                .len()
        })
    });
    group.bench_function("render_pooled", |b| {
        use langcrux_webgen::{render_into, RenderScratch};
        let mut scratch = RenderScratch::new();
        let mut out = String::new();
        b.iter(|| {
            out.clear();
            render_into(
                &plan,
                ContentVariant::Localized,
                "/",
                &mut scratch,
                &mut out,
            );
            black_box(out.len())
        })
    });
    group.finish();
}

/// End to end: seed pipeline vs fused engine on the same small corpus.
fn bench_pipeline_end_to_end(c: &mut Criterion) {
    let corpus = build_corpus(0xBEAC4, Scale::Sites(12));
    let options = PipelineOptions {
        quota: 12,
        ..PipelineOptions::default()
    };
    let mut group = c.benchmark_group("pipeline_hot_path");
    group.sample_size(10);
    group.bench_function("build_dataset_seed_baseline", |b| {
        b.iter(|| baseline::build_dataset_seed(black_box(&corpus), options))
    });
    group.bench_function("build_dataset_fused", |b| {
        b.iter(|| build_dataset(black_box(&corpus), options))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fused_extraction,
    bench_stream_vs_dom,
    bench_script_tables,
    bench_composition,
    bench_webgen_alloc,
    bench_pipeline_end_to_end
);
criterion_main!(benches);
