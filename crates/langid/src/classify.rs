//! Label-language classification.
//!
//! Figure 4 of the paper buckets each informative accessibility text into
//! **Native**, **English**, or **Mixed**. This module implements that
//! three-way (plus two degenerate) classification for short strings such as
//! alt texts and aria-labels.
//!
//! Thresholds: a label is *Native* or *English* when ≥ [`PURE_THRESHOLD`]
//! of its distinguishing characters are in that bucket; it is *Mixed* when
//! both buckets hold at least [`MIXED_MIN_SHARE`]; anything else (e.g.
//! a third language) is *OtherLanguage*; strings with no letters at all
//! (digits, arrows, punctuation) are *NonLinguistic*.

use crate::composition::{composition, Composition};
use langcrux_lang::Language;
use serde::{Deserialize, Serialize};

/// Share (percent) above which a label counts as purely one language.
pub const PURE_THRESHOLD: f64 = 90.0;
/// Minimum share (percent) each side needs for a label to count as mixed.
pub const MIXED_MIN_SHARE: f64 = 10.0;

/// Language bucket of one accessibility text (Figure 4 categories plus the
/// two degenerate cases the paper filters out upstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelLanguage {
    /// Predominantly the page's native language.
    Native,
    /// Predominantly English/Latin.
    English,
    /// Genuinely bilingual: native and English both ≥ 10%.
    Mixed,
    /// Dominated by a script that is neither native nor Latin.
    OtherLanguage,
    /// No distinguishing characters (numbers, punctuation, symbols).
    NonLinguistic,
}

impl LabelLanguage {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LabelLanguage::Native => "Native",
            LabelLanguage::English => "English",
            LabelLanguage::Mixed => "Mixed",
            LabelLanguage::OtherLanguage => "Other",
            LabelLanguage::NonLinguistic => "Non-linguistic",
        }
    }
}

/// Classify a label relative to a native language.
pub fn classify_label(text: &str, native: Language) -> LabelLanguage {
    classify_composition(composition(text, native))
}

/// Classify from a pre-computed composition.
pub fn classify_composition(c: Composition) -> LabelLanguage {
    if !c.has_evidence() {
        return LabelLanguage::NonLinguistic;
    }
    if c.native_pct >= PURE_THRESHOLD {
        return LabelLanguage::Native;
    }
    if c.english_pct >= PURE_THRESHOLD {
        return LabelLanguage::English;
    }
    if c.native_pct >= MIXED_MIN_SHARE && c.english_pct >= MIXED_MIN_SHARE {
        return LabelLanguage::Mixed;
    }
    if c.other_pct > c.native_pct && c.other_pct > c.english_pct {
        return LabelLanguage::OtherLanguage;
    }
    // Skewed two-way mixes that clear neither the pure nor the mixed bar
    // default to the larger of the two buckets.
    if c.native_pct >= c.english_pct {
        LabelLanguage::Native
    } else {
        LabelLanguage::English
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_label() {
        assert_eq!(
            classify_label("প্রধান শিরোনাম", Language::Bangla),
            LabelLanguage::Native
        );
        assert_eq!(
            classify_label("ภาพข่าววันนี้", Language::Thai),
            LabelLanguage::Native
        );
    }

    #[test]
    fn english_label() {
        assert_eq!(
            classify_label("school children in classroom", Language::Bangla),
            LabelLanguage::English
        );
    }

    #[test]
    fn mixed_label() {
        assert_eq!(
            classify_label("ดาวน์โหลด app สำหรับ android", Language::Thai),
            LabelLanguage::Mixed
        );
        assert_eq!(
            classify_label("Φωτογραφία από το event", Language::Greek),
            LabelLanguage::Mixed
        );
    }

    #[test]
    fn other_language_label() {
        // Russian text on a Thai site is neither native nor English.
        assert_eq!(
            classify_label("изображение дня", Language::Thai),
            LabelLanguage::OtherLanguage
        );
    }

    #[test]
    fn non_linguistic_label() {
        assert_eq!(
            classify_label("1 / 5", Language::Thai),
            LabelLanguage::NonLinguistic
        );
        assert_eq!(
            classify_label("→", Language::Thai),
            LabelLanguage::NonLinguistic
        );
        assert_eq!(
            classify_label("", Language::Thai),
            LabelLanguage::NonLinguistic
        );
    }

    #[test]
    fn tiny_english_accent_does_not_break_native() {
        // 1 Latin char in 20 native chars stays Native (below 10%).
        let text = "בדיקהבדיקהבדיקהבדיקה x";
        assert_eq!(
            classify_label(text, Language::Hebrew),
            LabelLanguage::Native
        );
    }

    #[test]
    fn skewed_mix_defaults_to_majority() {
        // ~85% English, ~15% native would be Mixed (both ≥10).
        // ~95% English with 5% native → English (native below MIXED_MIN).
        let text = "a very long english description of the photo ข"; // 1 Thai char
        assert_eq!(classify_label(text, Language::Thai), LabelLanguage::English);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LabelLanguage::Mixed.name(), "Mixed");
        assert_eq!(LabelLanguage::NonLinguistic.name(), "Non-linguistic");
    }
}
