//! # langcrux-langid
//!
//! Language identification for the LangCrUX measurement pipeline.
//!
//! The paper validates language presence "via a Unicode-based heuristic
//! that matches visible text content against script-specific character
//! ranges", with "additional language-specific characters" for scripts
//! shared by several languages (§2). This crate implements exactly that
//! method, plus the downstream classifications the analysis needs:
//!
//! * [`mod@composition`] — native/English/other character shares of a text and
//!   the 50%-native website-inclusion test.
//! * [`classify`] — the Figure 4 label buckets (Native / English / Mixed).
//! * [`mod@detect`] — whole-language detection with Arabic↔Urdu↔Persian,
//!   Hindi↔Marathi and Mandarin↔Cantonese↔Japanese disambiguation, and a
//!   trigram-model comparison detector for the langid ablation.

pub mod classify;
pub mod composition;
pub mod detect;

pub use classify::{classify_label, LabelLanguage};
pub use composition::{composition, composition_of_histogram, meets_native_threshold, Composition};
pub use detect::{detect, detect_with_histogram, TrigramDetector};
