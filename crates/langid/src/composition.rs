//! Language composition of a text.
//!
//! Implements the paper's core measurement primitive: given a text and a
//! target ("native") language, what share of the distinguishing characters
//! is native, English (Latin), or something else? The website-selection
//! rule (§2: "at least 50% of visible textual content in the target
//! language") and both axes of Figures 2, 5 and 8 are computed from this.

use langcrux_lang::script::{Script, ScriptHistogram};
use langcrux_lang::Language;
use serde::{Deserialize, Serialize};

/// Shares of a text's distinguishing characters by language bucket.
/// Percentages are in `[0, 100]` and `native + english + other ≈ 100`
/// when `total > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Composition {
    /// Percent of distinguishing characters in the native language's
    /// evidence scripts.
    pub native_pct: f64,
    /// Percent in Latin script (the study's proxy for English, as in the
    /// paper's Unicode heuristic).
    pub english_pct: f64,
    /// Percent in any other distinguishing script.
    pub other_pct: f64,
    /// Number of distinguishing characters the shares are based on.
    pub total: usize,
}

impl Composition {
    /// A composition with no linguistic evidence.
    pub const EMPTY: Composition = Composition {
        native_pct: 0.0,
        english_pct: 0.0,
        other_pct: 0.0,
        total: 0,
    };

    /// Whether any linguistic evidence was found.
    pub fn has_evidence(&self) -> bool {
        self.total > 0
    }
}

/// Compute the [`Composition`] of `text` relative to `native`.
///
/// When the native language's evidence scripts include Latin (they never do
/// for the candidate pool — all 26 are non-Latin) the English share would be
/// subsumed; the function debug-asserts against that.
pub fn composition(text: &str, native: Language) -> Composition {
    composition_of_histogram(&ScriptHistogram::of(text), native)
}

/// Composition from a pre-computed histogram (lets callers aggregate page
/// text once and derive several measures).
pub fn composition_of_histogram(hist: &ScriptHistogram, native: Language) -> Composition {
    debug_assert!(
        !native.evidence_scripts().contains(&Script::Latin),
        "composition() is defined for non-Latin native languages"
    );
    let total = hist.distinguishing_total();
    if total == 0 {
        return Composition::EMPTY;
    }
    let native_count: usize = native
        .evidence_scripts()
        .iter()
        .map(|&s| hist.count(s))
        .sum();
    let english_count = hist.count(Script::Latin);
    let other_count = total.saturating_sub(native_count + english_count);
    let pct = |n: usize| n as f64 * 100.0 / total as f64;
    Composition {
        native_pct: pct(native_count),
        english_pct: pct(english_count),
        other_pct: pct(other_count),
        total,
    }
}

/// The paper's website-inclusion test: at least `threshold_pct` percent of
/// the text's distinguishing characters are in the target language.
pub fn meets_native_threshold(text: &str, native: Language, threshold_pct: f64) -> bool {
    let c = composition(text, native);
    c.has_evidence() && c.native_pct >= threshold_pct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_native_text() {
        let c = composition("নমস্কার বিশ্ব আজকের খবর", Language::Bangla);
        assert!(c.native_pct > 99.0);
        assert_eq!(c.english_pct, 0.0);
        assert!(c.has_evidence());
    }

    #[test]
    fn pure_english_text() {
        let c = composition("hello world news today", Language::Bangla);
        assert_eq!(c.native_pct, 0.0);
        assert!(c.english_pct > 99.0);
    }

    #[test]
    fn balanced_mix() {
        // 10 Thai letters + 10 Latin letters.
        let c = composition("กกกกกกกกกก abcdefghij", Language::Thai);
        assert!((c.native_pct - 50.0).abs() < 1.0, "{c:?}");
        assert!((c.english_pct - 50.0).abs() < 1.0);
    }

    #[test]
    fn shares_sum_to_100() {
        let c = composition("Русский text ελληνικά 中文", Language::Russian);
        assert!((c.native_pct + c.english_pct + c.other_pct - 100.0).abs() < 1e-9);
        assert!(c.other_pct > 0.0);
    }

    #[test]
    fn digits_and_punctuation_are_not_evidence() {
        let c = composition("12345 ... !!!", Language::Hindi);
        assert!(!c.has_evidence());
        assert_eq!(c, Composition::EMPTY);
    }

    #[test]
    fn japanese_counts_all_three_scripts() {
        let c = composition("日本語のテキストです", Language::Japanese);
        assert!(c.native_pct > 99.0, "{c:?}");
    }

    #[test]
    fn han_text_counts_for_chinese_not_korean() {
        let c_zh = composition("中文内容", Language::MandarinChinese);
        assert!(c_zh.native_pct > 99.0);
        let c_ko = composition("中文内容", Language::Korean);
        assert_eq!(c_ko.native_pct, 0.0);
        assert!(c_ko.other_pct > 99.0);
    }

    #[test]
    fn threshold_test() {
        assert!(meets_native_threshold(
            "ありがとうございます thanks",
            Language::Japanese,
            50.0
        ));
        assert!(!meets_native_threshold(
            "thanks very much ありがとう",
            Language::Japanese,
            80.0
        ));
        assert!(!meets_native_threshold("", Language::Japanese, 50.0));
    }
}
