//! Whole-language detection.
//!
//! Two detectors:
//!
//! * [`detect`] — the paper's production method: Unicode script evidence
//!   plus language-specific disambiguation characters for scripts shared by
//!   several languages (Arabic ↔ Urdu ↔ Persian, Devanagari's Hindi ↔
//!   Marathi ↔ Nepali, Han's Mandarin ↔ Cantonese ↔ Japanese).
//! * [`TrigramDetector`] — a classical character-trigram cosine model, kept
//!   as the comparison point for the `ablation_langid` bench (the paper
//!   argues the Unicode heuristic is sufficient at scale; the ablation
//!   quantifies where the trigram model differs on short labels).

use langcrux_lang::script::{script_of, Script, ScriptHistogram};
use langcrux_lang::Language;
use std::collections::HashMap;

/// Candidate languages considered by [`detect`] (the pool plus English).
fn detection_candidates() -> impl Iterator<Item = Language> {
    Language::CANDIDATE_POOL
        .iter()
        .copied()
        .chain(std::iter::once(Language::English))
}

/// Detect the most likely language of `text` by script evidence.
///
/// Returns `None` when the text carries no distinguishing characters.
/// For shared scripts the tie is broken by disambiguation characters:
/// e.g. Arabic-script text containing `ٹ`/`ڑ`/`ے` resolves to Urdu, and
/// Han text containing kana resolves to Japanese.
pub fn detect(text: &str) -> Option<Language> {
    detect_with_histogram(&ScriptHistogram::of(text), text)
}

/// [`detect`] from a pre-computed histogram of `text` (e.g. the one the
/// crawler carries on `PageExtract` from its fused extraction walk).
///
/// For most dominant scripts this touches only the histogram; the text is
/// re-read solely when a shared script needs disambiguation characters
/// (Arabic ↔ Urdu/Persian, Devanagari's Hindi ↔ Marathi, Han-only pages
/// for Cantonese markers), and those passes are sorted-set binary probes.
pub fn detect_with_histogram(hist: &ScriptHistogram, text: &str) -> Option<Language> {
    if hist.distinguishing_total() == 0 {
        return None;
    }
    let dominant = hist.dominant()?;

    match dominant {
        Script::Arabic => Some(disambiguate_arabic(text)),
        Script::Devanagari => Some(disambiguate_devanagari(text)),
        Script::Han | Script::Hiragana | Script::Katakana => Some(disambiguate_cjk(hist, text)),
        script => detection_candidates().find(|l| l.primary_script() == script),
    }
}

/// Count how many chars of `text` are in `set`, which must be sorted by
/// codepoint so each char costs one binary search instead of a scan.
fn count_chars(text: &str, set: &[char]) -> usize {
    debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be sorted");
    text.chars()
        .filter(|c| set.binary_search(c).is_ok())
        .count()
}

/// Sorted-set membership for a single char.
#[inline]
fn in_set(c: char, set: &[char]) -> bool {
    set.binary_search(&c).is_ok()
}

fn disambiguate_arabic(text: &str) -> Language {
    // Urdu letters absent from Persian's shared Perso-Arabic additions
    // (sorted by codepoint for binary search).
    const URDU_ONLY: &[char] = &['ٹ', 'ڈ', 'ڑ', 'ں', 'ھ', 'ہ', 'ے'];
    let urdu_set = Language::Urdu.disambiguation_chars();
    let persian_set = Language::Persian.disambiguation_chars();
    // One pass over the text, counting all three sets simultaneously.
    let (mut urdu, mut persian, mut urdu_only) = (0usize, 0usize, 0usize);
    for c in text.chars() {
        if in_set(c, urdu_set) {
            urdu += 1;
            if in_set(c, URDU_ONLY) {
                urdu_only += 1;
            }
        }
        if in_set(c, persian_set) {
            persian += 1;
        }
    }
    // Urdu's set is a superset of Persian's four letters; require evidence
    // beyond the shared ones for Urdu.
    if urdu_only > 0 {
        Language::Urdu
    } else if persian > 0 && urdu == persian {
        Language::Persian
    } else if urdu > 0 {
        Language::Urdu
    } else {
        Language::ModernStandardArabic
    }
}

fn disambiguate_devanagari(text: &str) -> Language {
    if count_chars(text, Language::Marathi.disambiguation_chars()) > 0 {
        Language::Marathi
    } else {
        Language::Hindi
    }
}

fn disambiguate_cjk(hist: &ScriptHistogram, text: &str) -> Language {
    let kana = hist.count(Script::Hiragana) + hist.count(Script::Katakana);
    if kana > 0 {
        return Language::Japanese;
    }
    // Cantonese-specific characters distinguish Hong Kong pages (sorted by
    // codepoint for binary search).
    const CANTONESE_MARKERS: &[char] = &[
        '乜', '冇', '咁', '咗', '哋', '唔', '啲', '嗰', '嘅', '噉', '嚟', '畀', '睇',
    ];
    if count_chars(text, CANTONESE_MARKERS) > 0 {
        Language::Cantonese
    } else {
        Language::MandarinChinese
    }
}

/// A character-trigram language model with cosine similarity scoring.
///
/// Train with [`TrigramDetector::train`] on sample text per language, then
/// [`TrigramDetector::classify`]. Used by the langid ablation bench.
#[derive(Debug, Default)]
pub struct TrigramDetector {
    models: Vec<(Language, HashMap<[char; 3], f64>)>,
}

impl TrigramDetector {
    pub fn new() -> Self {
        Self::default()
    }

    fn trigrams(text: &str) -> HashMap<[char; 3], f64> {
        let chars: Vec<char> = text
            .chars()
            .map(|c| {
                if c.is_whitespace() {
                    ' '
                } else {
                    c.to_lowercase().next().unwrap_or(c)
                }
            })
            .collect();
        let mut counts: HashMap<[char; 3], f64> = HashMap::new();
        for w in chars.windows(3) {
            *counts.entry([w[0], w[1], w[2]]).or_insert(0.0) += 1.0;
        }
        // L2-normalise.
        let norm: f64 = counts.values().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in counts.values_mut() {
                *v /= norm;
            }
        }
        counts
    }

    /// Add (or extend) the model for `language` with sample text.
    pub fn train(&mut self, language: Language, sample: &str) {
        let grams = Self::trigrams(sample);
        match self.models.iter_mut().find(|(l, _)| *l == language) {
            Some((_, model)) => {
                for (g, w) in grams {
                    *model.entry(g).or_insert(0.0) += w;
                }
                let norm: f64 = model.values().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for v in model.values_mut() {
                        *v /= norm;
                    }
                }
            }
            None => self.models.push((language, grams)),
        }
    }

    /// Number of trained language models.
    pub fn trained_languages(&self) -> usize {
        self.models.len()
    }

    /// Classify text; returns the best language and its cosine score.
    pub fn classify(&self, text: &str) -> Option<(Language, f64)> {
        let grams = Self::trigrams(text);
        if grams.is_empty() {
            return None;
        }
        let mut best: Option<(Language, f64)> = None;
        for (lang, model) in &self.models {
            let score: f64 = grams
                .iter()
                .filter_map(|(g, w)| model.get(g).map(|m| m * w))
                .sum();
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((*lang, score));
            }
        }
        best.filter(|(_, score)| *score > 0.0)
    }
}

/// Does `text` contain at least one character of the given script?
pub fn contains_script(text: &str, script: Script) -> bool {
    text.chars().any(|c| script_of(c) == script)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unique_scripts() {
        assert_eq!(detect("Привет, мир"), Some(Language::Russian));
        assert_eq!(detect("Γειά σου κόσμε"), Some(Language::Greek));
        assert_eq!(detect("שלום עולם"), Some(Language::Hebrew));
        assert_eq!(detect("สวัสดีชาวโลก"), Some(Language::Thai));
        assert_eq!(detect("안녕하세요"), Some(Language::Korean));
        assert_eq!(detect("வணக்கம்"), Some(Language::Tamil));
        assert_eq!(detect("হ্যালো"), Some(Language::Bangla));
        assert_eq!(detect("hello there"), Some(Language::English));
    }

    #[test]
    fn arabic_vs_urdu_disambiguation() {
        assert_eq!(
            detect("مرحبا بالعالم"),
            Some(Language::ModernStandardArabic)
        );
        // Urdu with retroflex ٹ and final ے.
        assert_eq!(detect("ہیلو دنیا ٹھیک ہے"), Some(Language::Urdu));
    }

    #[test]
    fn hindi_vs_marathi() {
        assert_eq!(detect("नमस्ते दुनिया"), Some(Language::Hindi));
        assert_eq!(detect("नमस्कार जळगाव"), Some(Language::Marathi));
    }

    #[test]
    fn cjk_disambiguation() {
        assert_eq!(detect("你好世界"), Some(Language::MandarinChinese));
        assert_eq!(detect("こんにちは世界"), Some(Language::Japanese));
        assert_eq!(detect("世界です"), Some(Language::Japanese));
        assert_eq!(detect("你哋好嘅"), Some(Language::Cantonese));
    }

    #[test]
    fn no_evidence_returns_none() {
        assert_eq!(detect("12345 --- !!!"), None);
        assert_eq!(detect(""), None);
    }

    #[test]
    fn trigram_detector_separates_languages() {
        use langcrux_textgen_shim::sample;
        let mut det = TrigramDetector::new();
        det.train(Language::English, sample(Language::English));
        det.train(Language::Russian, sample(Language::Russian));
        let (lang, score) = det
            .classify("the government announced a new policy")
            .unwrap();
        assert_eq!(lang, Language::English);
        assert!(score > 0.0);
        let (lang, _) = det.classify("новости правительства и политика").unwrap();
        assert_eq!(lang, Language::Russian);
    }

    #[test]
    fn trigram_empty_input() {
        let det = TrigramDetector::new();
        assert!(det.classify("").is_none());
        assert!(det.classify("ab").is_none());
    }

    /// Minimal in-test "sample corpus" so langid does not depend on textgen
    /// (which would invert the workspace dependency order).
    mod langcrux_textgen_shim {
        use langcrux_lang::Language;

        pub fn sample(lang: Language) -> &'static str {
            match lang {
                Language::English => {
                    "the quick brown fox jumps over the lazy dog while the \
                     government announces new policies for the economy and \
                     education across the country"
                }
                Language::Russian => {
                    "быстрая коричневая лиса прыгает через ленивую собаку \
                     пока правительство объявляет новости политики экономики \
                     и образования по всей стране"
                }
                _ => unimplemented!(),
            }
        }
    }

    #[test]
    fn contains_script_works() {
        assert!(contains_script("abcক", Script::Bengali));
        assert!(!contains_script("abc", Script::Bengali));
    }
}
