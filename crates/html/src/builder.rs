//! Programmatic HTML construction.
//!
//! The website generator assembles pages element-by-element;
//! [`HtmlBuilder`] provides a small push-based writer that guarantees
//! well-formed output (balanced tags, escaped text and attribute values),
//! so that what the generator *plants* is exactly what the parser
//! *recovers* — a property the corpus round-trip tests rely on.

use crate::entities::{escape_attr_into, escape_text_into};

/// A streaming HTML writer with a tag stack.
///
/// The open-element stack is a flat name arena (`names` + byte ranges), so
/// building a page performs no per-element allocation; escaping appends
/// straight into the output buffer. [`reset_document`](Self::reset_document)
/// recycles a builder (buffer capacity and all) across pages — the webgen
/// render arena keeps one per worker.
#[derive(Debug, Default)]
pub struct HtmlBuilder {
    buf: String,
    /// Concatenated names of currently open elements.
    names: String,
    /// `(start, end)` ranges into `names`, innermost last.
    stack: Vec<(u32, u32)>,
}

impl HtmlBuilder {
    /// Start a document with the HTML5 doctype.
    pub fn document() -> Self {
        let mut b = HtmlBuilder::default();
        b.buf.push_str("<!DOCTYPE html>");
        b
    }

    /// Start a document with the output buffer pre-sized to `capacity`
    /// bytes. Generators that know their typical page size (webgen's
    /// calibrated estimate) use this to avoid the doubling-reallocation
    /// ladder while streaming a page.
    pub fn document_sized(capacity: usize) -> Self {
        let mut b = HtmlBuilder::fragment_sized(capacity);
        b.buf.push_str("<!DOCTYPE html>");
        b
    }

    /// An empty builder (fragment mode).
    pub fn fragment() -> Self {
        HtmlBuilder::default()
    }

    /// Fragment-mode builder with a pre-sized output buffer.
    pub fn fragment_sized(capacity: usize) -> Self {
        HtmlBuilder {
            buf: String::with_capacity(capacity),
            names: String::new(),
            stack: Vec::with_capacity(16),
        }
    }

    /// Recycle this builder for a fresh document: the output buffer is
    /// cleared (keeping its grown capacity) and the doctype re-written.
    /// Equivalent to replacing the builder with
    /// [`document_sized`](Self::document_sized) at the current capacity,
    /// without the allocation.
    pub fn reset_document(&mut self) {
        self.buf.clear();
        self.names.clear();
        self.stack.clear();
        self.buf.push_str("<!DOCTYPE html>");
    }

    /// Spare capacity currently available without reallocation.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Open an element with attributes. `attrs` pairs are
    /// `(name, Some(value))` or `(name, None)` for boolean attributes.
    pub fn open(&mut self, tag: &str, attrs: &[(&str, Option<&str>)]) -> &mut Self {
        self.write_tag(tag, attrs, false);
        let start = self.names.len() as u32;
        self.names.push_str(tag);
        self.stack.push((start, self.names.len() as u32));
        self
    }

    /// Write a void/self-contained element.
    pub fn void(&mut self, tag: &str, attrs: &[(&str, Option<&str>)]) -> &mut Self {
        self.write_tag(tag, attrs, false);
        self
    }

    fn write_tag(&mut self, tag: &str, attrs: &[(&str, Option<&str>)], self_close: bool) {
        self.buf.push('<');
        self.buf.push_str(tag);
        for (name, value) in attrs {
            self.buf.push(' ');
            self.buf.push_str(name);
            if let Some(v) = value {
                self.buf.push_str("=\"");
                escape_attr_into(v, &mut self.buf);
                self.buf.push('"');
            }
        }
        if self_close {
            self.buf.push('/');
        }
        self.buf.push('>');
    }

    /// Close the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open — generator code is expected to be
    /// balanced, and an unbalanced build is a bug worth failing loudly on.
    pub fn close(&mut self) -> &mut Self {
        let (start, end) = self.stack.pop().expect("close() with no open element");
        self.buf.push_str("</");
        self.buf.push_str(&self.names[start as usize..end as usize]);
        self.buf.push('>');
        self.names.truncate(start as usize);
        self
    }

    /// Escaped text content.
    pub fn text(&mut self, text: &str) -> &mut Self {
        escape_text_into(text, &mut self.buf);
        self
    }

    /// Raw, pre-escaped markup (used sparingly, e.g. inline SVG bodies).
    pub fn raw(&mut self, html: &str) -> &mut Self {
        self.buf.push_str(html);
        self
    }

    /// Convenience: `<tag ...>text</tag>`.
    pub fn leaf(&mut self, tag: &str, attrs: &[(&str, Option<&str>)], text: &str) -> &mut Self {
        self.open(tag, attrs);
        self.text(text);
        self.close()
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Finish the document, closing any still-open elements.
    pub fn finish(mut self) -> String {
        while !self.stack.is_empty() {
            self.close();
        }
        self.buf
    }

    /// Peek at the bytes written so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::visible::visible_text;

    #[test]
    fn builds_wellformed_document() {
        let mut b = HtmlBuilder::document();
        b.open("html", &[("lang", Some("bn"))]);
        b.open("body", &[]);
        b.leaf("p", &[], "নমস্কার");
        b.void("img", &[("src", Some("/a.png")), ("alt", Some("ছবি"))]);
        b.close(); // body
        b.close(); // html
        let html = b.finish();
        assert!(html.starts_with("<!DOCTYPE html>"));
        let doc = parse(&html);
        assert_eq!(visible_text(&doc), "নমস্কার");
        let img = doc.elements_named("img").next().unwrap();
        assert_eq!(doc.attr(img, "alt"), Some("ছবি"));
    }

    #[test]
    fn escaping_round_trips() {
        let tricky = r#"5 < 6 & "quotes" > 4"#;
        let mut b = HtmlBuilder::fragment();
        b.leaf("p", &[("title", Some(tricky))], tricky);
        let html = b.finish();
        let doc = parse(&html);
        let p = doc.elements_named("p").next().unwrap();
        assert_eq!(doc.attr(p, "title"), Some(tricky));
        assert_eq!(doc.text_content(p), tricky);
    }

    #[test]
    fn boolean_attributes() {
        let mut b = HtmlBuilder::fragment();
        b.void("input", &[("type", Some("text")), ("disabled", None)]);
        let html = b.finish();
        assert_eq!(html, r#"<input type="text" disabled>"#);
    }

    #[test]
    fn finish_closes_open_elements() {
        let mut b = HtmlBuilder::fragment();
        b.open("div", &[]).open("span", &[]).text("x");
        let html = b.finish();
        assert_eq!(html, "<div><span>x</span></div>");
    }

    #[test]
    #[should_panic(expected = "close() with no open element")]
    fn unbalanced_close_panics() {
        HtmlBuilder::fragment().close();
    }

    #[test]
    fn presized_builder_output_matches_default() {
        let build = |mut b: HtmlBuilder| {
            b.open("html", &[("lang", Some("ru"))]);
            b.leaf("p", &[], "новости дня");
            b.finish()
        };
        let presized = build(HtmlBuilder::document_sized(4096));
        assert_eq!(presized, build(HtmlBuilder::document()));
        let b = HtmlBuilder::fragment_sized(1024);
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn reset_document_recycles_buffer_and_stack() {
        let mut b = HtmlBuilder::document_sized(4096);
        b.open("html", &[])
            .open("body", &[])
            .leaf("p", &[], "first");
        let cap = b.capacity();
        b.reset_document();
        assert_eq!(b.depth(), 0);
        assert_eq!(b.as_str(), "<!DOCTYPE html>");
        assert!(b.capacity() >= cap, "capacity must survive the reset");
        b.open("html", &[]).leaf("p", &[], "second");
        let html = b.finish();
        assert_eq!(html, "<!DOCTYPE html><html><p>second</p></html>");
    }

    #[test]
    fn name_arena_closes_nested_same_and_different_tags() {
        let mut b = HtmlBuilder::fragment();
        b.open("div", &[]).open("div", &[]).open("span", &[]);
        b.text("x");
        b.close().close().close();
        assert_eq!(b.finish(), "<div><div><span>x</span></div></div>");
    }

    #[test]
    fn depth_tracks_stack() {
        let mut b = HtmlBuilder::fragment();
        assert_eq!(b.depth(), 0);
        b.open("div", &[]);
        assert_eq!(b.depth(), 1);
        b.close();
        assert_eq!(b.depth(), 0);
    }
}
