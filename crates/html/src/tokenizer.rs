//! HTML tokenizer.
//!
//! A pragmatic, spec-shaped (not spec-complete) tokenizer: it handles the
//! constructs that occur in real-world markup — doctype, comments, start/end
//! tags, all three attribute forms (double-quoted, single-quoted, unquoted,
//! plus bare boolean attributes), self-closing tags, and the raw-text
//! elements `script`/`style`/`textarea`/`title` whose content must not be
//! re-tokenized. Error handling follows the browser convention: never fail,
//! always produce *some* token stream (measurement crawlers meet a lot of
//! broken HTML).

use crate::entities::decode;

/// One attribute on a start tag. Values are entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Doctype(String),
    Comment(String),
    /// `name` is lower-cased; `self_closing` reflects a trailing `/`.
    StartTag {
        name: String,
        attrs: Vec<Attribute>,
        self_closing: bool,
    },
    EndTag {
        name: String,
    },
    /// Entity-decoded character data.
    Text(String),
}

/// Elements whose content is raw text (no nested markup).
pub fn is_raw_text_element(name: &str) -> bool {
    matches!(name, "script" | "style" | "textarea" | "title" | "noscript")
}

/// Tokenize an HTML document. Never panics on any input.
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            // Markup averages a few dozen bytes per token; reserving up
            // front avoids repeated growth on page-sized inputs.
            tokens: Vec::with_capacity(input.len() / 24),
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.lex_angle();
            } else {
                self.lex_text();
            }
        }
        self.tokens
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn lex_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.tokens.push(Token::Text(decode(raw)));
        }
    }

    fn lex_angle(&mut self) {
        let rest = self.rest();
        if rest.starts_with("<!--") {
            self.lex_comment();
        } else if rest.len() >= 2 && (rest.as_bytes()[1] == b'!' || rest.as_bytes()[1] == b'?') {
            self.lex_declaration();
        } else if rest.len() >= 2 && rest.as_bytes()[1] == b'/' {
            self.lex_end_tag();
        } else if rest.len() >= 2 && rest.as_bytes()[1].is_ascii_alphabetic() {
            self.lex_start_tag();
        } else {
            // A lone '<' is text.
            self.tokens.push(Token::Text("<".to_string()));
            self.pos += 1;
        }
    }

    fn lex_comment(&mut self) {
        let body_start = self.pos + 4;
        match self.input[body_start..].find("-->") {
            Some(end) => {
                self.tokens.push(Token::Comment(
                    self.input[body_start..body_start + end].to_string(),
                ));
                self.pos = body_start + end + 3;
            }
            None => {
                // Unterminated comment swallows the rest of the input.
                self.tokens
                    .push(Token::Comment(self.input[body_start..].to_string()));
                self.pos = self.bytes.len();
            }
        }
    }

    fn lex_declaration(&mut self) {
        // <!DOCTYPE html> or <?xml ...?> — capture to the next '>'.
        let body_start = self.pos + 2;
        match self.input[body_start..].find('>') {
            Some(end) => {
                let body = &self.input[body_start..body_start + end];
                if body
                    .get(..7)
                    .is_some_and(|p| p.eq_ignore_ascii_case("doctype"))
                {
                    self.tokens
                        .push(Token::Doctype(body[7..].trim().to_ascii_lowercase()));
                }
                // Other declarations (CDATA, processing instructions) are dropped.
                self.pos = body_start + end + 1;
            }
            None => {
                self.pos = self.bytes.len();
            }
        }
    }

    fn lex_end_tag(&mut self) {
        let name_start = self.pos + 2;
        let mut i = name_start;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        // Skip to '>'.
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        self.pos = (i + 1).min(self.bytes.len());
        if !name.is_empty() {
            self.tokens.push(Token::EndTag { name });
        }
    }

    fn lex_start_tag(&mut self) {
        let name_start = self.pos + 1;
        let mut i = name_start;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        self.pos = i;
        let (attrs, self_closing) = self.lex_attributes();
        // Clone the name only for the rare raw-text elements; every other
        // start tag moves its name into the token without copying.
        let raw_name = (is_raw_text_element(&name) && !self_closing).then(|| name.clone());
        self.tokens.push(Token::StartTag {
            name,
            attrs,
            self_closing,
        });
        if let Some(name) = raw_name {
            self.lex_raw_text(&name);
        }
    }

    /// After a raw-text start tag, consume everything up to the matching
    /// case-insensitive `</name`, emitting it as a single Text token
    /// (entity-decoded only for `title`/`textarea`, per spec these are
    /// "escapable raw text").
    fn lex_raw_text(&mut self, name: &str) {
        let hay = self.rest();
        // In-place case-insensitive search for `</name` — the previous
        // implementation lowercased the whole remaining input per raw-text
        // element, which made tokenization quadratic in page size.
        let bytes = hay.as_bytes();
        let name_bytes = name.as_bytes();
        let mut end = hay.len();
        let mut i = 0;
        while i + 2 + name_bytes.len() <= bytes.len() {
            if bytes[i] == b'<'
                && bytes[i + 1] == b'/'
                && bytes[i + 2..i + 2 + name_bytes.len()].eq_ignore_ascii_case(name_bytes)
            {
                end = i;
                break;
            }
            i += 1;
        }
        let body = &hay[..end];
        if !body.is_empty() {
            let text = if matches!(name, "title" | "textarea") {
                decode(body)
            } else {
                body.to_string()
            };
            self.tokens.push(Token::Text(text));
        }
        self.pos += end;
        // The EndTag will be lexed by the main loop (or EOF).
    }

    fn lex_attributes(&mut self) -> (Vec<Attribute>, bool) {
        let mut attrs: Vec<Attribute> = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            if self.pos >= self.bytes.len() {
                break;
            }
            match self.bytes[self.pos] {
                b'>' => {
                    self.pos += 1;
                    break;
                }
                b'/' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() && self.bytes[self.pos] == b'>' {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                _ => {
                    if let Some(attr) = self.lex_one_attribute() {
                        // First occurrence wins, as in browsers.
                        if !attrs.iter().any(|a| a.name == attr.name) {
                            attrs.push(attr);
                        }
                    } else {
                        // Couldn't make progress; skip a byte defensively.
                        self.pos += 1;
                    }
                }
            }
        }
        (attrs, self_closing)
    }

    fn lex_one_attribute(&mut self) -> Option<Attribute> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && !matches!(
                self.bytes[self.pos],
                b'=' | b'>' | b'/' | b' ' | b'\t' | b'\n' | b'\r'
            )
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        self.skip_whitespace();
        if self.pos >= self.bytes.len() || self.bytes[self.pos] != b'=' {
            // Boolean attribute: <input disabled>
            return Some(Attribute {
                name,
                value: String::new(),
            });
        }
        self.pos += 1; // consume '='
        self.skip_whitespace();
        if self.pos >= self.bytes.len() {
            return Some(Attribute {
                name,
                value: String::new(),
            });
        }
        let value = match self.bytes[self.pos] {
            q @ (b'"' | b'\'') => {
                self.pos += 1;
                let vstart = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                    self.pos += 1;
                }
                let raw = &self.input[vstart..self.pos];
                self.pos = (self.pos + 1).min(self.bytes.len()); // closing quote
                decode(raw)
            }
            _ => {
                let vstart = self.pos;
                while self.pos < self.bytes.len()
                    && !matches!(self.bytes[self.pos], b'>' | b' ' | b'\t' | b'\n' | b'\r')
                {
                    self.pos += 1;
                }
                decode(&self.input[vstart..self.pos])
            }
        };
        Some(Attribute { name, value })
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tokens: &[Token], idx: usize) -> (&str, &Vec<Attribute>, bool) {
        match &tokens[idx] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => (name.as_str(), attrs, *self_closing),
            other => panic!("expected StartTag, got {other:?}"),
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize("<!DOCTYPE html><html><body>Hi</body></html>");
        assert_eq!(toks[0], Token::Doctype("html".into()));
        assert_eq!(start(&toks, 1).0, "html");
        assert_eq!(start(&toks, 2).0, "body");
        assert_eq!(toks[3], Token::Text("Hi".into()));
        assert_eq!(
            toks[4],
            Token::EndTag {
                name: "body".into()
            }
        );
    }

    #[test]
    fn attribute_forms() {
        let toks = tokenize(r#"<img src="a.png" alt='photo' width=100 hidden data-x="1&amp;2">"#);
        let (name, attrs, _) = start(&toks, 0);
        assert_eq!(name, "img");
        let get = |n: &str| attrs.iter().find(|a| a.name == n).map(|a| a.value.clone());
        assert_eq!(get("src").as_deref(), Some("a.png"));
        assert_eq!(get("alt").as_deref(), Some("photo"));
        assert_eq!(get("width").as_deref(), Some("100"));
        assert_eq!(get("hidden").as_deref(), Some(""));
        assert_eq!(get("data-x").as_deref(), Some("1&2"));
    }

    #[test]
    fn self_closing_and_case() {
        let toks = tokenize("<BR/><IMG SRC='x'/>");
        assert_eq!(start(&toks, 0), ("br", &vec![], true));
        let (name, attrs, sc) = start(&toks, 1);
        assert_eq!(name, "img");
        assert!(sc);
        assert_eq!(attrs[0].name, "src");
    }

    #[test]
    fn comments_and_unterminated() {
        let toks = tokenize("<!-- hello -->text<!-- unterminated");
        assert_eq!(toks[0], Token::Comment(" hello ".into()));
        assert_eq!(toks[1], Token::Text("text".into()));
        assert_eq!(toks[2], Token::Comment(" unterminated".into()));
    }

    #[test]
    fn script_content_not_tokenized() {
        let toks = tokenize(r#"<script>if (a < b) { x = "<div>"; }</script><p>ok</p>"#);
        assert_eq!(start(&toks, 0).0, "script");
        assert_eq!(
            toks[1],
            Token::Text(r#"if (a < b) { x = "<div>"; }"#.into())
        );
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(start(&toks, 3).0, "p");
    }

    #[test]
    fn title_is_escapable_raw_text() {
        let toks = tokenize("<title>News &amp; Weather</title>");
        assert_eq!(toks[1], Token::Text("News & Weather".into()));
    }

    #[test]
    fn raw_text_close_tag_case_insensitive() {
        let toks = tokenize("<script>x</SCRIPT>done");
        assert_eq!(toks[1], Token::Text("x".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(toks[3], Token::Text("done".into()));
    }

    #[test]
    fn lone_angle_bracket_is_text() {
        let toks = tokenize("a < b");
        let text: String = toks
            .iter()
            .map(|t| match t {
                Token::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(text, "a < b");
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let toks = tokenize("<div class=\"x");
        assert_eq!(start(&toks, 0).0, "div");
    }

    #[test]
    fn duplicate_attributes_first_wins() {
        let toks = tokenize(r#"<a href="first" href="second">"#);
        let (_, attrs, _) = start(&toks, 0);
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].value, "first");
    }

    #[test]
    fn multilingual_text_and_attrs() {
        let toks = tokenize(r#"<img alt="ছবি: নদীর দৃশ্য"><p>สวัสดี</p>"#);
        let (_, attrs, _) = start(&toks, 0);
        assert_eq!(attrs[0].value, "ছবি: নদীর দৃশ্য");
        assert_eq!(toks[2], Token::Text("สวัสดี".into()));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn never_panics_on_junk() {
        for junk in [
            "<",
            "<<",
            "<>",
            "</>",
            "<//>",
            "<!",
            "<!-",
            "<!--",
            "< div>",
            "<div",
            "<div /",
            "<a b=c d='e",
            "<a b=\"",
            "&",
            "&#",
            "&#x",
            "\u{0}<\u{0}>",
        ] {
            let _ = tokenize(junk);
        }
    }
}
