//! HTML tokenizer.
//!
//! A pragmatic, spec-shaped (not spec-complete) tokenizer: it handles the
//! constructs that occur in real-world markup — doctype, comments, start/end
//! tags, all three attribute forms (double-quoted, single-quoted, unquoted,
//! plus bare boolean attributes), self-closing tags, and the raw-text
//! elements `script`/`style`/`textarea`/`title` whose content must not be
//! re-tokenized. Error handling follows the browser convention: never fail,
//! always produce *some* token stream (measurement crawlers meet a lot of
//! broken HTML).
//!
//! The lexer is written once and driven through a [`TokenSink`], so the two
//! consumers share every lexing rule byte for byte:
//!
//! * [`tokenize`] materialises owned [`Token`]s for the tree builder
//!   ([`crate::parser::parse`]).
//! * [`tokenize_into`] pushes borrowed lexemes straight into a caller sink —
//!   this is the entry point of the streaming extraction path
//!   ([`crate::stream`]), which never allocates a token buffer or a DOM.

use crate::entities::decode;

/// One attribute on a start tag. Values are entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Doctype(String),
    Comment(String),
    /// `name` is lower-cased; `self_closing` reflects a trailing `/`.
    StartTag {
        name: String,
        attrs: Vec<Attribute>,
        self_closing: bool,
    },
    EndTag {
        name: String,
    },
    /// Entity-decoded character data.
    Text(String),
}

/// Elements whose content is raw text (no nested markup).
pub fn is_raw_text_element(name: &str) -> bool {
    raw_text_static_name(name).is_some()
}

/// The single source of truth for the raw-text element set: maps a
/// lower-cased tag name to its `'static` spelling (the raw-text scanner
/// needs a name that outlives the lexer's scratch buffer).
fn raw_text_static_name(name: &str) -> Option<&'static str> {
    match name {
        "script" => Some("script"),
        "style" => Some("style"),
        "textarea" => Some("textarea"),
        "title" => Some("title"),
        "noscript" => Some("noscript"),
        _ => None,
    }
}

/// Receiver of lexical events from [`tokenize_into`].
///
/// The lexer owns every scratch buffer; sinks see borrowed data that is
/// valid only for the duration of the call:
///
/// * `name` slices are already lower-cased.
/// * `attrs` arrives deduplicated (first occurrence wins) with
///   entity-decoded values. A sink that wants ownership may
///   `std::mem::take` the `Vec`; the lexer clears it before the next tag
///   either way, so taking is free and not taking reuses the allocation.
/// * `text` arrives **undecoded**; `decode_entities` says whether the
///   owned-token path would run [`decode`] over it (true for ordinary
///   character data and the "escapable raw text" elements
///   `title`/`textarea`, false for `script`/`style`/`noscript` bodies).
///   This keeps the expensive decode lazy: a sink may skip it for runs it
///   will discard, or decode into a reused buffer.
///
/// `doctype` and `comment` default to no-ops since most sinks ignore them.
pub trait TokenSink {
    /// Doctype body after the `doctype` keyword, untrimmed and in original
    /// case (the owned-token path trims + lower-cases it).
    fn doctype(&mut self, _raw: &str) {}
    /// Comment body, excluding the `<!--`/`-->` delimiters.
    fn comment(&mut self, _text: &str) {}
    /// A start tag. See the trait docs for the `attrs` contract.
    fn start_tag(&mut self, name: &str, attrs: &mut Vec<Attribute>, self_closing: bool);
    /// An end tag (`name` is non-empty and lower-cased).
    fn end_tag(&mut self, name: &str);
    /// A non-empty run of character data. See the trait docs for the
    /// `decode_entities` contract.
    fn text(&mut self, raw: &str, decode_entities: bool);
}

/// Tokenize an HTML document into owned tokens. Never panics on any input.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut sink = VecSink {
        // Markup averages a few dozen bytes per token; reserving up
        // front avoids repeated growth on page-sized inputs.
        tokens: Vec::with_capacity(input.len() / 24),
    };
    tokenize_into(input, &mut sink);
    sink.tokens
}

/// Tokenize an HTML document, pushing each lexeme into `sink`. Never
/// panics on any input. [`tokenize`] is exactly this with a `Vec<Token>`
/// sink, so every consumer shares one lexer.
pub fn tokenize_into<S: TokenSink>(input: &str, sink: &mut S) {
    Tokenizer::new(input, sink).run();
}

/// The sink behind [`tokenize`]: materialises owned [`Token`]s.
struct VecSink {
    tokens: Vec<Token>,
}

impl TokenSink for VecSink {
    fn doctype(&mut self, raw: &str) {
        self.tokens
            .push(Token::Doctype(raw.trim().to_ascii_lowercase()));
    }

    fn comment(&mut self, text: &str) {
        self.tokens.push(Token::Comment(text.to_string()));
    }

    fn start_tag(&mut self, name: &str, attrs: &mut Vec<Attribute>, self_closing: bool) {
        self.tokens.push(Token::StartTag {
            name: name.to_string(),
            attrs: std::mem::take(attrs),
            self_closing,
        });
    }

    fn end_tag(&mut self, name: &str) {
        self.tokens.push(Token::EndTag {
            name: name.to_string(),
        });
    }

    fn text(&mut self, raw: &str, decode_entities: bool) {
        self.tokens.push(Token::Text(if decode_entities {
            decode(raw)
        } else {
            raw.to_string()
        }));
    }
}

struct Tokenizer<'a, S> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    sink: &'a mut S,
    /// Scratch for the current tag name (lower-cased); reused across tags.
    name_buf: String,
    /// Scratch for the current tag's attributes; reused across tags unless
    /// the sink takes it.
    attrs_buf: Vec<Attribute>,
}

impl<'a, S: TokenSink> Tokenizer<'a, S> {
    fn new(input: &'a str, sink: &'a mut S) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            sink,
            name_buf: String::new(),
            attrs_buf: Vec::new(),
        }
    }

    fn run(mut self) {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.lex_angle();
            } else {
                self.lex_text();
            }
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn lex_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.sink.text(raw, true);
        }
    }

    fn lex_angle(&mut self) {
        let rest = self.rest();
        if rest.starts_with("<!--") {
            self.lex_comment();
        } else if rest.len() >= 2 && (rest.as_bytes()[1] == b'!' || rest.as_bytes()[1] == b'?') {
            self.lex_declaration();
        } else if rest.len() >= 2 && rest.as_bytes()[1] == b'/' {
            self.lex_end_tag();
        } else if rest.len() >= 2 && rest.as_bytes()[1].is_ascii_alphabetic() {
            self.lex_start_tag();
        } else {
            // A lone '<' is text.
            self.sink.text(&self.input[self.pos..self.pos + 1], false);
            self.pos += 1;
        }
    }

    fn lex_comment(&mut self) {
        let body_start = self.pos + 4;
        match self.input[body_start..].find("-->") {
            Some(end) => {
                self.sink.comment(&self.input[body_start..body_start + end]);
                self.pos = body_start + end + 3;
            }
            None => {
                // Unterminated comment swallows the rest of the input.
                self.sink.comment(&self.input[body_start..]);
                self.pos = self.bytes.len();
            }
        }
    }

    fn lex_declaration(&mut self) {
        // <!DOCTYPE html> or <?xml ...?> — capture to the next '>'.
        let body_start = self.pos + 2;
        match self.input[body_start..].find('>') {
            Some(end) => {
                let body = &self.input[body_start..body_start + end];
                if body
                    .get(..7)
                    .is_some_and(|p| p.eq_ignore_ascii_case("doctype"))
                {
                    self.sink.doctype(&body[7..]);
                }
                // Other declarations (CDATA, processing instructions) are dropped.
                self.pos = body_start + end + 1;
            }
            None => {
                self.pos = self.bytes.len();
            }
        }
    }

    /// Lower-case `src` into the name scratch buffer.
    fn set_name(name_buf: &mut String, src: &str) {
        name_buf.clear();
        // Tag names are ASCII-alphanumeric plus '-', so per-byte
        // lower-casing is exact.
        name_buf.extend(src.bytes().map(|b| b.to_ascii_lowercase() as char));
    }

    fn lex_end_tag(&mut self) {
        let name_start = self.pos + 2;
        let mut i = name_start;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        Self::set_name(&mut self.name_buf, &self.input[name_start..i]);
        // Skip to '>'.
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        self.pos = (i + 1).min(self.bytes.len());
        if !self.name_buf.is_empty() {
            self.sink.end_tag(&self.name_buf);
        }
    }

    fn lex_start_tag(&mut self) {
        let name_start = self.pos + 1;
        let mut i = name_start;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        Self::set_name(&mut self.name_buf, &self.input[name_start..i]);
        self.pos = i;
        let self_closing = self.lex_attributes();
        let raw_name: Option<&'static str> = if self_closing {
            None
        } else {
            raw_text_static_name(self.name_buf.as_str())
        };
        self.sink
            .start_tag(&self.name_buf, &mut self.attrs_buf, self_closing);
        self.attrs_buf.clear();
        if let Some(name) = raw_name {
            self.lex_raw_text(name);
        }
    }

    /// After a raw-text start tag, consume everything up to the matching
    /// case-insensitive `</name`, emitting it as a single text run
    /// (entity-decoded only for `title`/`textarea`, per spec these are
    /// "escapable raw text").
    fn lex_raw_text(&mut self, name: &str) {
        let hay = self.rest();
        // In-place case-insensitive search for `</name` — lowercasing the
        // whole remaining input per raw-text element would make
        // tokenization quadratic in page size.
        let bytes = hay.as_bytes();
        let name_bytes = name.as_bytes();
        let mut end = hay.len();
        let mut i = 0;
        while i + 2 + name_bytes.len() <= bytes.len() {
            if bytes[i] == b'<'
                && bytes[i + 1] == b'/'
                && bytes[i + 2..i + 2 + name_bytes.len()].eq_ignore_ascii_case(name_bytes)
            {
                end = i;
                break;
            }
            i += 1;
        }
        let body = &hay[..end];
        if !body.is_empty() {
            self.sink.text(body, matches!(name, "title" | "textarea"));
        }
        self.pos += end;
        // The EndTag will be lexed by the main loop (or EOF).
    }

    /// Lex attributes into the scratch buffer; returns the self-closing flag.
    fn lex_attributes(&mut self) -> bool {
        debug_assert!(self.attrs_buf.is_empty());
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            if self.pos >= self.bytes.len() {
                break;
            }
            match self.bytes[self.pos] {
                b'>' => {
                    self.pos += 1;
                    break;
                }
                b'/' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() && self.bytes[self.pos] == b'>' {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                _ => {
                    if let Some(attr) = self.lex_one_attribute() {
                        // First occurrence wins, as in browsers.
                        if !self.attrs_buf.iter().any(|a| a.name == attr.name) {
                            self.attrs_buf.push(attr);
                        }
                    } else {
                        // Couldn't make progress; skip a byte defensively.
                        self.pos += 1;
                    }
                }
            }
        }
        self_closing
    }

    fn lex_one_attribute(&mut self) -> Option<Attribute> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && !matches!(
                self.bytes[self.pos],
                b'=' | b'>' | b'/' | b' ' | b'\t' | b'\n' | b'\r'
            )
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        self.skip_whitespace();
        if self.pos >= self.bytes.len() || self.bytes[self.pos] != b'=' {
            // Boolean attribute: <input disabled>
            return Some(Attribute {
                name,
                value: String::new(),
            });
        }
        self.pos += 1; // consume '='
        self.skip_whitespace();
        if self.pos >= self.bytes.len() {
            return Some(Attribute {
                name,
                value: String::new(),
            });
        }
        let value = match self.bytes[self.pos] {
            q @ (b'"' | b'\'') => {
                self.pos += 1;
                let vstart = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                    self.pos += 1;
                }
                let raw = &self.input[vstart..self.pos];
                self.pos = (self.pos + 1).min(self.bytes.len()); // closing quote
                decode(raw)
            }
            _ => {
                let vstart = self.pos;
                while self.pos < self.bytes.len()
                    && !matches!(self.bytes[self.pos], b'>' | b' ' | b'\t' | b'\n' | b'\r')
                {
                    self.pos += 1;
                }
                decode(&self.input[vstart..self.pos])
            }
        };
        Some(Attribute { name, value })
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tokens: &[Token], idx: usize) -> (&str, &Vec<Attribute>, bool) {
        match &tokens[idx] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => (name.as_str(), attrs, *self_closing),
            other => panic!("expected StartTag, got {other:?}"),
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize("<!DOCTYPE html><html><body>Hi</body></html>");
        assert_eq!(toks[0], Token::Doctype("html".into()));
        assert_eq!(start(&toks, 1).0, "html");
        assert_eq!(start(&toks, 2).0, "body");
        assert_eq!(toks[3], Token::Text("Hi".into()));
        assert_eq!(
            toks[4],
            Token::EndTag {
                name: "body".into()
            }
        );
    }

    #[test]
    fn attribute_forms() {
        let toks = tokenize(r#"<img src="a.png" alt='photo' width=100 hidden data-x="1&amp;2">"#);
        let (name, attrs, _) = start(&toks, 0);
        assert_eq!(name, "img");
        let get = |n: &str| attrs.iter().find(|a| a.name == n).map(|a| a.value.clone());
        assert_eq!(get("src").as_deref(), Some("a.png"));
        assert_eq!(get("alt").as_deref(), Some("photo"));
        assert_eq!(get("width").as_deref(), Some("100"));
        assert_eq!(get("hidden").as_deref(), Some(""));
        assert_eq!(get("data-x").as_deref(), Some("1&2"));
    }

    #[test]
    fn self_closing_and_case() {
        let toks = tokenize("<BR/><IMG SRC='x'/>");
        assert_eq!(start(&toks, 0), ("br", &vec![], true));
        let (name, attrs, sc) = start(&toks, 1);
        assert_eq!(name, "img");
        assert!(sc);
        assert_eq!(attrs[0].name, "src");
    }

    #[test]
    fn comments_and_unterminated() {
        let toks = tokenize("<!-- hello -->text<!-- unterminated");
        assert_eq!(toks[0], Token::Comment(" hello ".into()));
        assert_eq!(toks[1], Token::Text("text".into()));
        assert_eq!(toks[2], Token::Comment(" unterminated".into()));
    }

    #[test]
    fn script_content_not_tokenized() {
        let toks = tokenize(r#"<script>if (a < b) { x = "<div>"; }</script><p>ok</p>"#);
        assert_eq!(start(&toks, 0).0, "script");
        assert_eq!(
            toks[1],
            Token::Text(r#"if (a < b) { x = "<div>"; }"#.into())
        );
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(start(&toks, 3).0, "p");
    }

    #[test]
    fn title_is_escapable_raw_text() {
        let toks = tokenize("<title>News &amp; Weather</title>");
        assert_eq!(toks[1], Token::Text("News & Weather".into()));
    }

    #[test]
    fn raw_text_close_tag_case_insensitive() {
        let toks = tokenize("<script>x</SCRIPT>done");
        assert_eq!(toks[1], Token::Text("x".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(toks[3], Token::Text("done".into()));
    }

    #[test]
    fn lone_angle_bracket_is_text() {
        let toks = tokenize("a < b");
        let text: String = toks
            .iter()
            .map(|t| match t {
                Token::Text(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(text, "a < b");
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let toks = tokenize("<div class=\"x");
        assert_eq!(start(&toks, 0).0, "div");
    }

    #[test]
    fn duplicate_attributes_first_wins() {
        let toks = tokenize(r#"<a href="first" href="second">"#);
        let (_, attrs, _) = start(&toks, 0);
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].value, "first");
    }

    #[test]
    fn multilingual_text_and_attrs() {
        let toks = tokenize(r#"<img alt="ছবি: নদীর দৃশ্য"><p>สวัสดี</p>"#);
        let (_, attrs, _) = start(&toks, 0);
        assert_eq!(attrs[0].value, "ছবি: নদীর দৃশ্য");
        assert_eq!(toks[2], Token::Text("สวัสดี".into()));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn never_panics_on_junk() {
        for junk in [
            "<",
            "<<",
            "<>",
            "</>",
            "<//>",
            "<!",
            "<!-",
            "<!--",
            "< div>",
            "<div",
            "<div /",
            "<a b=c d='e",
            "<a b=\"",
            "&",
            "&#",
            "&#x",
            "\u{0}<\u{0}>",
        ] {
            let _ = tokenize(junk);
        }
    }

    /// A sink that records events as debug strings — pins the contract
    /// between the shared lexer and streaming sinks.
    #[derive(Default)]
    struct TraceSink {
        events: Vec<String>,
    }

    impl TokenSink for TraceSink {
        fn doctype(&mut self, raw: &str) {
            self.events.push(format!("doctype({raw})"));
        }
        fn comment(&mut self, text: &str) {
            self.events.push(format!("comment({text})"));
        }
        fn start_tag(&mut self, name: &str, attrs: &mut Vec<Attribute>, self_closing: bool) {
            let attrs: Vec<String> = attrs
                .iter()
                .map(|a| format!("{}={}", a.name, a.value))
                .collect();
            self.events.push(format!(
                "start({name},[{}],{self_closing})",
                attrs.join(";")
            ));
        }
        fn end_tag(&mut self, name: &str) {
            self.events.push(format!("end({name})"));
        }
        fn text(&mut self, raw: &str, decode_entities: bool) {
            self.events.push(format!("text({raw},{decode_entities})"));
        }
    }

    #[test]
    fn sink_sees_borrowed_events() {
        let mut sink = TraceSink::default();
        tokenize_into(
            "<!DOCTYPE HTML><DIV Class=x>a&amp;b<script>1<2</script></DIV><!--c-->",
            &mut sink,
        );
        assert_eq!(
            sink.events,
            vec![
                "doctype( HTML)",
                "start(div,[class=x],false)",
                "text(a&amp;b,true)",
                "start(script,[],false)",
                "text(1<2,false)",
                "end(script)",
                "end(div)",
                "comment(c)",
            ]
        );
    }

    #[test]
    fn sink_attrs_vec_is_reusable_when_not_taken() {
        // A sink that never takes the attrs Vec still sees each tag's own
        // attributes (the lexer clears between tags).
        struct CountSink {
            attr_counts: Vec<usize>,
        }
        impl TokenSink for CountSink {
            fn start_tag(&mut self, _: &str, attrs: &mut Vec<Attribute>, _: bool) {
                self.attr_counts.push(attrs.len());
            }
            fn end_tag(&mut self, _: &str) {}
            fn text(&mut self, _: &str, _: bool) {}
        }
        let mut sink = CountSink {
            attr_counts: Vec::new(),
        };
        tokenize_into("<a x=1 y=2><b z=3><c>", &mut sink);
        assert_eq!(sink.attr_counts, vec![2, 1, 0]);
    }
}
