//! # langcrux-html
//!
//! A from-scratch HTML engine sized for measurement crawling: tokenizer,
//! arena DOM, tree builder with browser-style error recovery, visibility-
//! aware text extraction, and a well-formed HTML writer.
//!
//! This substrate replaces the paper's Puppeteer/Chromium dependency for
//! everything the study actually consumes from the browser: the parsed DOM,
//! element attributes, and the page's visible text (honouring `hidden`,
//! `aria-hidden`, and inline `display:none`).
//!
//! * [`tokenizer`] — tags, attributes (all forms), comments, doctype,
//!   raw-text elements; never fails on malformed input. Sink-driven
//!   ([`tokenizer::TokenSink`]), so token materialisation is optional.
//! * [`entities`] — character-reference decode/encode.
//! * [`dom`] — arena [`dom::Document`] with id-based traversal.
//! * [`parser`] — tree construction with void elements and recovery.
//! * [`visible`] — Puppeteer-equivalent visible-text extraction.
//! * [`stream`] — streaming tokenize→extract: the visible text and script
//!   histogram straight from tokenizer events, with no DOM allocation
//!   (the crawl path's hot loop; byte-identical to the DOM walk).
//! * [`builder`] — balanced, escaped HTML construction for the generator.
//! * [`mod@serialize`] — DOM → HTML re-emission (normalising round trip).
//!
//! The two extraction paths and when to use which — plus how the rest of
//! the workspace consumes them — are mapped in the repository's
//! `ARCHITECTURE.md`.

pub mod builder;
pub mod dom;
pub mod entities;
pub mod parser;
pub mod serialize;
pub mod stream;
pub mod tokenizer;
pub mod visible;

pub use builder::HtmlBuilder;
pub use dom::{Document, NodeId, NodeKind};
pub use parser::parse;
pub use serialize::serialize;
pub use stream::{stream_extract, stream_visible_text_histogram, walk_events, StreamSink};
pub use visible::{
    visible_text, visible_text_histogram, visible_text_histogram_of, visible_text_of,
};
