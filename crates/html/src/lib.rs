//! # langcrux-html
//!
//! A from-scratch HTML engine sized for measurement crawling: tokenizer,
//! arena DOM, tree builder with browser-style error recovery, visibility-
//! aware text extraction, and a well-formed HTML writer.
//!
//! This substrate replaces the paper's Puppeteer/Chromium dependency for
//! everything the study actually consumes from the browser: the parsed DOM,
//! element attributes, and the page's visible text (honouring `hidden`,
//! `aria-hidden`, and inline `display:none`).
//!
//! * [`tokenizer`] — tags, attributes (all forms), comments, doctype,
//!   raw-text elements; never fails on malformed input.
//! * [`entities`] — character-reference decode/encode.
//! * [`dom`] — arena [`dom::Document`] with id-based traversal.
//! * [`parser`] — tree construction with void elements and recovery.
//! * [`visible`] — Puppeteer-equivalent visible-text extraction.
//! * [`builder`] — balanced, escaped HTML construction for the generator.
//! * [`mod@serialize`] — DOM → HTML re-emission (normalising round trip).

pub mod builder;
pub mod dom;
pub mod entities;
pub mod parser;
pub mod serialize;
pub mod tokenizer;
pub mod visible;

pub use builder::HtmlBuilder;
pub use dom::{Document, NodeId, NodeKind};
pub use parser::parse;
pub use serialize::serialize;
pub use visible::{
    visible_text, visible_text_histogram, visible_text_histogram_of, visible_text_of,
};
