//! Tree construction: token stream → [`Document`].
//!
//! A simplified but robust HTML tree builder: a stack of open elements,
//! void-element handling, raw-text pass-through, and browser-style recovery
//! for mismatched end tags (pop to the nearest matching open element; drop
//! the end tag if none matches). It does not implement the full HTML5
//! insertion modes (no foster parenting, no active formatting elements) —
//! the corpus generator never emits such constructs, and for wild HTML the
//! recovery rules keep extraction sane.

use crate::dom::{Document, NodeId, NodeKind};
use crate::tokenizer::{tokenize, Token};

/// Elements that never have children.
pub fn is_void_element(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Elements that implicitly close an open element of the same name
/// (`<li>`, `<p>`, table rows/cells, options). Shared with the streaming
/// walk ([`crate::stream`]), which emulates this tree builder's stack.
pub(crate) fn closes_same(name: &str) -> bool {
    matches!(
        name,
        "li" | "p" | "tr" | "td" | "th" | "option" | "dt" | "dd"
    )
}

/// Parse an HTML string into a [`Document`]. Never fails; bad markup
/// degrades to a best-effort tree.
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<NodeId> = vec![NodeId::ROOT];

    for token in tokenize(input) {
        match token {
            Token::Doctype(d) => {
                if doc.doctype.is_none() {
                    doc.doctype = Some(d);
                }
            }
            Token::Comment(c) => {
                let parent = *stack.last().expect("stack never empty");
                doc.append(parent, NodeKind::Comment(c));
            }
            Token::Text(t) => {
                let parent = *stack.last().expect("stack never empty");
                doc.append(parent, NodeKind::Text(t));
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Implicit close: "<li>a<li>b" closes the first li.
                if closes_same(&name) {
                    if let Some(pos) = stack
                        .iter()
                        .rposition(|&id| doc.tag_name(id) == Some(name.as_str()))
                    {
                        // Only close when the match is the innermost element
                        // (don't close a <p> through a nested <div>).
                        if pos == stack.len() - 1 {
                            stack.truncate(pos);
                        }
                    }
                }
                let parent = *stack.last().expect("stack never empty");
                let id = doc.append(
                    parent,
                    NodeKind::Element {
                        name: name.clone(),
                        attrs,
                    },
                );
                if !self_closing && !is_void_element(&name) {
                    stack.push(id);
                }
            }
            Token::EndTag { name } => {
                if let Some(pos) = stack
                    .iter()
                    .rposition(|&id| doc.tag_name(id) == Some(name.as_str()))
                {
                    stack.truncate(pos);
                }
                // Unmatched end tags are dropped (browser behaviour).
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let doc = parse("<html><body><div><p>hello <b>world</b></p></div></body></html>");
        let p = doc.elements_named("p").next().unwrap();
        assert_eq!(doc.text_content(p), "hello world");
        let b = doc.elements_named("b").next().unwrap();
        assert_eq!(doc.parent_element(b), Some(p));
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse("<div><img src='x'>text after img</div>");
        let img = doc.elements_named("img").next().unwrap();
        assert!(doc.node(img).children.is_empty());
        let div = doc.elements_named("div").next().unwrap();
        assert_eq!(doc.text_content(div), "text after img");
    }

    #[test]
    fn implicit_li_close() {
        let doc = parse("<ul><li>one<li>two<li>three</ul>");
        let ul = doc.elements_named("ul").next().unwrap();
        let lis: Vec<NodeId> = doc.elements_named("li").collect();
        assert_eq!(lis.len(), 3);
        for li in &lis {
            assert_eq!(doc.parent_element(*li), Some(ul));
        }
    }

    #[test]
    fn implicit_p_close() {
        let doc = parse("<body><p>first<p>second</body>");
        let body = doc.elements_named("body").next().unwrap();
        let ps: Vec<NodeId> = doc.elements_named("p").collect();
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.parent_element(ps[1]), Some(body));
    }

    #[test]
    fn p_not_closed_through_div() {
        // <p><div ...><p> — inner p must nest under div per our simplified
        // rule (the real spec actually closes p here, but consistent
        // nesting is what extraction needs).
        let doc = parse("<p>outer<span><p>inner</span></p>");
        assert_eq!(doc.elements_named("p").count(), 2);
    }

    #[test]
    fn mismatched_end_tags_recover() {
        let doc = parse("<div><span>text</div></span>");
        // </div> pops both span and div; trailing </span> is dropped.
        let div = doc.elements_named("div").next().unwrap();
        assert_eq!(doc.text_content(div), "text");
    }

    #[test]
    fn doctype_captured() {
        let doc = parse("<!DOCTYPE html><html></html>");
        assert_eq!(doc.doctype.as_deref(), Some("html"));
    }

    #[test]
    fn raw_text_title() {
        let doc = parse("<head><title>A &amp; B</title></head>");
        let title = doc.elements_named("title").next().unwrap();
        assert_eq!(doc.text_content(title), "A & B");
    }

    #[test]
    fn script_body_single_text_node() {
        let doc = parse("<script>var a = '<p>not a tag</p>';</script>");
        let script = doc.elements_named("script").next().unwrap();
        assert_eq!(doc.node(script).children.len(), 1);
        assert_eq!(doc.elements_named("p").count(), 0);
    }

    #[test]
    fn attributes_preserved() {
        let doc = parse(r#"<a href="/x" aria-label="читать далее">link</a>"#);
        let a = doc.elements_named("a").next().unwrap();
        assert_eq!(doc.attr(a, "aria-label"), Some("читать далее"));
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let mut s = String::new();
        for _ in 0..3000 {
            s.push_str("<div>");
        }
        s.push_str("deep");
        let doc = parse(&s);
        assert_eq!(doc.elements_named("div").count(), 3000);
    }

    #[test]
    fn garbage_inputs_produce_trees() {
        for junk in ["", "<", "</", ">>>", "<p", "text only", "<a></b></c><d>"] {
            let _ = parse(junk);
        }
    }
}
