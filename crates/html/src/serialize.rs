//! DOM → HTML serialization.
//!
//! Re-emits a parsed [`Document`] as HTML. Together with [`crate::parser`]
//! this gives a normalising round trip: `parse(serialize(parse(x)))`
//! produces the same tree as `parse(x)` — the property test that pins down
//! both components. Used by tooling that rewrites pages (e.g. tests that
//! inject accessibility fixes and re-audit).

use crate::dom::{Document, NodeId, NodeKind};
use crate::entities::{escape_attr, escape_text};
use crate::parser::is_void_element;
use crate::tokenizer::is_raw_text_element;

/// Serialize a whole document (including doctype when present).
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    if let Some(dt) = &doc.doctype {
        out.push_str("<!DOCTYPE ");
        out.push_str(dt);
        out.push('>');
    }
    for &child in &doc.node(NodeId::ROOT).children {
        serialize_node(doc, child, &mut out);
    }
    out
}

/// Serialize one subtree.
pub fn serialize_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for &child in &doc.node(id).children {
                serialize_node(doc, child, out);
            }
        }
        NodeKind::Text(t) => {
            // Text inside raw-text elements must not be entity-escaped.
            let raw_parent = doc
                .parent_element(id)
                .and_then(|p| doc.tag_name(p))
                .map(|name| is_raw_text_element(name) && !matches!(name, "title" | "textarea"))
                .unwrap_or(false);
            if raw_parent {
                out.push_str(t);
            } else {
                out.push_str(&escape_text(t));
            }
        }
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::Element { name, attrs } => {
            out.push('<');
            out.push_str(name);
            for attr in attrs {
                out.push(' ');
                out.push_str(&attr.name);
                if !attr.value.is_empty() {
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&attr.value));
                    out.push('"');
                }
            }
            out.push('>');
            if is_void_element(name) {
                return;
            }
            for &child in &doc.node(id).children {
                serialize_node(doc, child, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::visible::visible_text;

    fn round_trip(html: &str) -> String {
        serialize(&parse(html))
    }

    #[test]
    fn simple_round_trip() {
        let html = r#"<!DOCTYPE html><html lang="bn"><body><p>নমস্কার</p></body></html>"#;
        assert_eq!(round_trip(html), html);
    }

    #[test]
    fn void_elements_not_closed() {
        let out = round_trip(r#"<div><img src="a.png" alt="x"><br></div>"#);
        assert_eq!(out, r#"<div><img src="a.png" alt="x"><br></div>"#);
    }

    #[test]
    fn attributes_escaped() {
        let out = round_trip(r#"<a href="/x" title="a &quot;b&quot; &amp; c">t</a>"#);
        let doc = parse(&out);
        let a = doc.elements_named("a").next().unwrap();
        assert_eq!(doc.attr(a, "title"), Some(r#"a "b" & c"#));
    }

    #[test]
    fn boolean_attributes_stay_bare() {
        let out = round_trip(r#"<input type="text" disabled>"#);
        assert_eq!(out, r#"<input type="text" disabled>"#);
    }

    #[test]
    fn script_content_not_escaped() {
        let html = r#"<script>if (a < b && c > d) { go(); }</script>"#;
        let out = round_trip(html);
        assert_eq!(out, html);
    }

    #[test]
    fn title_content_escaped() {
        let out = round_trip("<title>News &amp; Weather</title>");
        assert_eq!(out, "<title>News &amp; Weather</title>");
    }

    #[test]
    fn comments_preserved() {
        assert_eq!(round_trip("<!-- note -->"), "<!-- note -->");
    }

    #[test]
    fn reparse_is_stable() {
        // parse → serialize → parse must preserve structure and text.
        let html = r#"<!DOCTYPE html><html><body>
            <ul><li>এক<li>দুই<li>তিন</ul>
            <img src=x><p>a &lt; b</p>
            <details><summary>more</summary><p>body</p></details>
            </body></html>"#;
        let once = parse(html);
        let twice = parse(&serialize(&once));
        assert_eq!(visible_text(&once), visible_text(&twice));
        assert_eq!(once.elements().count(), twice.elements().count());
        // And serialization reaches a fixed point after one pass.
        assert_eq!(serialize(&once), serialize(&twice));
    }
}
