//! Visible-text extraction.
//!
//! The paper's language measurements are over *visible textual content* —
//! what a sighted user (or a rendering engine) actually sees. This module
//! reproduces Puppeteer's effective behaviour for static HTML: walk the
//! DOM, skip subtrees that do not render (`<script>`, `<style>`,
//! `<template>`, `<noscript>`, `<head>` metadata), skip subtrees hidden via
//! the `hidden` attribute, `aria-hidden="true"`, or inline
//! `display:none` / `visibility:hidden` styles, and normalise whitespace
//! between block boundaries.

use crate::dom::{Document, NodeId, NodeKind};
use crate::tokenizer::Attribute;
use langcrux_lang::script::ScriptHistogram;

/// Elements whose entire subtree never renders as text.
pub(crate) fn is_non_rendering(name: &str) -> bool {
    matches!(
        name,
        "script" | "style" | "template" | "noscript" | "head" | "title" | "meta" | "link" | "base"
    )
}

/// Whether an element's inline `style` hides it.
fn style_hides(style: &str) -> bool {
    let lowered: String = style.to_ascii_lowercase().replace(' ', "");
    lowered.contains("display:none") || lowered.contains("visibility:hidden")
}

/// Whether an attribute list hides its element (`hidden`,
/// `aria-hidden="true"`, or a hiding inline `style`). Shared by the DOM
/// walk ([`element_hidden`]) and the streaming walk ([`crate::stream`]),
/// so the two paths cannot drift.
pub(crate) fn attrs_hide(attrs: &[Attribute]) -> bool {
    let get = |name: &str| {
        attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    };
    if get("hidden").is_some() {
        return true;
    }
    if get("aria-hidden").is_some_and(|v| v.eq_ignore_ascii_case("true")) {
        return true;
    }
    get("style").is_some_and(style_hides)
}

/// Whether this single element (not its ancestors) is hidden.
pub fn element_hidden(doc: &Document, id: NodeId) -> bool {
    attrs_hide(doc.attrs(id))
}

/// Whether a node is visible, considering its own flags and every ancestor.
pub fn is_visible(doc: &Document, id: NodeId) -> bool {
    let check = |eid: NodeId| -> bool {
        if let Some(name) = doc.tag_name(eid) {
            if is_non_rendering(name) {
                return false;
            }
        }
        !element_hidden(doc, eid)
    };
    if matches!(doc.node(id).kind, NodeKind::Element { .. }) && !check(id) {
        return false;
    }
    doc.ancestors(id)
        .all(|a| matches!(doc.node(a).kind, NodeKind::Document) || check(a))
}

/// Block-level elements that introduce text boundaries.
pub(crate) fn is_block(name: &str) -> bool {
    matches!(
        name,
        "p" | "div"
            | "section"
            | "article"
            | "header"
            | "footer"
            | "nav"
            | "aside"
            | "main"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "ul"
            | "ol"
            | "li"
            | "table"
            | "tr"
            | "td"
            | "th"
            | "form"
            | "fieldset"
            | "blockquote"
            | "figure"
            | "figcaption"
            | "br"
            | "hr"
            | "summary"
            | "details"
            | "option"
            | "select"
            | "label"
            | "button"
    )
}

/// Extract the visible text of the whole document, whitespace-normalised:
/// consecutive whitespace collapses to a single space; block boundaries
/// insert a newline.
pub fn visible_text(doc: &Document) -> String {
    visible_text_of(doc, NodeId::ROOT)
}

/// Extract the visible text of a subtree.
pub fn visible_text_of(doc: &Document, root: NodeId) -> String {
    let mut sink = Normaliser::new(());
    walk(doc, root, &mut sink);
    sink.out
}

/// Fused extraction: the visible text of the whole document *and* its
/// [`ScriptHistogram`], computed in the same single DOM walk. The histogram
/// is identical to `ScriptHistogram::of(&text)` but costs no re-scan of the
/// built string — this is the hot path of the paper's 50%-native-content
/// website-selection rule at crawl scale.
///
/// When the caller holds raw HTML rather than a parsed [`Document`], the
/// streaming equivalent [`crate::stream::stream_visible_text_histogram`]
/// produces the same pair without materialising a DOM at all.
///
/// ```
/// use langcrux_html::{parse, visible_text_histogram};
/// use langcrux_lang::script::{Script, ScriptHistogram};
///
/// let doc = parse("<body><p>নমস্কার</p><script>skip()</script><p>ok</p></body>");
/// let (text, hist) = visible_text_histogram(&doc);
/// assert_eq!(text, "নমস্কার\nok");
/// assert_eq!(hist, ScriptHistogram::of(&text));
/// assert!(hist.count(Script::Bengali) > hist.count(Script::Latin));
/// ```
pub fn visible_text_histogram(doc: &Document) -> (String, ScriptHistogram) {
    visible_text_histogram_of(doc, NodeId::ROOT)
}

/// Fused extraction of a subtree (see [`visible_text_histogram`]).
pub fn visible_text_histogram_of(doc: &Document, root: NodeId) -> (String, ScriptHistogram) {
    let mut sink = Normaliser::new(ScriptHistogram::default());
    walk(doc, root, &mut sink);
    (sink.out, sink.tally)
}

/// Observer of every character emitted into the normalised text. The unit
/// impl lets `visible_text` monomorphise to a tally-free walk.
pub(crate) trait CharTally {
    fn push(&mut self, c: char);
}

impl CharTally for () {
    #[inline]
    fn push(&mut self, _: char) {}
}

impl CharTally for ScriptHistogram {
    #[inline]
    fn push(&mut self, c: char) {
        ScriptHistogram::push(self, c);
    }
}

/// Streaming whitespace normaliser: the DOM walk — and the tokenizer-fed
/// streaming walk in [`crate::stream`] — feed text runs and block
/// boundaries directly into it, so the visible text (and, when requested,
/// its script histogram) is produced in one pass with no intermediate
/// buffer. Both extraction paths share this one struct, which is what
/// makes their outputs byte-identical by construction.
pub(crate) struct Normaliser<T> {
    pub(crate) out: String,
    pub(crate) tally: T,
    pending_newline: bool,
    pending_space: bool,
}

impl<T: CharTally> Normaliser<T> {
    pub(crate) fn new(tally: T) -> Self {
        Normaliser {
            out: String::new(),
            tally,
            pending_newline: false,
            pending_space: false,
        }
    }

    #[inline]
    fn emit(&mut self, c: char) {
        self.out.push(c);
        self.tally.push(c);
    }

    pub(crate) fn block_boundary(&mut self) {
        self.pending_newline = true;
    }

    pub(crate) fn push_text(&mut self, text: &str) {
        for c in text.chars() {
            // Historical sentinel: a literal U+0001 in input text acted as
            // a block boundary before the walk was fused; preserved so
            // output stays byte-identical.
            if c == '\u{1}' {
                self.pending_newline = true;
            } else if c.is_whitespace() {
                self.pending_space = true;
            } else {
                if self.pending_newline {
                    if !self.out.is_empty() {
                        self.emit('\n');
                    }
                    self.pending_newline = false;
                    self.pending_space = false;
                } else if self.pending_space {
                    if !self.out.is_empty() {
                        self.emit(' ');
                    }
                    self.pending_space = false;
                }
                self.emit(c);
            }
        }
    }
}

fn walk<T: CharTally>(doc: &Document, id: NodeId, sink: &mut Normaliser<T>) {
    match &doc.node(id).kind {
        NodeKind::Text(t) => sink.push_text(t),
        NodeKind::Comment(_) => {}
        NodeKind::Document => {
            for &c in &doc.node(id).children {
                walk(doc, c, sink);
            }
        }
        NodeKind::Element { name, .. } => {
            if is_non_rendering(name) || element_hidden(doc, id) {
                return;
            }
            let block = is_block(name);
            if block {
                sink.block_boundary();
            }
            for &c in &doc.node(id).children {
                walk(doc, c, sink);
            }
            if block {
                sink.block_boundary();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn basic_extraction() {
        let doc = parse("<html><body><p>Hello</p><p>World</p></body></html>");
        assert_eq!(visible_text(&doc), "Hello\nWorld");
    }

    #[test]
    fn scripts_styles_head_excluded() {
        let doc = parse(
            "<html><head><title>T</title><style>.x{}</style></head>\
             <body><script>var x=1;</script><p>only this</p></body></html>",
        );
        assert_eq!(visible_text(&doc), "only this");
    }

    #[test]
    fn hidden_attribute_hides_subtree() {
        let doc = parse("<div hidden><p>secret</p></div><p>shown</p>");
        assert_eq!(visible_text(&doc), "shown");
    }

    #[test]
    fn aria_hidden_true_hides() {
        let doc = parse(r#"<span aria-hidden="true">x</span><span aria-hidden="false">y</span>"#);
        assert_eq!(visible_text(&doc), "y");
    }

    #[test]
    fn display_none_hides() {
        let doc = parse(r#"<div style="display: none">a</div><div style="color:red">b</div>"#);
        assert_eq!(visible_text(&doc), "b");
        let doc = parse(r#"<div style="VISIBILITY:HIDDEN">a</div>ok"#);
        assert_eq!(visible_text(&doc), "ok");
    }

    #[test]
    fn inline_elements_do_not_break_words() {
        let doc = parse("<p>he<b>ll</b>o</p>");
        assert_eq!(visible_text(&doc), "hello");
    }

    #[test]
    fn whitespace_collapses() {
        let doc = parse("<p>a   b\n\t c</p>");
        assert_eq!(visible_text(&doc), "a b c");
    }

    #[test]
    fn multilingual_text_preserved() {
        let doc = parse("<p>নমস্কার বিশ্ব</p><p>हिन्दी</p>");
        assert_eq!(visible_text(&doc), "নমস্কার বিশ্ব\nहिन्दी");
    }

    #[test]
    fn is_visible_checks_ancestors() {
        let doc = parse(r#"<div hidden><p id="x">a</p></div>"#);
        let p = doc.elements_named("p").next().unwrap();
        assert!(!is_visible(&doc, p));
        let doc2 = parse(r#"<div><p>a</p></div>"#);
        let p2 = doc2.elements_named("p").next().unwrap();
        assert!(is_visible(&doc2, p2));
    }

    #[test]
    fn title_not_visible_but_extractable() {
        let doc = parse("<head><title>Site Name</title></head><body>body</body>");
        assert_eq!(visible_text(&doc), "body");
        let title = doc.elements_named("title").next().unwrap();
        assert_eq!(doc.text_content(title), "Site Name");
    }

    #[test]
    fn empty_document() {
        assert_eq!(visible_text(&parse("")), "");
        assert_eq!(visible_text(&parse("<div></div>")), "");
    }

    #[test]
    fn fused_histogram_matches_rescan() {
        let pages = [
            "",
            "<p>Hello</p><p>World 123</p>",
            "<p>নমস্কার বিশ্ব</p><div hidden>secret латиница</div><p>हिन्दी ok</p>",
            "<html lang=th><body><p>สวัสดี  ชาวโลก</p><script>var x;</script></body></html>",
            "<ul><li>中文</li><li>日本語です</li><li>한국어</li></ul>",
        ];
        for html in pages {
            let doc = parse(html);
            let (text, hist) = visible_text_histogram(&doc);
            assert_eq!(text, visible_text(&doc), "{html}");
            assert_eq!(hist, ScriptHistogram::of(&text), "{html}");
        }
    }

    #[test]
    fn fused_text_identical_to_plain_walk() {
        let html = "<div>a <b>b</b>\u{1}c</div><p>  d  </p>";
        let doc = parse(html);
        let (text, _) = visible_text_histogram(&doc);
        assert_eq!(text, visible_text(&doc));
    }
}
