//! HTML character-reference (entity) decoding and encoding.
//!
//! The crawler sees attribute values and text with entities
//! (`&amp;`, `&#x995;`, `&nbsp;`); language detection must run on the
//! decoded characters — a Bengali letter written as `&#2453;` is still
//! Bengali evidence. The named set covers the references that occur in
//! practice on the simulated corpus plus the HTML-required ones; numeric
//! references (decimal and hex) are decoded in full.

/// Named entities recognized by [`decode`]. Kept alphabetical for binary
/// search.
const NAMED: &[(&str, char)] = &[
    ("amp", '&'),
    ("apos", '\''),
    ("bull", '•'),
    ("cent", '¢'),
    ("copy", '©'),
    ("deg", '°'),
    ("gt", '>'),
    ("hellip", '…'),
    ("laquo", '«'),
    ("ldquo", '\u{201C}'),
    ("lsquo", '\u{2018}'),
    ("lt", '<'),
    ("mdash", '—'),
    ("middot", '·'),
    ("nbsp", '\u{00A0}'),
    ("ndash", '–'),
    ("pound", '£'),
    ("quot", '"'),
    ("raquo", '»'),
    ("rdquo", '\u{201D}'),
    ("reg", '®'),
    ("rsquo", '\u{2019}'),
    ("sect", '§'),
    ("times", '×'),
    ("trade", '™'),
    ("yen", '¥'),
];

fn named_lookup(name: &str) -> Option<char> {
    NAMED
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .map(|i| NAMED[i].1)
}

/// Decode all character references in `input`.
///
/// Malformed references (unknown name, missing `;`, invalid codepoint) are
/// passed through verbatim, as browsers effectively do for text content.
///
/// ```
/// use langcrux_html::entities::decode;
/// assert_eq!(decode("a &amp; b"), "a & b");
/// assert_eq!(decode("&#x95;&#2453;"), "\u{95}\u{995}");
/// assert_eq!(decode("5 &lt; 7"), "5 < 7");
/// assert_eq!(decode("no entity &here"), "no entity &here");
/// ```
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    decode_into(input, &mut out);
    out
}

/// Decode all character references in `input`, appending the result to
/// `out`. Identical output to [`decode`], but lets callers reuse one
/// scratch buffer across many text runs — the streaming extraction path
/// ([`crate::stream`]) decodes every visible text run this way without a
/// fresh allocation per run.
///
/// ```
/// use langcrux_html::entities::{decode, decode_into};
/// let mut buf = String::new();
/// decode_into("a &amp; b", &mut buf);
/// assert_eq!(buf, decode("a &amp; b"));
/// ```
pub fn decode_into(input: &str, out: &mut String) {
    if !input.contains('&') {
        out.push_str(input);
        return;
    }
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the full UTF-8 char.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the terminating ';' within a reasonable window.
        let window_end = (i + 32).min(bytes.len());
        let semi = bytes[i + 1..window_end].iter().position(|&b| b == b';');
        let Some(rel) = semi else {
            out.push('&');
            i += 1;
            continue;
        };
        let body = &input[i + 1..i + 1 + rel];
        let decoded = decode_reference(body);
        match decoded {
            Some(c) => {
                out.push(c);
                i += rel + 2; // '&' + body + ';'
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
}

fn decode_reference(body: &str) -> Option<char> {
    if let Some(num) = body.strip_prefix('#') {
        let cp = if let Some(hex) = num.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        return char::from_u32(cp);
    }
    named_lookup(body)
}

/// Escape text for inclusion in HTML text content.
pub fn escape_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    escape_text_into(input, &mut out);
    out
}

/// [`escape_text`] appended to a caller-owned buffer: clean spans are
/// copied wholesale (the common case — generated prose rarely contains
/// markup metacharacters — costs one memcpy and zero allocations).
pub fn escape_text_into(input: &str, out: &mut String) {
    let mut rest = input;
    while let Some(i) = rest.find(['&', '<', '>']) {
        out.push_str(&rest[..i]);
        out.push_str(match rest.as_bytes()[i] {
            b'&' => "&amp;",
            b'<' => "&lt;",
            _ => "&gt;",
        });
        rest = &rest[i + 1..];
    }
    out.push_str(rest);
}

/// Escape text for inclusion in a double-quoted attribute value.
pub fn escape_attr(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    escape_attr_into(input, &mut out);
    out
}

/// [`escape_attr`] appended to a caller-owned buffer (see
/// [`escape_text_into`] for the fast path).
pub fn escape_attr_into(input: &str, out: &mut String) {
    let mut rest = input;
    while let Some(i) = rest.find(['&', '<', '"']) {
        out.push_str(&rest[..i]);
        out.push_str(match rest.as_bytes()[i] {
            b'&' => "&amp;",
            b'<' => "&lt;",
            _ => "&quot;",
        });
        rest = &rest[i + 1..];
    }
    out.push_str(rest);
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_table_is_sorted() {
        for w in NAMED.windows(2) {
            assert!(w[0].0 < w[1].0, "{:?} >= {:?}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn decodes_named() {
        assert_eq!(decode("&lt;tag&gt;"), "<tag>");
        assert_eq!(decode("&quot;q&quot;"), "\"q\"");
        assert_eq!(decode("&nbsp;"), "\u{00A0}");
        assert_eq!(decode("&copy; 2025"), "© 2025");
    }

    #[test]
    fn decodes_numeric() {
        assert_eq!(decode("&#65;"), "A");
        assert_eq!(decode("&#x41;"), "A");
        assert_eq!(decode("&#X41;"), "A");
        assert_eq!(decode("&#2453;"), "ক"); // Bengali ka
        assert_eq!(decode("&#x0E01;"), "ก"); // Thai ko kai
    }

    #[test]
    fn malformed_passes_through() {
        assert_eq!(decode("&unknown;"), "&unknown;");
        assert_eq!(decode("&amp"), "&amp");
        assert_eq!(decode("&;"), "&;");
        assert_eq!(decode("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode("&#1114112;"), "&#1114112;"); // beyond char::MAX
        assert_eq!(decode("100% & more"), "100% & more");
    }

    #[test]
    fn surrogate_numeric_rejected() {
        assert_eq!(decode("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn multibyte_text_survives() {
        assert_eq!(decode("নমস্কার &amp; hello"), "নমস্কার & hello");
        assert_eq!(decode("日本語&#x3002;"), "日本語。");
    }

    #[test]
    fn escape_round_trip() {
        let original = "a < b & \"c\" > d";
        assert_eq!(decode(&escape_text(original)), original);
        assert_eq!(decode(&escape_attr(original)), original);
    }

    #[test]
    fn no_entities_fast_path() {
        let s = "plain text with no ampersand";
        assert_eq!(decode(s), s);
    }

    #[test]
    fn decode_into_appends_and_matches_decode() {
        let mut buf = String::from("prefix|");
        decode_into("a &amp; b &#2453;", &mut buf);
        assert_eq!(buf, "prefix|a & b ক");
        for case in ["", "plain", "&amp", "&#xZZ;", "&lt;x&gt;", "নমস্কার &copy;"] {
            let mut out = String::new();
            decode_into(case, &mut out);
            assert_eq!(out, decode(case), "{case:?}");
        }
    }
}
