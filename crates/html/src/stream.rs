//! Streaming tokenize→extract: visible text and script histogram straight
//! from tokenizer events, with **no DOM allocation**.
//!
//! The crawl path never needs the tree the parser builds — selection and
//! Kizuki consume the fused visible-text histogram, and the accessibility
//! elements are derivable from tag events alone. This module re-runs the
//! exact rules of [`crate::parser::parse`] + [`crate::visible`] over the
//! token stream instead of over a materialised [`crate::dom::Document`]:
//!
//! * the **open-element stack** is emulated with a flat name arena (void
//!   elements, implicit `<li>`/`<p>` closes, browser-style recovery for
//!   mismatched end tags — the same rules, so text parentage matches the
//!   tree builder's);
//! * a **skip-stack** depth counter tracks `script`/`style`/`head`/hidden
//!   subtrees, replacing the DOM walk's per-subtree early return;
//! * inter-block whitespace flows through the *same*
//!   [`Normaliser`]/[`ScriptHistogram`] sink the DOM walk uses, so the
//!   output is byte-identical by construction (and proptest-pinned).
//!
//! [`stream_visible_text_histogram`] is the drop-in streaming equivalent
//! of parse-then-[`visible_text_histogram`]; richer consumers (the
//! crawler's full `PageExtract` builder in `langcrux-crawl`) implement
//! [`StreamSink`] to observe element starts/ends and text runs from the
//! same single pass.
//!
//! [`Normaliser`]: crate::visible
//! [`visible_text_histogram`]: crate::visible::visible_text_histogram

use crate::dom::{Document, NodeId, NodeKind};
use crate::entities::decode_into;
use crate::parser::{closes_same, is_void_element};
use crate::tokenizer::{tokenize_into, Attribute, TokenSink};
use crate::visible::{attrs_hide, element_hidden, is_block, is_non_rendering, Normaliser};
use langcrux_lang::script::ScriptHistogram;

/// Observer of tree-level events during a streaming extraction pass.
///
/// Events mirror the final tree [`crate::parser::parse`] would build:
/// `element_start`/`element_end` arrive balanced and properly nested (void
/// and self-closing elements produce an immediate end; elements left open
/// at EOF are closed then), and `text` fires for every text node in
/// document order with its entity-decoded content and whether it is
/// visible (no `script`/`style`/`head`/hidden ancestor).
///
/// All methods default to no-ops; `()` is the unit sink behind
/// [`stream_visible_text_histogram`].
pub trait StreamSink {
    /// An element opened. `attrs` is deduplicated with decoded values;
    /// `visible` is false when the element itself or any open ancestor is
    /// non-rendering or hidden.
    fn element_start(&mut self, _name: &str, _attrs: &[Attribute], _visible: bool) {}
    /// The matching close of the innermost open element (fires for void
    /// and self-closing elements immediately after their start).
    fn element_end(&mut self, _name: &str) {}
    /// A text node's decoded content. `visible` is false inside skipped
    /// subtrees (the text still reaches the sink: accessibility text like
    /// `<title>` or labels in hidden subtrees is extracted regardless).
    fn text(&mut self, _text: &str, _visible: bool) {}
}

impl StreamSink for () {}

/// Visible text and script histogram of an HTML document, computed
/// directly from tokenizer events — no token buffer, no DOM.
///
/// Byte- and histogram-identical to parsing first:
///
/// ```
/// use langcrux_html::{parse, stream_visible_text_histogram, visible_text_histogram};
///
/// let html = "<body><p>নমস্কার</p><div hidden>skip</div><p>ok &amp; on</p></body>";
/// let streamed = stream_visible_text_histogram(html);
/// assert_eq!(streamed, visible_text_histogram(&parse(html)));
/// assert_eq!(streamed.0, "নমস্কার\nok & on");
/// ```
pub fn stream_visible_text_histogram(html: &str) -> (String, ScriptHistogram) {
    let (text, hist, ()) = stream_extract(html, ());
    (text, hist)
}

/// Run a full streaming extraction pass: tokenizer events are folded
/// through the emulated open-element stack, visible text is normalised
/// into the returned `(text, histogram)`, and every tree-level event is
/// forwarded to `sink`. Returns the sink for state recovery.
pub fn stream_extract<S: StreamSink>(html: &str, sink: S) -> (String, ScriptHistogram, S) {
    let mut walk = StreamWalk {
        stack: Vec::new(),
        names: String::new(),
        skip_depth: 0,
        normaliser: Normaliser::new(ScriptHistogram::default()),
        text_buf: String::new(),
        sink,
    };
    tokenize_into(html, &mut walk);
    // Elements still open at EOF: the tree builder leaves them on the
    // stack and the DOM walk unwinds through them; close them so sinks
    // see balanced events.
    while !walk.stack.is_empty() {
        walk.pop_one();
    }
    (walk.normaliser.out, walk.normaliser.tally, walk.sink)
}

/// Replay the tree-level events of a parsed [`Document`] into a
/// [`StreamSink`] — the DOM-side twin of [`stream_extract`]'s event
/// delivery. Element starts/ends arrive balanced in document order and
/// the `visible` flags follow the exact rules of
/// [`crate::visible::visible_text`] (non-rendering elements, `hidden`,
/// `aria-hidden="true"`, hiding inline styles), so a sink fed from a
/// `Document` observes the same region structure as one fed from the
/// tokenizer. Consumers that must produce identical derived state on
/// both extraction paths (the crawler's per-subtree language regions)
/// drive one tracker from both event sources.
pub fn walk_events<S: StreamSink>(doc: &Document, sink: &mut S) {
    walk_events_at(doc, NodeId::ROOT, 0, sink);
}

fn walk_events_at<S: StreamSink>(doc: &Document, id: NodeId, skip_depth: usize, sink: &mut S) {
    match &doc.node(id).kind {
        NodeKind::Text(t) => sink.text(t, skip_depth == 0),
        NodeKind::Comment(_) => {}
        NodeKind::Document => {
            for &c in &doc.node(id).children {
                walk_events_at(doc, c, skip_depth, sink);
            }
        }
        NodeKind::Element { name, .. } => {
            let skipped = is_non_rendering(name) || element_hidden(doc, id);
            let visible = skip_depth == 0 && !skipped;
            sink.element_start(name, doc.attrs(id), visible);
            let child_skip = skip_depth + usize::from(skipped);
            for &c in &doc.node(id).children {
                walk_events_at(doc, c, child_skip, sink);
            }
            sink.element_end(name);
        }
    }
}

/// One emulated open element. The name lives in the shared arena
/// (`StreamWalk::names`) so pushing an element allocates nothing after
/// warm-up.
struct OpenElement {
    /// Byte offset of this element's name in the arena.
    name_start: usize,
    /// Whether this element itself is non-rendering or hidden (it
    /// contributes one level to the skip-stack depth).
    skipped: bool,
    /// Whether open/close emit a block boundary (block element in a
    /// visible context at open time).
    emits_boundary: bool,
}

/// The streaming walk: a [`TokenSink`] that replays the tree builder's
/// stack discipline and the visible-text walk's skip rules over the token
/// stream.
struct StreamWalk<S> {
    stack: Vec<OpenElement>,
    /// Name arena: concatenated names of the open elements, truncated on
    /// pop. `stack[i]`'s name spans `names[stack[i].name_start ..
    /// stack[i+1].name_start]` (or to the end for the top).
    names: String,
    /// Number of open elements that are non-rendering or hidden; text is
    /// visible iff zero.
    skip_depth: usize,
    normaliser: Normaliser<ScriptHistogram>,
    /// Scratch buffer for entity decoding, reused across text runs.
    text_buf: String,
    sink: S,
}

impl<S: StreamSink> StreamWalk<S> {
    fn name_of(&self, idx: usize) -> &str {
        let start = self.stack[idx].name_start;
        let end = self
            .stack
            .get(idx + 1)
            .map_or(self.names.len(), |e| e.name_start);
        &self.names[start..end]
    }

    fn top_name(&self) -> Option<&str> {
        (!self.stack.is_empty()).then(|| self.name_of(self.stack.len() - 1))
    }

    /// Pop the innermost open element, emitting its closing boundary and
    /// sink event — the streaming equivalent of the DOM walk returning
    /// from a subtree.
    fn pop_one(&mut self) {
        let entry = self.stack.pop().expect("pop on empty stack");
        if entry.skipped {
            self.skip_depth -= 1;
        }
        if entry.emits_boundary {
            self.normaliser.block_boundary();
        }
        let name = &self.names[entry.name_start..];
        self.sink.element_end(name);
        self.names.truncate(entry.name_start);
    }
}

impl<S: StreamSink> TokenSink for StreamWalk<S> {
    fn start_tag(&mut self, name: &str, attrs: &mut Vec<Attribute>, self_closing: bool) {
        // Implicit close: "<li>a<li>b" closes the first li — but only when
        // the match is the innermost open element (the tree builder's
        // `pos == stack.len() - 1` rule: don't close a <p> through a
        // nested <div>).
        if closes_same(name) && self.top_name() == Some(name) {
            self.pop_one();
        }
        let skipped = is_non_rendering(name) || attrs_hide(attrs);
        let visible = self.skip_depth == 0 && !skipped;
        let emits_boundary = visible && is_block(name);
        if emits_boundary {
            self.normaliser.block_boundary();
        }
        self.sink.element_start(name, attrs, visible);
        if self_closing || is_void_element(name) {
            // No children: the DOM walk opens and immediately closes this
            // subtree.
            if emits_boundary {
                self.normaliser.block_boundary();
            }
            self.sink.element_end(name);
        } else {
            let name_start = self.names.len();
            self.names.push_str(name);
            self.stack.push(OpenElement {
                name_start,
                skipped,
                emits_boundary,
            });
            if skipped {
                self.skip_depth += 1;
            }
        }
    }

    fn end_tag(&mut self, name: &str) {
        // Pop to the nearest matching open element; unmatched end tags are
        // dropped (browser behaviour, mirroring the tree builder).
        if let Some(pos) = (0..self.stack.len()).rposition(|i| self.name_of(i) == name) {
            while self.stack.len() > pos {
                self.pop_one();
            }
        }
    }

    fn text(&mut self, raw: &str, decode_entities: bool) {
        let decoded: &str = if decode_entities && raw.contains('&') {
            self.text_buf.clear();
            decode_into(raw, &mut self.text_buf);
            &self.text_buf
        } else {
            // No entities (or a raw-text body): the decoded text is the
            // input slice, unchanged.
            raw
        };
        let visible = self.skip_depth == 0;
        if visible {
            self.normaliser.push_text(decoded);
        }
        self.sink.text(decoded, visible);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::visible::visible_text_histogram;

    /// The invariant the whole module exists to uphold.
    fn assert_stream_matches_dom(html: &str) {
        let dom = visible_text_histogram(&parse(html));
        let streamed = stream_visible_text_histogram(html);
        assert_eq!(streamed.0, dom.0, "text diverged on {html:?}");
        assert_eq!(streamed.1, dom.1, "histogram diverged on {html:?}");
    }

    #[test]
    fn matches_dom_on_simple_pages() {
        for html in [
            "",
            "plain text only",
            "<html><body><p>Hello</p><p>World</p></body></html>",
            "<p>a   b\n\t c</p>",
            "<p>he<b>ll</b>o</p>",
            "<ul><li>one<li>two<li>three</ul>",
            "<p>নমস্কার বিশ্ব</p><p>हिन्दी</p><p>สวัสดี</p>",
        ] {
            assert_stream_matches_dom(html);
        }
    }

    #[test]
    fn matches_dom_on_skip_subtrees() {
        for html in [
            "<head><title>T</title><style>.x{}</style></head><body><p>only this</p></body>",
            "<script>var x = '<p>not text</p>';</script>after",
            "<div hidden><p>secret</p></div><p>shown</p>",
            r#"<span aria-hidden="true">x</span><span aria-hidden="false">y</span>"#,
            r#"<div style="display: none">a</div><div style="color:red">b</div>"#,
            r#"<div style="VISIBILITY:HIDDEN">a</div>ok"#,
            "<noscript><p>fallback</p></noscript>visible",
            "<div hidden><div><p>deep</p></div></div>tail",
        ] {
            assert_stream_matches_dom(html);
        }
    }

    #[test]
    fn matches_dom_on_broken_markup() {
        for html in [
            "<div><span>text</div></span>",
            "<p>outer<span><p>inner</span></p>",
            "<b>unclosed everywhere",
            "<div class=\"x",
            "</p>leading end tag",
            "<a></b></c><d>",
            "a < b and c > d",
            "<p>first<p>second<div><p>third",
            "<table><tr><td>a<td>b<tr><td>c</table>",
        ] {
            assert_stream_matches_dom(html);
        }
    }

    #[test]
    fn matches_dom_on_entities_and_raw_text() {
        for html in [
            "a &amp; b &#2453; &#x0E01; &unknown; &amp",
            "<title>News &amp; Weather</title><body>x</body>",
            "<textarea>5 &lt; 7</textarea>",
            "<script>a &amp; b stays raw</script><p>c &amp; d</p>",
        ] {
            assert_stream_matches_dom(html);
        }
    }

    #[test]
    fn void_and_self_closing_blocks() {
        for html in [
            "a<br>b",
            "a<br/>b",
            "a<hr hidden>b",
            "<img src=x alt=y>tail",
            "<div/>not really self-closing in html but ours honours it<p>x</p>",
        ] {
            assert_stream_matches_dom(html);
        }
    }

    #[test]
    fn sink_sees_balanced_tree_events() {
        #[derive(Default)]
        struct Trace {
            events: Vec<String>,
            depth: isize,
            min_depth: isize,
        }
        impl StreamSink for Trace {
            fn element_start(&mut self, name: &str, attrs: &[Attribute], visible: bool) {
                self.depth += 1;
                self.events
                    .push(format!("+{name}/{}/{visible}", attrs.len()));
            }
            fn element_end(&mut self, name: &str) {
                self.depth -= 1;
                self.min_depth = self.min_depth.min(self.depth);
                self.events.push(format!("-{name}"));
            }
            fn text(&mut self, text: &str, visible: bool) {
                self.events.push(format!("t:{text}/{visible}"));
            }
        }
        let (_, _, trace) = stream_extract(
            "<div hidden><img src=x>a</div><li>1<li>2<p>open at eof",
            Trace::default(),
        );
        assert_eq!(trace.depth, 0, "starts and ends must balance");
        assert!(trace.min_depth >= 0, "an end fired before its start");
        assert_eq!(
            trace.events,
            vec![
                "+div/1/false",
                "+img/1/false",
                "-img",
                "t:a/false",
                "-div",
                "+li/0/true",
                "t:1/true",
                "-li",
                "+li/0/true",
                "t:2/true",
                // <p> is not a same-name implicit close for <li>, so it
                // nests inside; EOF unwinds innermost-first.
                "+p/0/true",
                "t:open at eof/true",
                "-p",
                "-li",
            ]
        );
    }

    #[test]
    fn dom_walk_events_match_streaming_events() {
        // The contract `walk_events` exists for: a sink fed from the DOM
        // observes the same element structure, attributes-at-start, and
        // visible text runs as one fed from the tokenizer. Adjacent text
        // events may be split differently between the two paths, so text
        // is compared as merged (content, visible) runs.
        #[derive(Default, PartialEq, Debug)]
        struct Events(Vec<String>);
        impl StreamSink for Events {
            fn element_start(&mut self, name: &str, attrs: &[Attribute], visible: bool) {
                let mut attrs: Vec<String> = attrs
                    .iter()
                    .map(|a| format!("{}={}", a.name, a.value))
                    .collect();
                attrs.sort();
                self.0
                    .push(format!("+{name}/{}/{visible}", attrs.join(";")));
            }
            fn element_end(&mut self, name: &str) {
                self.0.push(format!("-{name}"));
            }
            fn text(&mut self, text: &str, visible: bool) {
                let tagged = format!("t{visible}:");
                match self.0.last_mut() {
                    Some(last) if last.starts_with(&tagged) => last.push_str(text),
                    _ => self.0.push(format!("{tagged}{text}")),
                }
            }
        }
        for html in [
            "<html lang=bn><body><nav>menu</nav><main lang=en>text</main></body></html>",
            "<div hidden><p>secret</p></div><p>shown</p>",
            "<ul><li>one<li>two</ul>",
            "<script>x</script><title>T</title>tail",
            "<p>a &amp; b</p><img src=x alt=y>",
            "<div><span>text</div></span><b>unclosed",
        ] {
            let (_, _, streamed) = stream_extract(html, Events::default());
            let mut dom_events = Events::default();
            walk_events(&parse(html), &mut dom_events);
            assert_eq!(streamed, dom_events, "events diverged on {html:?}");
        }
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let mut s = String::new();
        for _ in 0..3000 {
            s.push_str("<div>");
        }
        s.push_str("deep");
        assert_stream_matches_dom(&s);
    }
}
