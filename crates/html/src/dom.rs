//! Arena-based DOM.
//!
//! Nodes live in a flat `Vec` and refer to each other by [`NodeId`]
//! indices — no `Rc<RefCell<…>>` cycles, cheap traversal, and the whole
//! document drops in one free. The shape mirrors what the measurement
//! pipeline needs: elements with attributes, text, and parent/child links.

use crate::tokenizer::Attribute;
use serde::{Deserialize, Serialize};

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The document root node id.
    pub const ROOT: NodeId = NodeId(0);
}

/// Node payload.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The synthetic root.
    Document,
    Element {
        name: String,
        attrs: Vec<Attribute>,
    },
    Text(String),
    Comment(String),
}

/// One DOM node.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
}

/// A parsed HTML document.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    /// Doctype string, when present (e.g. `"html"`).
    pub doctype: Option<String>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// An empty document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
            doctype: None,
        }
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document has no content nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Append a new node under `parent`, returning its id.
    pub fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Element tag name, or `None` for non-element nodes.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }

    /// Attribute value by name (case-sensitive name; names are lower-cased
    /// at parse time). `None` when the node is not an element or lacks the
    /// attribute; `Some("")` for bare boolean attributes.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// All attributes of an element (empty slice for non-elements).
    pub fn attrs(&self, id: NodeId) -> &[Attribute] {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Depth-first pre-order traversal of the whole document.
    pub fn descendants(&self, root: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![root],
            skip_root: Some(root),
        }
    }

    /// All element ids in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(NodeId::ROOT)
            .filter(|&id| matches!(self.node(id).kind, NodeKind::Element { .. }))
    }

    /// Elements with the given tag name, in document order.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.elements()
            .filter(move |&id| self.tag_name(id) == Some(name))
    }

    /// Concatenated text content of a subtree (all Text descendants,
    /// unconditionally — visibility-aware extraction lives in
    /// [`crate::visible`]).
    pub fn text_content(&self, root: NodeId) -> String {
        let mut out = String::new();
        let include_root = matches!(self.node(root).kind, NodeKind::Text(_));
        if include_root {
            if let NodeKind::Text(t) = &self.node(root).kind {
                out.push_str(t);
            }
        }
        for id in self.descendants(root) {
            if let NodeKind::Text(t) = &self.node(id).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// The nearest ancestor element of `id` (skipping the root), if any.
    pub fn parent_element(&self, id: NodeId) -> Option<NodeId> {
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            if matches!(self.node(p).kind, NodeKind::Element { .. }) {
                return Some(p);
            }
            cur = self.node(p).parent;
        }
        None
    }

    /// Iterate the ancestor chain of `id` (excluding `id`, including root).
    pub fn ancestors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.node(id).parent;
        std::iter::from_fn(move || {
            let out = cur?;
            cur = self.node(out).parent;
            Some(out)
        })
    }
}

/// Pre-order DFS iterator (excludes the starting node).
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
    skip_root: Option<NodeId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let id = self.stack.pop()?;
            // Children pushed in reverse so they pop in document order.
            let children = &self.doc.node(id).children;
            for &c in children.iter().rev() {
                self.stack.push(c);
            }
            if self.skip_root.take() == Some(id) {
                continue;
            }
            return Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(name: &str) -> NodeKind {
        NodeKind::Element {
            name: name.to_string(),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn build_and_traverse() {
        let mut doc = Document::new();
        let html = doc.append(NodeId::ROOT, elem("html"));
        let body = doc.append(html, elem("body"));
        let p1 = doc.append(body, elem("p"));
        doc.append(p1, NodeKind::Text("one".into()));
        let p2 = doc.append(body, elem("p"));
        doc.append(p2, NodeKind::Text("two".into()));

        let tags: Vec<&str> = doc.elements().filter_map(|id| doc.tag_name(id)).collect();
        assert_eq!(tags, vec!["html", "body", "p", "p"]);
        assert_eq!(doc.text_content(body), "onetwo");
        assert_eq!(doc.elements_named("p").count(), 2);
    }

    #[test]
    fn attr_lookup() {
        let mut doc = Document::new();
        let img = doc.append(
            NodeId::ROOT,
            NodeKind::Element {
                name: "img".into(),
                attrs: vec![
                    Attribute {
                        name: "alt".into(),
                        value: "a cat".into(),
                    },
                    Attribute {
                        name: "hidden".into(),
                        value: String::new(),
                    },
                ],
            },
        );
        assert_eq!(doc.attr(img, "alt"), Some("a cat"));
        assert_eq!(doc.attr(img, "hidden"), Some(""));
        assert_eq!(doc.attr(img, "src"), None);
        assert_eq!(doc.attr(NodeId::ROOT, "alt"), None);
    }

    #[test]
    fn parent_and_ancestors() {
        let mut doc = Document::new();
        let html = doc.append(NodeId::ROOT, elem("html"));
        let body = doc.append(html, elem("body"));
        let text = doc.append(body, NodeKind::Text("x".into()));
        assert_eq!(doc.parent_element(text), Some(body));
        let chain: Vec<NodeId> = doc.ancestors(text).collect();
        assert_eq!(chain, vec![body, html, NodeId::ROOT]);
    }

    #[test]
    fn document_order_traversal() {
        let mut doc = Document::new();
        let a = doc.append(NodeId::ROOT, elem("a"));
        let b = doc.append(a, elem("b"));
        doc.append(b, elem("c"));
        doc.append(a, elem("d"));
        let order: Vec<&str> = doc
            .descendants(NodeId::ROOT)
            .filter_map(|id| doc.tag_name(id))
            .collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn empty_doc() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.elements().count(), 0);
        assert_eq!(doc.text_content(NodeId::ROOT), "");
    }
}
