//! Property-based tests for the HTML engine.
//!
//! Invariants:
//! 1. The tokenizer and parser never panic on arbitrary input.
//! 2. Builder output re-parses to the same text and attributes
//!    (plant→recover round trip).
//! 3. Entity encode/decode round-trips arbitrary strings.
//! 4. Visible text of built pages never contains markup characters.
//! 5. The streaming tokenize→extract path is byte- and
//!    histogram-identical to parse-then-walk on arbitrary markup.

use langcrux_html::entities::{decode, escape_attr, escape_text};
use langcrux_html::{
    parse, serialize, stream_visible_text_histogram, visible_text, visible_text_histogram,
    HtmlBuilder,
};
use langcrux_lang::script::ScriptHistogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn parser_never_panics(input in ".{0,400}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_taggy(input in "(<[a-z ='\"/>]{0,10}|[a-z]{0,5}|&[a-z#0-9]{0,8};?){0,40}") {
        let _ = parse(&input);
    }

    #[test]
    fn entity_round_trip_text(s in "\\PC{0,200}") {
        prop_assert_eq!(decode(&escape_text(&s)), s.clone());
        prop_assert_eq!(decode(&escape_attr(&s)), s);
    }

    #[test]
    fn builder_round_trips_text(text in "[^\\x00-\\x1F<>&]{1,80}") {
        let mut b = HtmlBuilder::document();
        b.open("html", &[]).open("body", &[]);
        b.leaf("p", &[], &text);
        let html = b.finish();
        let doc = parse(&html);
        let collapsed: String = text.split_whitespace().collect::<Vec<_>>().join(" ");
        prop_assert_eq!(visible_text(&doc), collapsed);
    }

    #[test]
    fn builder_round_trips_attr(value in "\\PC{0,80}") {
        let mut b = HtmlBuilder::fragment();
        b.void("img", &[("alt", Some(value.as_str()))]);
        let html = b.finish();
        let doc = parse(&html);
        let img = doc.elements_named("img").next().unwrap();
        prop_assert_eq!(doc.attr(img, "alt"), Some(value.as_str()));
    }

    #[test]
    fn visible_text_has_no_markup(texts in prop::collection::vec("[a-zA-Z \\u{995}\\u{E01}]{0,30}", 1..6)) {
        let mut b = HtmlBuilder::document();
        b.open("html", &[]).open("body", &[]);
        for t in &texts {
            b.leaf("div", &[], t);
        }
        let doc = parse(&b.finish());
        let vis = visible_text(&doc);
        prop_assert!(!vis.contains('<') && !vis.contains('>'));
    }

    #[test]
    fn serialize_reaches_fixed_point(input in "(<[a-z]{1,6}( [a-z]{1,4}=\"[a-z0-9 ]{0,8}\")?>|</[a-z]{1,6}>|[a-z\u{995}\u{E01} ]{0,12}){0,24}") {
        // parse → serialize → parse → serialize must be stable, and the
        // visible text must survive the round trip.
        let once = parse(&input);
        let emitted = serialize(&once);
        let twice = parse(&emitted);
        prop_assert_eq!(serialize(&twice), emitted);
        prop_assert_eq!(visible_text(&twice), visible_text(&once));
    }

    #[test]
    fn tokenizer_text_reassembles(words in prop::collection::vec("[a-z]{1,8}", 1..8)) {
        // A document made only of text must reproduce that text exactly.
        let text = words.join(" ");
        let doc = parse(&text);
        prop_assert_eq!(visible_text(&doc), text);
    }

    #[test]
    fn fused_histogram_equals_rescan_on_built_pages(
        texts in prop::collection::vec("[a-zA-Z0-9 \\u{995}\\u{E01}\\u{623}\\u{430}\\u{4E2D}]{0,40}", 1..8),
        hidden in prop::collection::vec("[a-z\\u{995} ]{0,20}", 0..3),
    ) {
        // The histogram computed during the single extraction walk must be
        // identical to re-scanning the extracted visible text — on pages
        // with multilingual content, hidden subtrees, and block structure.
        let mut b = HtmlBuilder::document();
        b.open("html", &[]).open("body", &[]);
        for (i, t) in texts.iter().enumerate() {
            if i % 2 == 0 {
                b.leaf("p", &[], t);
            } else {
                b.leaf("span", &[], t);
            }
        }
        for h in &hidden {
            b.leaf("div", &[("hidden", None)], h);
        }
        let doc = parse(&b.finish());
        let (text, hist) = visible_text_histogram(&doc);
        prop_assert_eq!(&text, &visible_text(&doc));
        prop_assert_eq!(hist, ScriptHistogram::of(&text));
    }

    #[test]
    fn fused_histogram_equals_rescan_on_arbitrary_markup(
        input in "(<[a-z]{1,6}( [a-z]{1,4}=\"[a-z0-9 ]{0,8}\")?>|</[a-z]{1,6}>|[a-z\\u{995}\\u{E01}\\u{4E2D} ]{0,12}){0,24}",
    ) {
        // Same invariant on raw, possibly-malformed markup.
        let doc = parse(&input);
        let (text, hist) = visible_text_histogram(&doc);
        prop_assert_eq!(&text, &visible_text(&doc));
        prop_assert_eq!(hist, ScriptHistogram::of(&text));
    }

    #[test]
    fn streaming_extract_matches_dom_on_arbitrary_markup(
        input in "(<[a-z]{1,6}( (hidden|style=\"display:none\"|[a-z]{1,4}=\"[a-z0-9 ]{0,8}\"))?/?>|</[a-z]{1,6}>|&[a-z#0-9]{0,6};?|[a-z\\u{995}\\u{E01}\\u{4E2D} ]{0,12}){0,24}",
    ) {
        // The streaming path must be byte- and histogram-identical to the
        // DOM path on malformed markup, hiding attributes, self-closing
        // tags, and stray/partial entities.
        let (dom_text, dom_hist) = visible_text_histogram(&parse(&input));
        let (stream_text, stream_hist) = stream_visible_text_histogram(&input);
        prop_assert_eq!(stream_text, dom_text);
        prop_assert_eq!(stream_hist, dom_hist);
    }

    #[test]
    fn streaming_extract_matches_dom_on_structured_pages(
        texts in prop::collection::vec("[a-zA-Z0-9 \\u{995}\\u{E01}\\u{623}\\u{430}\\u{4E2D}]{0,30}", 1..6),
        hidden in prop::collection::vec("[a-z\\u{995} ]{0,16}", 0..3),
        title in "[a-z\\u{E01} ]{0,16}",
    ) {
        // Same invariant on well-formed built pages with head metadata,
        // raw-text elements, and hidden subtrees.
        let mut b = HtmlBuilder::document();
        b.open("html", &[]).open("head", &[]);
        b.leaf("title", &[], &title);
        b.close(); // head
        b.open("body", &[]);
        for (i, t) in texts.iter().enumerate() {
            if i % 2 == 0 {
                b.leaf("p", &[], t);
            } else {
                b.leaf("span", &[], t);
            }
        }
        for h in &hidden {
            b.leaf("div", &[("hidden", None)], h);
        }
        let html = b.finish();
        let (dom_text, dom_hist) = visible_text_histogram(&parse(&html));
        let (stream_text, stream_hist) = stream_visible_text_histogram(&html);
        prop_assert_eq!(stream_text, dom_text);
        prop_assert_eq!(stream_hist, dom_hist);
    }
}
