//! Translation-gap detection: which subtrees of a page disagree with its
//! language.
//!
//! The page-level script histogram answers "how localised is this page
//! overall?", but partial localisation hides inside the average: a site
//! can translate every paragraph of body copy and still ship English
//! navigation chrome, mistagged `lang` subtrees, or untranslated fallback
//! blocks. This module consumes the per-region histograms produced by
//! `langcrux_crawl::regions` and classifies each region against the
//! language context it *claims*:
//!
//! * [`GapKind::UntranslatedChrome`] — a `nav`/`header`/`footer` landmark
//!   whose text is written in a script foreign to the page's own body
//!   evidence. The classic partial localisation: translated articles
//!   wrapped in English menus.
//! * [`GapKind::LangAttrMismatch`] — a subtree with an explicit `lang`
//!   attribute whose dominant script is not an evidence script of the
//!   tagged language (e.g. `lang=bn` around English, or `lang=hi` around
//!   anything non-Devanagari). A subtree *correctly* tagged for its
//!   foreign content (`lang=en` around English) is not a gap — that is
//!   localisation done right, and assistive tech can switch engines.
//! * [`GapKind::FallbackText`] — any other region (`aside`, `main`, …)
//!   dominated by a script foreign to the page: fallback English strings
//!   embedded in a non-Latin page without any marking.
//!
//! Detection is evidence-driven and conservative. A region is only
//! flagged when it carries at least [`MIN_REGION_EVIDENCE`] distinguishing
//! characters *and* at least 90% of its distinguishing characters fall
//! outside the expected script set — naturally code-mixed text (a Bengali
//! nav with one English product name) never trips it. Expected scripts
//! come from the declared language when the declaration is corroborated
//! by the body evidence, and otherwise from the *script family* of the
//! dominant body script, so multi-script languages (Japanese) never
//! self-report their own kana/kanji variation as a gap.

use langcrux_crawl::{LangRegion, PageExtract};
use langcrux_lang::script::{Script, ScriptHistogram};
use langcrux_lang::Language;
use serde::{Deserialize, Serialize};

/// Minimum distinguishing characters a region must carry before it can be
/// flagged. Below this there is not enough evidence to call a script
/// "dominant" rather than incidental (icon labels, numerals' neighbours).
pub const MIN_REGION_EVIDENCE: usize = 16;

/// A flagged region must have at least this share (in tenths) of its
/// distinguishing characters outside the expected script set: 9/10 = 90%.
const FOREIGN_DOMINANCE_TENTHS: usize = 9;

/// Why a region counts as a translation gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapKind {
    /// Navigation/header/footer chrome in a script foreign to the page.
    UntranslatedChrome,
    /// Explicit `lang` attribute contradicted by the subtree's content.
    LangAttrMismatch,
    /// Unmarked foreign-script text outside the chrome landmarks.
    FallbackText,
}

impl GapKind {
    /// Stable lowercase label used in JSON payloads and metrics.
    pub fn label(self) -> &'static str {
        match self {
            GapKind::UntranslatedChrome => "chrome",
            GapKind::LangAttrMismatch => "lang-attr",
            GapKind::FallbackText => "fallback",
        }
    }
}

/// One region that disagrees with its declared/inherited language context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GapRegion {
    /// Structural role of the region (`"nav"`, `"footer"`, `"section"`, …).
    pub role: String,
    /// Effective declared language of the region (primary subtag), if any.
    pub lang: Option<String>,
    /// Classification of the disagreement.
    pub kind: GapKind,
    /// Script the region's context led us to expect (primary script of the
    /// tagged language for [`GapKind::LangAttrMismatch`], the page's
    /// dominant body script otherwise). `None` when no single script could
    /// be named.
    pub expected: Option<Script>,
    /// Script actually dominating the region's text.
    pub found: Script,
    /// Distinguishing characters in the region outside the expected set —
    /// roughly "how much text a reader hits in the wrong language".
    pub foreign_chars: usize,
}

/// Per-page translation-gap verdict.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GapReport {
    /// Dominant distinguishing script of the page's visible text, the
    /// reference point for inherited-context regions.
    pub page_script: Option<Script>,
    /// Flagged regions in document order.
    pub regions: Vec<GapRegion>,
    /// Total foreign distinguishing characters across flagged regions.
    pub foreign_chars: usize,
    /// Total distinguishing characters on the page (all visible text).
    pub total_chars: usize,
}

impl GapReport {
    /// True when no region disagrees with its language context.
    pub fn is_clean(&self) -> bool {
        self.regions.is_empty()
    }

    /// Share of the page's distinguishing characters sitting inside gap
    /// regions, in `[0, 1]`; `0.0` on evidence-free pages.
    pub fn foreign_share(&self) -> f64 {
        if self.total_chars == 0 {
            0.0
        } else {
            self.foreign_chars as f64 / self.total_chars as f64
        }
    }
}

/// Distinguishing characters in `hist` whose script is outside `expected`.
fn foreign_count(hist: &ScriptHistogram, expected: &[Script]) -> usize {
    hist.distinguishing_total() - expected.iter().map(|&s| hist.count(s)).sum::<usize>()
}

/// All scripts that co-occur with `script` in some pool language — the
/// "script family". For most scripts this is the singleton set; for the
/// Japanese trio it is `{Hiragana, Katakana, Han}` via `Japanese`, which
/// keeps an all-Katakana nav on a kanji-heavy page from reading as foreign.
fn script_family(script: Script) -> Vec<Script> {
    let mut family = vec![script];
    for lang in std::iter::once(Language::English).chain(Language::CANDIDATE_POOL) {
        let ev = lang.evidence_scripts();
        if ev.contains(&script) {
            for &s in ev {
                if !family.contains(&s) {
                    family.push(s);
                }
            }
        }
    }
    family
}

/// Scripts a region with *inherited* language context is expected to use.
///
/// When the page declares a language and the body evidence corroborates it
/// (the dominant script is one of the language's evidence scripts), the
/// declaration wins: a `zh` page expects Han only, so Hiragana chrome on
/// it is a gap even though both are "CJK". Without a corroborated
/// declaration we fall back to the dominant script's family.
fn page_expected(declared: Option<Language>, page_script: Script) -> Vec<Script> {
    match declared {
        Some(lang) if lang.evidence_scripts().contains(&page_script) => {
            lang.evidence_scripts().to_vec()
        }
        _ => script_family(page_script),
    }
}

/// Classify one region; `None` when it agrees with its context.
fn classify(
    region: &LangRegion,
    declared: Option<Language>,
    page_script: Option<Script>,
) -> Option<GapRegion> {
    let evidence = region.hist.distinguishing_total();
    if evidence < MIN_REGION_EVIDENCE {
        return None;
    }
    let found = region.hist.dominant()?;
    let (kind, expected) = if region.explicit {
        // The region claims a language outright; measure against it.
        let lang = Language::from_primary_subtag(region.lang.as_deref()?)?;
        (GapKind::LangAttrMismatch, lang.evidence_scripts().to_vec())
    } else {
        let page_script = page_script?;
        let kind = match region.role.as_str() {
            "nav" | "header" | "footer" => GapKind::UntranslatedChrome,
            _ => GapKind::FallbackText,
        };
        (kind, page_expected(declared, page_script))
    };
    let foreign = foreign_count(&region.hist, &expected);
    if foreign * 10 < evidence * FOREIGN_DOMINANCE_TENTHS {
        return None;
    }
    Some(GapRegion {
        role: region.role.clone(),
        lang: region.lang.clone(),
        kind,
        expected: if region.explicit {
            region
                .lang
                .as_deref()
                .and_then(Language::from_primary_subtag)
                .map(|l| l.primary_script())
        } else {
            page_script
        },
        found,
        foreign_chars: foreign,
    })
}

/// Build the translation-gap report for an extracted page.
///
/// Pure in the extract: same [`PageExtract`] in, byte-identical report
/// out, on both extraction paths (the regions themselves are pinned equal
/// across the tokenizer walk and the DOM oracle).
pub fn gap_report(extract: &PageExtract) -> GapReport {
    let page_script = extract.visible_hist.dominant();
    let declared = extract
        .declared_lang
        .as_deref()
        .and_then(Language::from_primary_subtag);
    let mut report = GapReport {
        page_script,
        total_chars: extract.visible_hist.distinguishing_total(),
        ..GapReport::default()
    };
    for region in &extract.regions {
        // The page region *is* the reference; it cannot gap against itself.
        if region.role == "page" {
            continue;
        }
        if let Some(gap) = classify(region, declared, page_script) {
            report.foreign_chars += gap.foreign_chars;
            report.regions.push(gap);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_crawl::extract_streaming;

    const BN_BODY: &str = "বাংলাদেশের সংবাদপত্রে প্রতিদিন নতুন খবর প্রকাশিত হয় এবং পাঠকেরা তা পড়েন। \
        দেশের বিভিন্ন অঞ্চল থেকে সংবাদদাতারা প্রতিবেদন পাঠান এবং সম্পাদকেরা তা যাচাই করে প্রকাশ করেন। \
        পাঠকদের মতামত এবং চিঠিপত্র প্রতি সপ্তাহে আলাদা পাতায় ছাপা হয়";

    fn report_for(html: &str) -> GapReport {
        gap_report(&extract_streaming(html))
    }

    #[test]
    fn fully_localised_page_is_clean() {
        let html = format!(
            "<html lang=bn><body><nav>প্রচ্ছদ সংবাদ খেলা বিনোদন মতামত আরও</nav>\
             <main><p>{BN_BODY}</p></main>\
             <footer>যোগাযোগ গোপনীয়তা শর্তাবলী সাহায্য</footer></body></html>"
        );
        let report = report_for(&html);
        assert!(report.is_clean(), "unexpected gaps: {:?}", report.regions);
        assert_eq!(report.page_script, Some(Script::Bengali));
        assert_eq!(report.foreign_chars, 0);
    }

    #[test]
    fn english_chrome_on_bengali_page_is_a_chrome_gap() {
        let html = format!(
            "<html lang=bn><body><nav>Home News Sports Entertainment Opinion More</nav>\
             <main><p>{BN_BODY}</p></main>\
             <footer>Contact Privacy Terms Help Careers</footer></body></html>"
        );
        let report = report_for(&html);
        assert_eq!(report.regions.len(), 2);
        for gap in &report.regions {
            assert_eq!(gap.kind, GapKind::UntranslatedChrome);
            assert_eq!(gap.found, Script::Latin);
            assert_eq!(gap.expected, Some(Script::Bengali));
        }
        assert_eq!(report.regions[0].role, "nav");
        assert_eq!(report.regions[1].role, "footer");
        assert!(report.foreign_chars >= 2 * MIN_REGION_EVIDENCE);
        assert!(report.foreign_share() > 0.0);
    }

    #[test]
    fn mistagged_subtree_is_a_lang_attr_gap() {
        // Tagged bn, content English: the tag itself is contradicted even
        // though it matches the page language.
        let html = format!(
            "<html lang=bn><body><main><p>{BN_BODY}</p>\
             <section lang=bn>This content was never actually translated</section>\
             </main></body></html>"
        );
        let report = report_for(&html);
        assert_eq!(report.regions.len(), 1);
        let gap = &report.regions[0];
        assert_eq!(gap.kind, GapKind::LangAttrMismatch);
        assert_eq!(gap.role, "section");
        assert_eq!(gap.lang.as_deref(), Some("bn"));
        assert_eq!(gap.expected, Some(Script::Bengali));
        assert_eq!(gap.found, Script::Latin);
    }

    #[test]
    fn correctly_tagged_foreign_subtree_is_not_a_gap() {
        // lang=en around English is localisation done *right*.
        let html = format!(
            "<html lang=bn><body><main><p>{BN_BODY}</p>\
             <section lang=en>An intentionally English announcement block</section>\
             </main></body></html>"
        );
        let report = report_for(&html);
        assert!(report.is_clean(), "unexpected gaps: {:?}", report.regions);
    }

    #[test]
    fn unmarked_foreign_aside_is_a_fallback_gap() {
        let html = format!(
            "<html lang=bn><body><main><p>{BN_BODY}</p></main>\
             <aside>Related articles you might also like to read</aside></body></html>"
        );
        let report = report_for(&html);
        assert_eq!(report.regions.len(), 1);
        assert_eq!(report.regions[0].kind, GapKind::FallbackText);
        assert_eq!(report.regions[0].role, "aside");
    }

    #[test]
    fn code_mixing_below_dominance_threshold_is_tolerated() {
        // A Bengali nav with one English product name: far below 90%
        // foreign share, so no gap.
        let html = format!(
            "<html lang=bn><body><nav>প্রচ্ছদ সংবাদ খেলা বিনোদন মতামত Apps</nav>\
             <main><p>{BN_BODY}</p></main></body></html>"
        );
        let report = report_for(&html);
        assert!(report.is_clean(), "unexpected gaps: {:?}", report.regions);
    }

    #[test]
    fn tiny_regions_are_below_the_evidence_floor() {
        let html = format!(
            "<html lang=bn><body><nav>Home</nav>\
             <main><p>{BN_BODY}</p></main></body></html>"
        );
        let report = report_for(&html);
        assert!(report.is_clean(), "unexpected gaps: {:?}", report.regions);
    }

    #[test]
    fn japanese_kana_variation_is_not_a_gap() {
        // All-Katakana nav on a Han-heavy Japanese page: same language,
        // different scripts. The corroborated declaration (ja) expands the
        // expected set to the full Japanese trio.
        let html = "<html lang=ja><body>\
             <nav>ニュース スポーツ エンタメ テクノロジー ビジネス</nav>\
             <main><p>日本の新聞は毎日新しい記事を掲載しており、読者はそれを読んでいます。</p></main>\
             </body></html>";
        let report = report_for(html);
        assert!(report.is_clean(), "unexpected gaps: {:?}", report.regions);
    }

    #[test]
    fn hiragana_chrome_on_declared_chinese_page_is_a_gap() {
        // Corroborated zh declaration narrows the expected set to Han, so
        // kana chrome is foreign even inside the CJK family.
        let html = "<html lang=zh-CN><body>\
             <nav>にほんごのなびげーしょんめにゅーです</nav>\
             <main><p>中国的报纸每天都会刊登新的文章供读者阅读学习参考使用</p></main>\
             </body></html>";
        let report = report_for(html);
        assert_eq!(report.regions.len(), 1);
        assert_eq!(report.regions[0].kind, GapKind::UntranslatedChrome);
        assert_eq!(report.regions[0].found, Script::Hiragana);
    }

    #[test]
    fn undeclared_page_falls_back_to_script_family() {
        // No lang attribute anywhere: the dominant script's family is the
        // reference, so English chrome still reads as foreign.
        let html = format!(
            "<html><body><nav>Home News Sports Entertainment Opinion More</nav>\
             <main><p>{BN_BODY}</p></main></body></html>"
        );
        let report = report_for(&html);
        assert_eq!(report.regions.len(), 1);
        assert_eq!(report.regions[0].kind, GapKind::UntranslatedChrome);
    }

    #[test]
    fn evidence_free_page_reports_nothing() {
        let report = report_for("<html lang=bn><body><p>12345 67890</p></body></html>");
        assert!(report.is_clean());
        assert_eq!(report.page_script, None);
        assert_eq!(report.total_chars, 0);
    }

    #[test]
    fn report_serialises_with_stable_labels() {
        let html = format!(
            "<html lang=bn><body><nav>Home News Sports Entertainment Opinion</nav>\
             <main><p>{BN_BODY}</p></main></body></html>"
        );
        let report = report_for(&html);
        let json = serde_json::to_string(&report).expect("serialise");
        let back: GapReport = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, report);
        assert_eq!(GapKind::UntranslatedChrome.label(), "chrome");
        assert_eq!(GapKind::LangAttrMismatch.label(), "lang-attr");
        assert_eq!(GapKind::FallbackText.label(), "fallback");
    }
}
