//! Audit rule semantics.
//!
//! Each of the twelve language-sensitive audits reproduces the *observed*
//! Lighthouse behaviour that the paper measured with isolated test pages
//! (Appendix D, Table 3) — including the quirks:
//!
//! | rule              | missing | empty | wrong language |
//! |-------------------|---------|-------|----------------|
//! | button-name       |  fail   | pass  | pass |
//! | document-title    |  pass   | fail  | pass |
//! | frame-title       |  fail   | fail  | pass |
//! | image-alt         |  fail   | pass  | pass |
//! | input-button-name |  pass   | fail  | pass |
//! | input-image-alt   |  fail   | fail  | pass |
//! | label             |  pass   | pass  | pass |
//! | link-name         |  fail   | fail  | pass |
//! | object-alt        |  fail   | fail  | pass |
//! | select-name       |  fail   | fail  | pass |
//! | summary-name      |  pass   | pass  | pass |
//! | svg-img-alt       |  pass   | pass  | pass |
//!
//! Notable quirks, with their real-world rationale:
//! * `image-alt` **passes** on `alt=""` — the empty alt marks decorative
//!   images, which the paper notes "does not convey meaningful information
//!   to users" yet satisfies the audit.
//! * `document-title` passes when the element is absent but fails when
//!   present-and-empty.
//! * `input-button-name` passes when `value` is absent (the browser
//!   renders a default "Submit" label) but fails on `value=""`.
//! * `label`, `summary-name` and `svg-img-alt` never fail (lenient
//!   checks).
//! * **Every rule passes wrong-language text** — the gap Kizuki closes.
//!
//! For elements with ARIA fallback semantics (buttons, links, objects,
//! summaries) the accessible name falls back to the visible inner text, so
//! corpus pages with labelled-by-text buttons pass — the fallback behaviour
//! §3 of the paper blames for developers' low use of explicit metadata.

use langcrux_crawl::ExtractedElement;
use langcrux_lang::a11y::ElementKind;

/// Audit weight, following the Axe-core impact classes that Lighthouse
/// aggregates (critical = 10, serious = 7, moderate = 3).
pub fn weight(kind: ElementKind) -> f64 {
    match kind {
        ElementKind::ImageAlt
        | ElementKind::ButtonName
        | ElementKind::Label
        | ElementKind::InputImageAlt
        | ElementKind::InputButtonName => 10.0,
        ElementKind::LinkName
        | ElementKind::FrameTitle
        | ElementKind::DocumentTitle
        | ElementKind::SelectName
        | ElementKind::ObjectAlt => 7.0,
        ElementKind::SummaryName | ElementKind::SvgImgAlt => 3.0,
    }
}

/// The accessible name under ARIA fallback: a present, non-empty
/// accessibility text wins; otherwise the visible inner text.
fn accessible_name(element: &ExtractedElement) -> Option<String> {
    if let Some(text) = element.content() {
        return Some(text.to_string());
    }
    element
        .visible_fallback
        .as_deref()
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_string)
}

/// Evaluate one element against its kind's rule. `true` = passes.
pub fn element_passes(element: &ExtractedElement) -> bool {
    match element.kind {
        // Fails only when there is no name from any source (attribute or
        // visible text). Empty aria-label alone does not fail a button
        // that has no other name in Lighthouse's observed behaviour.
        ElementKind::ButtonName => accessible_name(element).is_some() || element.is_empty_text(),
        // Passes when absent; fails when present but empty.
        ElementKind::DocumentTitle => element.is_missing() || element.content().is_some(),
        // Fails when missing or empty.
        ElementKind::FrameTitle | ElementKind::InputImageAlt | ElementKind::SelectName => {
            element.content().is_some()
        }
        // alt="" passes (decorative); missing alt fails.
        ElementKind::ImageAlt => !element.is_missing(),
        // Missing `value` renders a browser default; empty fails.
        ElementKind::InputButtonName => element.is_missing() || element.content().is_some(),
        // Lenient rules: never fail.
        ElementKind::Label | ElementKind::SummaryName | ElementKind::SvgImgAlt => true,
        // Fail when no accessible name resolves (attribute or inner text).
        ElementKind::LinkName | ElementKind::ObjectAlt => accessible_name(element).is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_crawl::TextSource;

    fn el(kind: ElementKind, text: Option<&str>, fallback: Option<&str>) -> ExtractedElement {
        ExtractedElement {
            kind,
            text: text.map(str::to_string),
            source: text.map(|_| TextSource::AriaLabel),
            visible_fallback: fallback.map(str::to_string),
        }
    }

    #[test]
    fn table3_matrix_is_reproduced() {
        // (kind, pass_when_missing, pass_when_empty, pass_wrong_language)
        let expected = [
            (ElementKind::ButtonName, false, true, true),
            (ElementKind::DocumentTitle, true, false, true),
            (ElementKind::FrameTitle, false, false, true),
            (ElementKind::ImageAlt, false, true, true),
            (ElementKind::InputButtonName, true, false, true),
            (ElementKind::InputImageAlt, false, false, true),
            (ElementKind::Label, true, true, true),
            (ElementKind::LinkName, false, false, true),
            (ElementKind::ObjectAlt, false, false, true),
            (ElementKind::SelectName, false, false, true),
            (ElementKind::SummaryName, true, true, true),
            (ElementKind::SvgImgAlt, true, true, true),
        ];
        for (kind, pass_missing, pass_empty, pass_wrong) in expected {
            // Isolated element: no visible fallback, like the paper's
            // single-element test pages.
            assert_eq!(
                element_passes(&el(kind, None, None)),
                pass_missing,
                "{kind:?} missing"
            );
            assert_eq!(
                element_passes(&el(kind, Some(""), None)),
                pass_empty,
                "{kind:?} empty"
            );
            // "Incorrect language": English text on a (conceptually)
            // non-English page — base Lighthouse must pass it.
            assert_eq!(
                element_passes(&el(kind, Some("a picture of a cat"), None)),
                pass_wrong,
                "{kind:?} wrong language"
            );
        }
    }

    #[test]
    fn fallback_rescues_buttons_and_links() {
        assert!(element_passes(&el(
            ElementKind::ButtonName,
            None,
            Some("Login")
        )));
        assert!(element_passes(&el(
            ElementKind::LinkName,
            None,
            Some("читать")
        )));
        assert!(!element_passes(&el(
            ElementKind::LinkName,
            None,
            Some("   ")
        )));
        assert!(element_passes(&el(
            ElementKind::LinkName,
            Some(""),
            Some("visible text")
        )));
    }

    #[test]
    fn weights_follow_impact_classes() {
        assert_eq!(weight(ElementKind::ImageAlt), 10.0);
        assert_eq!(weight(ElementKind::LinkName), 7.0);
        assert_eq!(weight(ElementKind::SvgImgAlt), 3.0);
        let total: f64 = ElementKind::ALL.iter().map(|&k| weight(k)).sum();
        assert_eq!(total, 91.0);
    }
}
