//! The Appendix D experiment: isolated single-element test pages.
//!
//! The paper probes Lighthouse by creating "isolated test pages, each
//! containing only a single target element", in three conditions: element
//! missing, present-but-empty, and present-with-wrong-language text.
//! [`lighthouse_matrix`] runs the same experiment against our audit engine
//! end-to-end (HTML → parse → extract → audit), regenerating Table 3.

use crate::report::audit_page;
use langcrux_crawl::extract;
use langcrux_html::parse;
use langcrux_lang::a11y::ElementKind;
use serde::{Deserialize, Serialize};

/// One Table 3 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixRow {
    pub kind: ElementKind,
    pub pass_missing: bool,
    pub pass_empty: bool,
    pub pass_wrong_language: bool,
}

/// The three probe conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    Missing,
    Empty,
    WrongLanguage,
}

/// Build the isolated probe page for a kind/condition. The "wrong
/// language" condition plants English text (the page is conceptually
/// non-English, but base Lighthouse never inspects language).
pub fn probe_page(kind: ElementKind, condition: Condition) -> String {
    use Condition as C;
    use ElementKind as K;
    let value = |present: &str| match condition {
        C::Missing => String::new(),
        C::Empty => format!(r#" {present}="""#),
        C::WrongLanguage => format!(r#" {present}="english description text""#),
    };
    let body = match kind {
        K::ButtonName => format!("<button{}></button>", value("aria-label")),
        K::DocumentTitle => match condition {
            C::Missing => String::new(),
            C::Empty => "<title></title>".to_string(),
            C::WrongLanguage => "<title>english title</title>".to_string(),
        },
        K::ImageAlt => format!(r#"<img src="/x.png"{}>"#, value("alt")),
        K::FrameTitle => format!(r#"<iframe src="/e"{}></iframe>"#, value("title")),
        K::SummaryName => match condition {
            C::Missing => "<details><summary></summary></details>".to_string(),
            C::Empty => r#"<details><summary aria-label=""></summary></details>"#.to_string(),
            C::WrongLanguage => "<details><summary>english summary</summary></details>".to_string(),
        },
        K::Label => format!(r#"<input type="text"{}>"#, value("aria-label")),
        K::InputImageAlt => format!(r#"<input type="image" src="/b.png"{}>"#, value("alt")),
        K::SelectName => format!("<select{}><option>1</option></select>", value("aria-label")),
        K::LinkName => format!(r#"<a href="/x"{}></a>"#, value("aria-label")),
        K::InputButtonName => format!(r#"<input type="submit"{}>"#, value("value")),
        K::SvgImgAlt => match condition {
            C::Missing => r#"<svg role="img"><path d="M0 0"/></svg>"#.to_string(),
            C::Empty => r#"<svg role="img" aria-label=""><path d="M0 0"/></svg>"#.to_string(),
            C::WrongLanguage => {
                r#"<svg role="img"><title>english icon name</title><path d="M0 0"/></svg>"#
                    .to_string()
            }
        },
        K::ObjectAlt => format!(r#"<object data="/f.pdf"{}></object>"#, value("aria-label")),
    };
    // document-title probes must not inject a second <title>.
    if kind == K::DocumentTitle {
        format!("<html><head>{body}</head><body></body></html>")
    } else {
        format!("<html><head><title>probe</title></head><body>{body}</body></html>")
    }
}

/// Run the full Table 3 experiment.
pub fn lighthouse_matrix() -> Vec<MatrixRow> {
    ElementKind::ALL
        .iter()
        .map(|&kind| {
            let run = |condition| {
                let html = probe_page(kind, condition);
                let report = audit_page(&extract(&parse(&html)));
                report.passes(kind)
            };
            MatrixRow {
                kind,
                pass_missing: run(Condition::Missing),
                pass_empty: run(Condition::Empty),
                pass_wrong_language: run(Condition::WrongLanguage),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_table3() {
        // (audit id, missing, empty, wrong-language) from Table 3.
        let expected = [
            ("button-name", false, true, true),
            ("document-title", true, false, true),
            ("frame-title", false, false, true),
            ("image-alt", false, true, true),
            ("input-button-name", true, false, true),
            ("input-image-alt", false, false, true),
            ("label", true, true, true),
            ("link-name", false, false, true),
            ("object-alt", false, false, true),
            ("select-name", false, false, true),
            ("summary-name", true, true, true),
            ("svg-img-alt", true, true, true),
        ];
        let matrix = lighthouse_matrix();
        for (id, missing, empty, wrong) in expected {
            let row = matrix
                .iter()
                .find(|r| r.kind.audit_id() == id)
                .unwrap_or_else(|| panic!("{id} missing from matrix"));
            assert_eq!(row.pass_missing, missing, "{id} missing");
            assert_eq!(row.pass_empty, empty, "{id} empty");
            assert_eq!(row.pass_wrong_language, wrong, "{id} wrong language");
        }
    }

    #[test]
    fn every_wrong_language_probe_passes() {
        // The motivating observation for Kizuki: language never fails the
        // base audits.
        for row in lighthouse_matrix() {
            assert!(row.pass_wrong_language, "{:?}", row.kind);
        }
    }

    #[test]
    fn probe_pages_are_parseable() {
        for kind in ElementKind::ALL {
            for cond in [
                Condition::Missing,
                Condition::Empty,
                Condition::WrongLanguage,
            ] {
                let html = probe_page(kind, cond);
                let doc = langcrux_html::parse(&html);
                assert!(doc.len() > 1, "{kind:?}");
            }
        }
    }
}
