//! Page-level auditing and Lighthouse-style scoring.
//!
//! A page audit evaluates every extracted element against its kind's rule;
//! an audit (kind) passes at page level iff **no** element of that kind
//! fails — Lighthouse's binary per-audit semantics. The accessibility
//! score is the weighted share of passing audits, scaled to 0–100.
//!
//! Real Lighthouse aggregates ~40 accessibility audits; the twelve
//! language-sensitive ones studied here sit alongside audits our corpus
//! always satisfies (contrast, ARIA validity, tab order, …). Those are
//! modelled as a constant always-passing weight block
//! ([`OTHER_AUDITS_WEIGHT`]) so that absolute scores land in the range the
//! paper reports (Figure 6: 43% of sites above 90 before Kizuki).

use crate::rules::{element_passes, weight};
use langcrux_crawl::PageExtract;
use langcrux_lang::a11y::ElementKind;
use serde::{Deserialize, Serialize};

/// Combined weight of the Lighthouse accessibility audits outside the
/// twelve language-sensitive ones (always passing on the corpus).
pub const OTHER_AUDITS_WEIGHT: f64 = 30.0;

/// Result of one audit (one element kind) on one page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditOutcome {
    pub kind: ElementKind,
    pub weight: f64,
    /// Elements of this kind on the page.
    pub total_elements: usize,
    /// Elements that fail the rule.
    pub failing_elements: usize,
    /// Binary page-level outcome: passes iff no element fails.
    pub passed: bool,
}

/// A page's full accessibility audit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditReport {
    pub audits: Vec<AuditOutcome>,
    /// Weighted Lighthouse-style score, 0–100.
    pub score: f64,
}

impl AuditReport {
    /// Outcome for one kind.
    pub fn outcome(&self, kind: ElementKind) -> &AuditOutcome {
        self.audits
            .iter()
            .find(|a| a.kind == kind)
            .expect("every kind audited")
    }

    /// Whether the page passes the audit for `kind`.
    pub fn passes(&self, kind: ElementKind) -> bool {
        self.outcome(kind).passed
    }

    /// Recompute the score with one audit's pass bit overridden — used by
    /// Kizuki to rescore after its language-aware re-evaluation.
    pub fn score_with_override(&self, kind: ElementKind, passed: bool) -> f64 {
        let mut earned = OTHER_AUDITS_WEIGHT;
        let mut total = OTHER_AUDITS_WEIGHT;
        for audit in &self.audits {
            total += audit.weight;
            let pass = if audit.kind == kind {
                passed
            } else {
                audit.passed
            };
            if pass {
                earned += audit.weight;
            }
        }
        earned / total * 100.0
    }
}

/// Audit a page.
pub fn audit_page(extract: &PageExtract) -> AuditReport {
    let mut audits = Vec::with_capacity(ElementKind::ALL.len());
    let mut earned = OTHER_AUDITS_WEIGHT;
    let mut total_weight = OTHER_AUDITS_WEIGHT;
    for kind in ElementKind::ALL {
        let mut total = 0usize;
        let mut failing = 0usize;
        for element in extract.of_kind(kind) {
            total += 1;
            if !element_passes(element) {
                failing += 1;
            }
        }
        let passed = failing == 0;
        let w = weight(kind);
        total_weight += w;
        if passed {
            earned += w;
        }
        audits.push(AuditOutcome {
            kind,
            weight: w,
            total_elements: total,
            failing_elements: failing,
            passed,
        });
    }
    AuditReport {
        audits,
        score: earned / total_weight * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_crawl::extract;
    use langcrux_html::parse;

    fn audit_html(html: &str) -> AuditReport {
        audit_page(&extract(&parse(html)))
    }

    #[test]
    fn perfect_page_scores_100() {
        let report = audit_html(
            r#"<html lang="ru"><head><title>Сайт</title></head><body>
               <img src="a" alt="фото дня">
               <a href="/x">читать далее</a>
               <button>поиск</button>
               </body></html>"#,
        );
        assert!(
            (report.score - 100.0).abs() < 1e-9,
            "score {}",
            report.score
        );
        for audit in &report.audits {
            assert!(audit.passed, "{:?}", audit.kind);
        }
    }

    #[test]
    fn missing_alt_fails_image_audit() {
        let report = audit_html(r#"<head><title>t</title></head><img src="a">"#);
        assert!(!report.passes(ElementKind::ImageAlt));
        assert!(report.score < 100.0);
        assert_eq!(report.outcome(ElementKind::ImageAlt).failing_elements, 1);
    }

    #[test]
    fn empty_alt_passes_image_audit() {
        let report = audit_html(r#"<head><title>t</title></head><img src="a" alt="">"#);
        assert!(report.passes(ElementKind::ImageAlt));
    }

    #[test]
    fn one_bad_element_fails_whole_audit() {
        let report = audit_html(
            r#"<head><title>t</title></head>
               <img src="a" alt="ok"><img src="b" alt="fine"><img src="c">"#,
        );
        let outcome = report.outcome(ElementKind::ImageAlt);
        assert_eq!(outcome.total_elements, 3);
        assert_eq!(outcome.failing_elements, 1);
        assert!(!outcome.passed);
    }

    #[test]
    fn score_is_weighted() {
        // Failing image-alt (10) must cost more than failing frame-title (7).
        let img_fail = audit_html(r#"<head><title>t</title></head><img src="a">"#);
        let frame_fail = audit_html(r#"<head><title>t</title></head><iframe src="/e"></iframe>"#);
        assert!(img_fail.score < frame_fail.score);
    }

    #[test]
    fn empty_page_scores_100() {
        // No title element: document-title passes by the Table 3 quirk.
        let report = audit_html("<html><body></body></html>");
        assert!((report.score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_title_fails() {
        let report = audit_html("<head><title></title></head>");
        assert!(!report.passes(ElementKind::DocumentTitle));
    }

    #[test]
    fn score_override_recomputes() {
        let report =
            audit_html(r#"<head><title>t</title></head><img src="a" alt="english text here">"#);
        assert!(report.passes(ElementKind::ImageAlt));
        let downgraded = report.score_with_override(ElementKind::ImageAlt, false);
        assert!(downgraded < report.score);
        let unchanged = report.score_with_override(ElementKind::ImageAlt, true);
        assert!((unchanged - report.score).abs() < 1e-9);
    }

    #[test]
    fn wrong_language_alt_still_passes_base_audit() {
        // A Thai page with English alt text: base Lighthouse sees no issue.
        let report = audit_html(
            r#"<html lang="th"><head><title>ข่าว</title></head><body>
               <p>ข่าววันนี้ของประเทศไทย</p>
               <img src="a" alt="people at the market"></body></html>"#,
        );
        assert!(report.passes(ElementKind::ImageAlt));
        assert!((report.score - 100.0).abs() < 1e-9);
    }
}
