//! # langcrux-audit
//!
//! An Axe-core/Lighthouse-style accessibility audit engine covering the
//! twelve language-sensitive audits of the paper's Table 1.
//!
//! The engine's pass/fail semantics reproduce the behaviour the paper
//! *measured* from Lighthouse with isolated test pages (Appendix D,
//! Table 3) — including its quirks (`alt=""` passes `image-alt`; `label`,
//! `summary-name` and `svg-img-alt` never fail; a missing `<title>`
//! passes `document-title`) — because Kizuki's contribution is defined
//! relative to exactly these semantics.
//!
//! * [`rules`] — per-element rule logic and Axe impact weights.
//! * [`report`] — page-level audits and the weighted 0–100 score.
//! * [`matrix`] — the Appendix D isolated-probe experiment (Table 3).
//! * [`gaps`] — per-subtree translation-gap detection: which regions of a
//!   page disagree with its declared or evident language.

pub mod gaps;
pub mod matrix;
pub mod report;
pub mod rules;

pub use gaps::{gap_report, GapKind, GapRegion, GapReport, MIN_REGION_EVIDENCE};
pub use matrix::{lighthouse_matrix, probe_page, Condition, MatrixRow};
pub use report::{audit_page, AuditOutcome, AuditReport, OTHER_AUDITS_WEIGHT};
pub use rules::{element_passes, weight};
