//! Minimal in-tree stand-in for the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<[u8]>`.

use std::sync::Arc;

#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn from(src: impl Into<Bytes>) -> Bytes {
        src.into()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes {
            data: s.as_bytes().into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes { data: s.into() }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from("hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..2], b"he");
        assert_eq!(std::str::from_utf8(&b).unwrap(), "hello");
        let c = b.clone();
        assert_eq!(b, c);
    }
}
