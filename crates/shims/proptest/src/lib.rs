//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use:
//!
//! * `proptest! { #[test] fn name(pat in strategy, …) { … } }`
//! * strategies: `&str` regex literals, numeric ranges, `any::<T>()`,
//!   `prop::collection::vec(strategy, size_range)`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! No shrinking: a failing case panics with the assertion message. Case
//! count defaults to 64 and can be raised via `PROPTEST_CASES`.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. (The real crate's `Strategy` also carries
    /// shrinking machinery; this shim only generates.)
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// String literals act as generation regexes, as in real proptest.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_regex(self, rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_int(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_int(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    /// `any::<T>()` — uniform over the whole domain.
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` strategy constructor.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let hi = self.size.end.max(self.size.start + 1);
            let len = rng.range_int(self.size.start as i128, hi as i128 - 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Rejected by `prop_assume!`.
    #[derive(Debug)]
    pub struct Rejected;

    /// Deterministic per-test RNG (splitmix64 over the test name).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi]` (inclusive, i128 to cover u64).
        pub fn range_int(&mut self, lo: i128, hi: i128) -> i128 {
            if hi <= lo {
                return lo;
            }
            let span = (hi - lo + 1) as u128;
            lo + (u128::from(self.next_u64()) % span) as i128
        }
    }

    pub fn rng_for_test(name: &str) -> TestRng {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod string {
    //! A generation-only regex interpreter covering the syntax the
    //! workspace's strategies use: literals, `.`, `[...]` classes (ranges,
    //! negation, `\xHH`, `\u{HEX}` escapes), `\PC` (printable), groups,
    //! alternation, and the `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        /// Any printable char (`.`, `\PC`).
        AnyPrintable,
        /// Inclusive codepoint ranges; `negated` samples printable chars
        /// outside every range.
        Class {
            ranges: Vec<(u32, u32)>,
            negated: bool,
        },
        Group(Box<Node>),
        Alt(Vec<Node>),
        Seq(Vec<Node>),
        Repeat {
            node: Box<Node>,
            min: usize,
            max: usize,
        },
    }

    /// Sample pool for `.` / `\PC` / negated classes: ASCII printable plus
    /// letters from several study scripts, so generated text exercises the
    /// script histogram.
    const EXTRA_CHARS: &[char] = &[
        'é', 'ß', 'Ω', 'λ', 'Я', 'ж', 'א', 'ش', 'क', 'ক', 'த', 'ก', 'ᄀ', '中', '文', 'あ', 'ア',
        '한', '국', '日', '本', '©', '€', '—', '•',
    ];

    fn printable(rng: &mut TestRng) -> char {
        // 80% ASCII printable, 20% multilingual.
        if rng.unit_f64() < 0.8 {
            char::from_u32(rng.range_int(0x20, 0x7E) as u32).unwrap()
        } else {
            EXTRA_CHARS[rng.range_int(0, EXTRA_CHARS.len() as i128 - 1) as usize]
        }
    }

    struct RegexParser<'a> {
        chars: Vec<char>,
        pos: usize,
        pattern: &'a str,
    }

    impl<'a> RegexParser<'a> {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> char {
            let c = self.chars[self.pos];
            self.pos += 1;
            c
        }

        fn fail(&self, msg: &str) -> ! {
            panic!(
                "proptest shim: unsupported regex {:?} ({} at {})",
                self.pattern, msg, self.pos
            );
        }

        fn parse_alt(&mut self) -> Node {
            let mut branches = vec![self.parse_seq()];
            while self.peek() == Some('|') {
                self.bump();
                branches.push(self.parse_seq());
            }
            if branches.len() == 1 {
                branches.pop().unwrap()
            } else {
                Node::Alt(branches)
            }
        }

        fn parse_seq(&mut self) -> Node {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.parse_atom();
                items.push(self.parse_quant(atom));
            }
            Node::Seq(items)
        }

        fn parse_quant(&mut self, atom: Node) -> Node {
            match self.peek() {
                Some('{') => {
                    self.bump();
                    let mut min_text = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        min_text.push(self.bump());
                    }
                    let min: usize = min_text.parse().unwrap_or(0);
                    let max = if self.peek() == Some(',') {
                        self.bump();
                        let mut max_text = String::new();
                        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                            max_text.push(self.bump());
                        }
                        max_text.parse().unwrap_or(min + 8)
                    } else {
                        min
                    };
                    if self.peek() != Some('}') {
                        self.fail("expected `}`");
                    }
                    self.bump();
                    Node::Repeat {
                        node: Box::new(atom),
                        min,
                        max,
                    }
                }
                Some('?') => {
                    self.bump();
                    Node::Repeat {
                        node: Box::new(atom),
                        min: 0,
                        max: 1,
                    }
                }
                Some('*') => {
                    self.bump();
                    Node::Repeat {
                        node: Box::new(atom),
                        min: 0,
                        max: 8,
                    }
                }
                Some('+') => {
                    self.bump();
                    Node::Repeat {
                        node: Box::new(atom),
                        min: 1,
                        max: 8,
                    }
                }
                _ => atom,
            }
        }

        fn parse_atom(&mut self) -> Node {
            match self.bump() {
                '.' => Node::AnyPrintable,
                '(' => {
                    let inner = self.parse_alt();
                    if self.peek() != Some(')') {
                        self.fail("expected `)`");
                    }
                    self.bump();
                    Node::Group(Box::new(inner))
                }
                '[' => self.parse_class(),
                '\\' => self.parse_escape_atom(),
                c => Node::Literal(c),
            }
        }

        fn parse_escape_atom(&mut self) -> Node {
            match self.bump() {
                'P' => {
                    // `\PC` (and the `\P{C}` spelling): NOT in category
                    // "Other" — i.e. printable.
                    match self.peek() {
                        Some('{') => while self.peek().is_some() && self.bump() != '}' {},
                        Some(_) => {
                            self.bump();
                        }
                        None => self.fail("dangling \\P"),
                    }
                    Node::AnyPrintable
                }
                'u' => Node::Literal(self.parse_codepoint_escape()),
                'x' => {
                    let hex: String = (0..2).map(|_| self.bump()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .unwrap_or_else(|_| self.fail("bad \\x escape"));
                    Node::Literal(char::from_u32(code).unwrap())
                }
                'n' => Node::Literal('\n'),
                'r' => Node::Literal('\r'),
                't' => Node::Literal('\t'),
                c => Node::Literal(c),
            }
        }

        fn parse_codepoint_escape(&mut self) -> char {
            if self.peek() != Some('{') {
                self.fail("expected `{` after \\u");
            }
            self.bump();
            let mut hex = String::new();
            while self.peek().is_some_and(|c| c != '}') {
                hex.push(self.bump());
            }
            self.bump();
            char::from_u32(u32::from_str_radix(&hex, 16).unwrap_or_else(|_| self.fail("bad hex")))
                .unwrap_or_else(|| self.fail("bad codepoint"))
        }

        fn parse_class(&mut self) -> Node {
            let negated = self.peek() == Some('^');
            if negated {
                self.bump();
            }
            let mut ranges: Vec<(u32, u32)> = Vec::new();
            loop {
                let c = match self.peek() {
                    Some(']') => {
                        self.bump();
                        break;
                    }
                    Some(_) => self.class_char(),
                    None => self.fail("unterminated class"),
                };
                if self.peek() == Some('-') && self.chars.get(self.pos + 1).copied() != Some(']') {
                    self.bump();
                    let hi = self.class_char();
                    ranges.push((c as u32, hi as u32));
                } else {
                    ranges.push((c as u32, c as u32));
                }
            }
            Node::Class { ranges, negated }
        }

        fn class_char(&mut self) -> char {
            match self.bump() {
                '\\' => match self.bump() {
                    'u' => self.parse_codepoint_escape(),
                    'x' => {
                        let hex: String = (0..2).map(|_| self.bump()).collect();
                        char::from_u32(
                            u32::from_str_radix(&hex, 16)
                                .unwrap_or_else(|_| self.fail("bad \\x escape")),
                        )
                        .unwrap()
                    }
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    c => c,
                },
                c => c,
            }
        }
    }

    fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::AnyPrintable => out.push(printable(rng)),
            Node::Class { ranges, negated } => {
                if *negated {
                    for _ in 0..64 {
                        let c = printable(rng);
                        if !ranges
                            .iter()
                            .any(|&(lo, hi)| (lo..=hi).contains(&(c as u32)))
                        {
                            out.push(c);
                            return;
                        }
                    }
                    panic!("proptest shim: negated class rejected every sample");
                }
                let total: u64 = ranges.iter().map(|&(lo, hi)| u64::from(hi - lo + 1)).sum();
                let mut pick = rng.range_int(0, total as i128 - 1) as u64;
                for &(lo, hi) in ranges {
                    let span = u64::from(hi - lo + 1);
                    if pick < span {
                        out.push(char::from_u32(lo + pick as u32).expect("valid class char"));
                        return;
                    }
                    pick -= span;
                }
                unreachable!()
            }
            Node::Group(inner) => generate(inner, rng, out),
            Node::Alt(branches) => {
                let idx = rng.range_int(0, branches.len() as i128 - 1) as usize;
                generate(&branches[idx], rng, out);
            }
            Node::Seq(items) => {
                for item in items {
                    generate(item, rng, out);
                }
            }
            Node::Repeat { node, min, max } => {
                let count = rng.range_int(*min as i128, (*max).max(*min) as i128) as usize;
                for _ in 0..count {
                    generate(node, rng, out);
                }
            }
        }
    }

    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut parser = RegexParser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        };
        let node = parser.parse_alt();
        if parser.pos != parser.chars.len() {
            parser.fail("trailing syntax");
        }
        let mut out = String::new();
        generate(&node, rng, &mut out);
        out
    }
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for _case in 0..$crate::test_runner::case_count() {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    // Rejections (prop_assume) simply skip the case.
                    let _ = outcome;
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::test_runner::rng_for_test;

    fn gen(pattern: &str) -> String {
        let mut rng = rng_for_test("shim-self-test");
        crate::string::generate_from_regex(pattern, &mut rng)
    }

    #[test]
    fn literal_and_counts() {
        assert_eq!(gen("abc"), "abc");
        for _ in 0..50 {
            let s = gen("[a-c]{2,4}");
            let n = s.chars().count();
            assert!((2..=4).contains(&n), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn classes_and_escapes() {
        let s = gen("[\\u{995}]{3}");
        assert_eq!(s, "ককক");
        for _ in 0..50 {
            let s = gen("[^\\x00-\\x1F<>&]{1,10}");
            assert!(!s.contains('<') && !s.contains('>') && !s.contains('&'));
            assert!(s.chars().all(|c| c as u32 > 0x1F));
        }
    }

    #[test]
    fn alternation_groups_quantifiers() {
        for _ in 0..50 {
            let s = gen("(foo|ba?r){1,2}");
            assert!(!s.is_empty());
        }
        let empty = gen("x{0}");
        assert_eq!(empty, "");
    }

    #[test]
    fn printable_class() {
        for _ in 0..100 {
            let s = gen("\\PC{0,20}");
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    proptest! {
        #[test]
        fn macro_self_test(x in 0u64..100, text in "[a-z]{1,5}") {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13);
            prop_assert_eq!(text.len(), text.chars().count());
        }
    }
}
