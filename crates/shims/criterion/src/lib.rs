//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! Measures wall-clock time per iteration with a short warmup and adaptive
//! iteration counts, printing one line per benchmark:
//!
//! ```text
//! bench  html/parse                time:   12.345 µs  (n = 128)
//! ```
//!
//! Supported surface: `Criterion`, `benchmark_group` (`sample_size`,
//! `throughput`, `bench_function`, `finish`), `bench_function`, `Bencher`
//! (`iter`, `iter_batched`), `black_box`, `Throughput`, `BatchSize`, and
//! the `criterion_group!` / `criterion_main!` macros. No statistics,
//! plotting, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark (once warmed up).
const TARGET_TIME: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 100_000;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub mean: Duration,
    pub iters: u64,
}

#[derive(Default)]
pub struct Criterion {
    /// All measurements recorded this run (inspectable by custom harnesses).
    pub measurements: Vec<Measurement>,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    prefix: Option<String>,
}

pub struct Bencher {
    /// Total measured time and iteration count for the current benchmark.
    elapsed: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        black_box(routine());
        while self.elapsed < self.budget && self.iters < MAX_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        while self.elapsed < self.budget && self.iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

impl Criterion {
    pub fn from_args() -> Self {
        Criterion::default()
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = match &self.prefix {
            Some(p) => format!("{p}/{}", name.into()),
            None => name.into(),
        };
        // A smaller sample_size signals an expensive benchmark: shrink the
        // budget so whole-pipeline benches stay tractable.
        let budget = match self.sample_size {
            Some(n) if n <= 10 => TARGET_TIME / 2,
            _ => TARGET_TIME,
        };
        let mut bencher = Bencher::new(budget);
        f(&mut bencher);
        let iters = bencher.iters.max(1);
        let mean = bencher.elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        let line = format!("bench  {name:<44} time: {mean:>12.3?}  (n = {iters})");
        let extra = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
                let rate = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
                format!("  [{rate:.1} MiB/s]")
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let rate = n as f64 / mean.as_secs_f64();
                format!("  [{rate:.0} elem/s]")
            }
            _ => String::new(),
        };
        println!("{line}{extra}");
        self.measurements.push(Measurement { name, mean, iters });
        self
    }

    pub fn final_summary(&self) {
        println!("completed {} benchmarks", self.measurements.len());
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.criterion.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.criterion.prefix = Some(self.name.clone());
        self.criterion.bench_function(name, f);
        self.criterion.prefix = None;
        self
    }

    pub fn finish(&mut self) {
        self.criterion.sample_size = None;
        self.criterion.throughput = None;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records() {
        let mut c = Criterion::from_args();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements.len(), 1);
        assert!(c.measurements[0].iters >= 1);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::from_args();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("x", |b| {
            b.iter_batched(|| 2, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.measurements[0].name, "g/x");
    }
}
