//! Minimal in-tree stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates.io mirror, so this shim
//! provides exactly the surface the workspace uses: `Serialize` /
//! `Deserialize` traits (via a simple JSON-like [`Value`] data model rather
//! than serde's visitor architecture) and the two derive macros. The
//! companion `serde_json` shim renders/parses [`Value`] as real JSON.
//!
//! Determinism notes: object fields serialize in declaration order and
//! `Value::Object` preserves insertion order, so `to_string` output is
//! byte-stable for a given data structure — a property the pipeline's
//! determinism tests rely on.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree. Integer and unsigned variants are kept separate
/// from floats so `u64` seeds above 2^53 round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Derive-macro helper: fetch + deserialize one field of an object.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

// ----------------------------------------------------------- other scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if items.len() != LEN {
                    return Err(DeError(format!("expected tuple of {LEN}, got {}", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by rendered key for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    other => panic!("map key must serialize to a string, got {}", other.kind()),
                };
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_above_2_53() {
        let big: u64 = 0x4C61_6E67_4372_5558;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v), Ok(big));
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<String> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<String>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn tuple_round_trip() {
        let t = (3usize, "x".to_string());
        let v = t.to_value();
        let back: (usize, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
