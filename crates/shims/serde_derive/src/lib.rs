//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! The offline build cannot use `syn`/`quote`, so the input item is parsed
//! directly from the `proc_macro` token stream. Supported shapes — the only
//! ones the workspace derives on:
//!
//! * structs with named fields (including empty `{}`),
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! The generated impls target the shim's value-model traits
//! (`serde::Serialize::to_value` / `serde::Deserialize::from_value`) and use
//! serde's externally-tagged enum representation so the JSON written by the
//! `serde_json` shim looks like real serde output.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip any number of `#[...]` attribute groups starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Count top-level commas (angle-bracket aware) in a token slice; used to
/// derive tuple-variant arity from its parenthesized field list.
fn top_level_commas(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut commas = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    commas
}

/// Parse `name: Type, …` (named fields) from a brace-group body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        i = skip_vis(body, i);
        let TokenTree::Ident(name) = &body[i] else {
            panic!("serde_derive: expected field name, got {:?}", body[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(
            matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type: everything to the next comma at angle depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let TokenTree::Ident(name) = &body[i] else {
            panic!("serde_derive: expected variant name, got {:?}", body[i]);
        };
        let name = name.to_string();
        i += 1;
        let fields = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                let trailing =
                    matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',');
                Fields::Tuple(top_level_commas(&inner) + usize::from(!trailing))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            _ => Fields::Unit,
        };
        // Consume the `,` between variants, if present.
        if matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported ({name})");
    }
    let (body, tuple_struct) = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                break (g.stream().into_iter().collect::<Vec<_>>(), false);
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                break (g.stream().into_iter().collect::<Vec<_>>(), true);
            }
            _ => i += 1,
        }
    };
    match kind.as_str() {
        "struct" if tuple_struct => {
            let trailing = matches!(body.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',');
            Item::Struct {
                name,
                fields: Fields::Tuple(top_level_commas(&body) + usize::from(!trailing)),
            }
        }
        "struct" => Item::Struct {
            name,
            fields: Fields::Named(parse_named_fields(&body)),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn named_to_value(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(""))
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => named_to_value(fields, |f| format!("&self.{f}")),
                // Newtype structs serialize transparently, wider tuple
                // structs as arrays — serde's representations.
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let vals: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", vals.join(""))
                }
                Fields::Unit => unreachable!(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                vals.join("")
                            )
                        }
                        Fields::Named(fields) => {
                            let inner = named_to_value(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), {inner})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    TokenStream::from_str(&out).expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             let obj = v.as_object()\
                                 .ok_or_else(|| ::serde::DeError::expected(\"object\", v))?;\n\
                             let _ = obj;\n\
                             ::std::result::Result::Ok({name} {{ {} }})\n\
                         }}\n\
                     }}",
                    inits.join("")
                )
            }
            Fields::Tuple(1) => format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                     }}\n\
                 }}"
            ),
            Fields::Tuple(n) => {
                let gets: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             let items = v.as_array()\
                                 .ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError(format!(\
                                 \"{name} expects {n} fields, got {{}}\", items.len()))); }}\n\
                             ::std::result::Result::Ok({name}({}))\n\
                         }}\n\
                     }}",
                    gets.join("")
                )
            }
            Fields::Unit => unreachable!(),
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| \
                                         ::serde::DeError::expected(\"array\", inner))?;\n\
                                     if items.len() != {n} {{ return ::std::result::Result::Err(\
                                         ::serde::DeError(format!(\
                                         \"variant {vn} expects {n} fields, got {{}}\", items.len()))); }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                gets.join("")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let obj = inner.as_object().ok_or_else(|| \
                                         ::serde::DeError::expected(\"object\", inner))?;\n\
                                     let _ = obj;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join("")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\
                                     format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                                 let (tag, inner) = &o[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::DeError(\
                                         format!(\"unknown {name} variant {{other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"enum\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    TokenStream::from_str(&out).expect("serde_derive: generated impl must parse")
}
