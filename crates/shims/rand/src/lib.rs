//! Minimal in-tree stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng` (xoshiro256++ seeded through splitmix64),
//! `SeedableRng::seed_from_u64`, and the `Rng` methods the workspace uses:
//! `gen`, `gen_range` (integer and float, half-open and inclusive), and
//! `gen_bool`. Determinism is the only contract: the same seed yields the
//! same stream on every platform. The stream does NOT match the real
//! `rand` crate's `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `rng.gen_range(..)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Uniform in `[0, span)` via Lemire's multiply-shift rejection.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected to avoid modulo bias; extremely rare for small spans.
    }
}

/// The convenience methods every call site uses.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, well-distributed, 256-bit state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x = r.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(0u32..=4);
            assert!(y <= 4);
            seen_lo |= y == 0;
            seen_hi |= y == 4;
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_300..2_700).contains(&hits), "hits = {hits}");
    }
}
