//! Minimal in-tree stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] model as compact JSON and parses JSON
//! back into it. Output is deterministic: object keys keep insertion order
//! (struct declaration order) and floats print via Rust's shortest
//! round-trip formatting.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) -> Result<()> {
    if !f.is_finite() {
        return Err(Error(format!("non-finite float {f} is not valid JSON")));
    }
    out.push_str(&format!("{f}"));
    Ok(())
}

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out)?,
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) -> Result<()> {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
            Ok(())
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

// -------------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad hex"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad hex"))?;
                            self.pos += 4;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("bad surrogate"))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| self.err("bad hex"))?,
                                        16,
                                    )
                                    .map_err(|_| self.err("bad hex"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        other => return Err(self.err(&format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-5",
            "123456789012345678",
            "1.5",
            "\"hi\"",
        ] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out).unwrap();
            assert_eq!(out, json);
        }
    }

    #[test]
    fn nested_round_trip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-2.5}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out).unwrap();
        assert_eq!(out, json);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""ক😀""#).unwrap();
        assert_eq!(v, Value::Str("ক😀".to_string()));
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(u64, Option<String>)> = vec![(1, None), (2, Some("x".into()))];
        let json = to_string(&data).unwrap();
        let back: Vec<(u64, Option<String>)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_is_reparseable() {
        let data = vec![1u32, 2, 3];
        let pretty = to_string_pretty(&data).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<u32> = from_str(&pretty).unwrap();
        assert_eq!(back, data);
    }
}
