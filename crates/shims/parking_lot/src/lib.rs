//! Minimal in-tree stand-in for `parking_lot`: `Mutex`/`RwLock` delegating
//! to `std::sync` with poisoning unwrapped (parking_lot has no poisoning).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
